#!/usr/bin/env python3
"""Profile Row-Level Temporal Locality (RLTL) - the paper's Section 3.

RLTL(t) is the fraction of row activations that occur within time t of
the *previous precharge of the same row*.  High RLTL means rows are
closed and re-opened quickly (bank conflicts), which is exactly when
ChargeCache can serve the re-activation with lowered tRCD/tRAS.

This example profiles a few contrasting workloads and prints the RLTL
curve alongside the refresh-recency fraction NUAT relies on.

Run:  python examples/rltl_profiling.py
"""

from repro.harness.runner import Scale, run_workload

SCALE = Scale(single_core_instructions=25_000, warmup_cpu_cycles=8_000)
WORKLOADS = ("libquantum", "tpch17", "mcf", "sjeng")
INTERVALS = (0.125, 0.25, 0.5, 1.0, 8.0)


def main() -> None:
    print("t-RLTL: fraction of activations within t of the row's own "
          "precharge")
    print(f"(intervals time-scaled by 1/{SCALE.time_scale:.0f}; "
          "see DESIGN.md)\n")
    header = f"{'workload':12s}" + \
        "".join(f"{f'{i}ms':>10s}" for i in INTERVALS) + \
        f"{'refr(8ms)':>11s}{'acts':>8s}"
    print(header)
    print("-" * len(header))
    for name in WORKLOADS:
        result = run_workload(name, "none", SCALE, enable_rltl=True)
        probe = result.rltl
        cells = "".join(f"{probe.rltl(i):>10.0%}" for i in INTERVALS)
        print(f"{name:12s}{cells}{probe.refresh_fraction(8.0):>11.0%}"
              f"{probe.activations:>8d}")
    print("\nReading the table: streaming/zipfian workloads re-activate "
          "rows almost immediately (high RLTL even at 0.125 ms), while "
          "the refresh-recency fraction stays near 8/64 = 12.5% for "
          "every workload - the paper's Figure 3 argument for why "
          "ChargeCache beats NUAT.")


if __name__ == "__main__":
    main()
