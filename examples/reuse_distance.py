#!/usr/bin/env python3
"""Row reuse distance: why ChargeCache trails LL-DRAM on mcf/omnetpp.

The paper (Section 6.1) attributes the gap between ChargeCache and the
LL-DRAM upper bound on mcf/omnetpp to *row reuse distance*: many other
rows are activated between two activations of the same row, so the
HCRAC entry is evicted before it can hit.

This example measures the exact LRU stack-distance distribution of each
workload's activation stream, uses it to *predict* the HCRAC hit rate
at several capacities, and compares the prediction with the measured
hit rate of a real ChargeCache run - a capacity-planning workflow for
sizing the HCRAC without sweep simulations.

Run:  python examples/reuse_distance.py
"""

from repro import Organization, System, make_trace
from repro.harness.runner import Scale, build_config, run_workload

SCALE = Scale(single_core_instructions=20_000, warmup_cpu_cycles=8_000)
WORKLOADS = ("tpch17", "libquantum", "mcf", "omnetpp")
CAPACITIES = (32, 128, 512, 2048)


def profile(name: str):
    config = build_config("single", "none", SCALE)
    org = Organization.from_config(config.dram)
    system = System(config, [make_trace(name, org)], enable_reuse=True)
    result = system.run(max_mem_cycles=SCALE.max_mem_cycles)
    return result.reuse


def main() -> None:
    header = (f"{'workload':12s}{'median dist':>12s}"
              + "".join(f"{f'pred@{c}':>10s}" for c in CAPACITIES)
              + f"{'measured@128':>14s}")
    print(header)
    print("-" * len(header))
    for name in WORKLOADS:
        reuse = profile(name)
        median = reuse.median_reuse_distance()
        cells = "".join(f"{reuse.predicted_hit_rate(c):>10.0%}"
                        for c in CAPACITIES)
        measured = run_workload(name, "chargecache", SCALE)
        print(f"{name:12s}{str(median):>12s}{cells}"
              f"{measured.mechanism_hit_rate:>14.0%}")
    print("\nmcf/omnetpp need thousands of entries before their reuse "
          "distances fit - the paper's explanation for their gap to "
          "LL-DRAM.  (Prediction assumes a fully-associative table "
          "with no invalidation, so it upper-bounds the measured "
          "2-way, invalidated HCRAC.)")


if __name__ == "__main__":
    main()
