#!/usr/bin/env python3
"""Per-standard DRAM energy: the same run billed on its own device.

The energy model is the IDDx decomposition of DRAMPower, and each DRAM
standard carries its own supply voltage, current classes and clock.
This example shows the two halves of the PR-5 plumbing:

1. :func:`repro.energy.drampower.energy_for_run` resolves timing *and*
   power from the run's configured standard — a DDR4 run is billed at
   1.2 V with DDR4 currents on a 0.833 ns clock, not DDR3's 1.5 V /
   1.25 ns;
2. the ``energy`` experiment (``chargecache-harness energy``) sweeps
   baseline vs ChargeCache over every standards-family platform and
   tabulates the per-standard energy reduction.

Run:  python examples/energy_per_standard.py
"""

from repro.dram.standards import PROFILES
from repro.energy.drampower import energy_for_run
from repro.harness.experiments import run_energy
from repro.harness.report import render_experiment
from repro.harness.runner import Scale, run_scenario

#: Small budgets so the example finishes in seconds.
SCALE = Scale(single_core_instructions=4000, multi_core_instructions=2000,
              warmup_cpu_cycles=2000, max_mem_cycles=500_000)

WORKLOAD = "libquantum"


def main() -> None:
    print("one workload, four devices "
          f"({WORKLOAD}, single-core platforms):")
    print(f"{'standard':<12} {'vdd':>4} {'tCK ns':>7} "
          f"{'total uJ':>9} {'background %':>13}")
    for standard in sorted(PROFILES):
        scen = ("c1-r1" if standard == "DDR3-1600"
                else f"{standard.lower()}-c1")
        result = run_scenario(scen, WORKLOAD, "none", SCALE,
                              idle_finished=True)
        breakdown = energy_for_run(result)  # resolves the standard
        prof = PROFILES[standard]
        bg = breakdown.background_pj / breakdown.total_pj
        print(f"{standard:<12} {prof.power.vdd:>4} "
              f"{prof.timing.tCK_ns:>7.3f} "
              f"{breakdown.total_pj * 1e-6:>9.3f} {bg:>12.0%}")

    print()
    print("full per-standard energy-reduction table "
          "(baseline vs ChargeCache):")
    print(render_experiment(run_energy(workloads=[WORKLOAD],
                                       scale=SCALE)))


if __name__ == "__main__":
    main()
