#!/usr/bin/env python3
"""ChargeCache design-space exploration: capacity and caching duration.

Reproduces the trade-offs behind the paper's Figures 9-11 on a small
workload set, driving every variant through the mechanism-spec
mini-language (:mod:`repro.core.registry`): each sweep point is just a
string like ``"chargecache(entries=256)"`` — no config surgery.

* **Capacity** - more HCRAC entries capture longer row-reuse
  distances, but returns diminish (the paper picks 128 entries).
* **Caching duration** - longer durations keep entries alive longer
  but weaken the tRCD/tRAS reductions physics allows (Table 2); the
  paper picks 1 ms.
* **Composition** - mechanisms compose with ``+``; the registry
  normalizes order, so ``"nuat+chargecache"`` reuses the cached
  ``"chargecache+nuat"`` runs.

Run:  python examples/design_space.py
"""

from repro.circuit.latency_tables import reductions_for_duration_ms
from repro.harness.runner import Scale, run_workload

SCALE = Scale(single_core_instructions=15_000, warmup_cpu_cycles=6_000)
WORKLOADS = ("libquantum", "tpch17", "soplex")


def average(values):
    values = list(values)
    return sum(values) / len(values)


def capacity_sweep() -> None:
    print("capacity sweep (1 ms duration)")
    print(f"{'entries':>10s} {'hit rate':>10s} {'speedup':>10s}")
    for entries in (32, 64, 128, 256, 512, 1024):
        spec = f"chargecache(entries={entries})"
        hits, gains = [], []
        for name in WORKLOADS:
            base = run_workload(name, "none", SCALE)
            cc = run_workload(name, spec, SCALE)
            hits.append(cc.mechanism_hit_rate)
            gains.append(cc.total_ipc / base.total_ipc - 1)
        print(f"{entries:>10d} {average(hits):>10.0%} "
              f"{average(gains):>+10.1%}")
    unlimited = [run_workload(n, "chargecache(unbounded=true)",
                              SCALE).mechanism_hit_rate
                 for n in WORKLOADS]
    print(f"{'unlimited':>10s} {average(unlimited):>10.0%} {'-':>10s}")


def duration_sweep() -> None:
    print("\ncaching-duration sweep (128 entries)")
    print(f"{'duration':>10s} {'tRCD/tRAS -':>12s} {'hit rate':>10s} "
          f"{'speedup':>10s}")
    for duration in (1.0, 4.0, 8.0, 16.0):
        spec = f"chargecache(duration_ms={duration})"
        red = reductions_for_duration_ms(duration)
        hits, gains = [], []
        for name in WORKLOADS:
            base = run_workload(name, "none", SCALE)
            cc = run_workload(name, spec, SCALE)
            hits.append(cc.mechanism_hit_rate)
            gains.append(cc.total_ipc / base.total_ipc - 1)
        print(f"{f'{duration:g} ms':>10s} {f'{red[0]}/{red[1]}':>12s} "
              f"{average(hits):>10.0%} {average(gains):>+10.1%}")


def composition() -> None:
    print("\ncomposition (+ is commutative, first spelling fills the "
          "cache)")
    for spec in ("chargecache+nuat", "nuat+chargecache(entries=128)"):
        gains = []
        for name in WORKLOADS:
            base = run_workload(name, "none", SCALE)
            combo = run_workload(name, spec, SCALE)
            gains.append(combo.total_ipc / base.total_ipc - 1)
        print(f"{spec:>35s} {average(gains):>+10.1%}")


def main() -> None:
    capacity_sweep()
    duration_sweep()
    composition()
    print("\npaper: 128 entries and 1 ms are the sweet spots "
          "(Figures 9-11).")


if __name__ == "__main__":
    main()
