#!/usr/bin/env python3
"""Why recently-accessed rows are faster: the bitline transient.

Re-creates the paper's Figure 6 with the built-in circuit model: a
fully-charged cell perturbs its bitline more at activation, so the
sense amplifier reaches the ready-to-access level sooner (lower tRCD)
and finishes restoring sooner (lower tRAS).

Prints an ASCII rendering of the two voltage curves plus the derived
caching-duration timing table (the paper's Table 2).

Run:  python examples/bitline_physics.py
"""

from repro.circuit.spice import bitline_transient, derive_timing_table

WIDTH = 60
VDD = 1.5


def ascii_plot(full, partial) -> None:
    """Render both bitline curves on one time axis."""
    t_max = 40.0
    print(f"bitline voltage vs time (x = fully charged, o = 64 ms old)")
    print(f"Vdd  {'-' * WIDTH}")
    levels = [1.5, 1.4, 1.3, 1.2, 1.125, 1.0, 0.9, 0.8, 0.75]
    for level in levels:
        row = [" "] * WIDTH
        for result, marker in ((full, "x"), (partial, "o")):
            for t, v in zip(result.times_ns, result.bitline_v):
                if t > t_max:
                    break
                col = int(t / t_max * (WIDTH - 1))
                if abs(v - level) < 0.035 and row[col] == " ":
                    row[col] = marker
        label = "ready" if abs(level - 1.125) < 1e-9 else f"{level:.2f}"
        print(f"{label:>5s}|{''.join(row)}")
    print(f"     +{'-' * WIDTH}")
    ticks = "".join(f"{int(t):<12d}" for t in range(0, 41, 8))
    print(f"      {ticks} ns")


def main() -> None:
    full = bitline_transient(0.0, t_end_ns=45.0)
    partial = bitline_transient(64.0, t_end_ns=45.0)
    ascii_plot(full, partial)
    print()
    print(f"ready-to-access:  fully charged {full.ready_time_ns:5.1f} ns | "
          f"64 ms old {partial.ready_time_ns:5.1f} ns "
          f"(paper: 10 / 14.5 ns)")
    print(f"tRCD headroom: "
          f"{partial.ready_time_ns - full.ready_time_ns:4.1f} ns "
          f"(paper: 4.5 ns)")
    print(f"tRAS headroom: "
          f"{partial.restore_time_ns - full.restore_time_ns:4.1f} ns "
          f"(paper: 9.6 ns)")

    print("\ncaching duration -> worst-case timings (model-derived "
          "Table 2):")
    print(f"{'duration':>10s} {'tRCD (ns)':>10s} {'tRAS (ns)':>10s}")
    for duration, (trcd, tras) in sorted(derive_timing_table().items()):
        print(f"{f'{duration:g} ms':>10s} {trcd:>10.2f} {tras:>10.2f}")
    print(f"{'baseline':>10s} {13.75:>10.2f} {35.0:>10.2f}")


if __name__ == "__main__":
    main()
