#!/usr/bin/env python3
"""Quickstart: run one workload with and without ChargeCache.

This is the smallest end-to-end use of the library:

1. build the paper's single-core system configuration,
2. attach a synthetic SPEC-like workload (libquantum: streaming with
   bank conflicts, i.e. high row-level temporal locality),
3. run the baseline and the ChargeCache configuration,
4. report IPC, speedup, HCRAC hit rate and DRAM energy.

The mechanism is named by a registry spec string
(:mod:`repro.core.registry`): plain names like ``"chargecache"``,
inline parameters like ``"chargecache(entries=256,duration_ms=0.5)"``,
and ``+``-compositions like ``"chargecache+nuat"`` all work anywhere a
mechanism is accepted.

When you sweep *many* mechanism variants over one workload (the shape
of the paper's Figures 9-11), don't loop this script: the harness CLI
batches same-platform variants through one trace replay
(``chargecache-harness fig9 --jobs 1``; on by default, ``--no-batch``
to compare) and ``System.run_batch`` is the library-level entry point.
Results are bit-identical to serial runs — see DESIGN.md section 8.

Run:  python examples/quickstart.py
"""

from repro import Organization, System, make_trace, single_core_config
from repro.energy.drampower import energy_for_run

WORKLOAD = "libquantum"
INSTRUCTIONS = 40_000

#: The paper's configuration, spelled as a parameterized spec (these
#: values are the registered defaults, so this normalizes to plain
#: "chargecache" — same run, same cache entry).
MECHANISM = "chargecache(entries=128,duration_ms=1)"


def run(mechanism: str):
    config = single_core_config(
        mechanism=mechanism,
        instruction_limit=INSTRUCTIONS,
        warmup_cpu_cycles=10_000,
    )
    org = Organization.from_config(config.dram)
    system = System(config, [make_trace(WORKLOAD, org)])
    return system.run(max_mem_cycles=5_000_000)


def main() -> None:
    print(f"workload: {WORKLOAD} ({INSTRUCTIONS} instructions)")

    base = run("none")
    cc = run(MECHANISM)

    speedup = cc.total_ipc / base.total_ipc - 1.0
    # Timing and IDD currents resolve from the run's configured DRAM
    # standard (DDR3-1600 here).
    e_base = energy_for_run(base)
    e_cc = energy_for_run(cc)
    saved = 1.0 - e_cc.total_pj / e_base.total_pj

    print(f"baseline IPC:        {base.total_ipc:.3f}")
    print(f"ChargeCache IPC:     {cc.total_ipc:.3f}  "
          f"(speedup {speedup:+.1%})")
    print(f"activations:         {cc.activations} "
          f"({cc.mechanism_hit_rate:.0%} served with reduced tRCD/tRAS)")
    print(f"row-buffer hit rate: {cc.row_hit_rate:.0%}")
    print(f"DRAM energy:         {e_base.total_pj / 1e6:.2f} uJ -> "
          f"{e_cc.total_pj / 1e6:.2f} uJ ({saved:+.1%})")


if __name__ == "__main__":
    main()
