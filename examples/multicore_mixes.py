#!/usr/bin/env python3
"""Multiprogrammed 8-core study (the paper's headline scenario).

Eight cores sharing a 4 MB LLC and two DDR3-1600 channels contend for
banks; the resulting row conflicts create the row-level temporal
locality ChargeCache exploits.  This example runs a few of the paper's
20 random mixes and reports weighted speedup for NUAT, ChargeCache and
the LL-DRAM upper bound.

Run:  python examples/multicore_mixes.py [w1 w2 ...]
"""

import sys

from repro.harness.runner import (
    Scale,
    alone_ipcs_for_mix,
    run_mix,
)
from repro.stats.metrics import weighted_speedup
from repro.workloads.mixes import MIX_NAMES, mix_composition

SCALE = Scale(multi_core_instructions=8_000, warmup_cpu_cycles=10_000)
MECHANISMS = ("nuat", "chargecache", "lldram")


def main() -> None:
    mixes = sys.argv[1:] or list(MIX_NAMES[:4])
    header = f"{'mix':5s} {'apps':58s} " + \
        " ".join(f"{m:>12s}" for m in MECHANISMS)
    print(header)
    print("-" * len(header))

    averages = {m: [] for m in MECHANISMS}
    for mix in mixes:
        apps = ",".join(a[:6] for a in mix_composition(mix))
        alone = alone_ipcs_for_mix(mix, SCALE)
        base_ws = weighted_speedup(run_mix(mix, "none", SCALE).ipcs, alone)
        cells = []
        for mech in MECHANISMS:
            ws = weighted_speedup(run_mix(mix, mech, SCALE).ipcs, alone)
            gain = ws / base_ws - 1.0
            averages[mech].append(gain)
            cells.append(f"{gain:+11.1%}")
        print(f"{mix:5s} {apps:58s} " + " ".join(cells))

    print("-" * len(header))
    avg_cells = " ".join(
        f"{sum(v) / len(v):+11.1%}" for v in averages.values())
    print(f"{'AVG':5s} {'':58s} " + avg_cells)
    print("\npaper (all 20 mixes, 1B instructions): "
          "NUAT +2.5%, ChargeCache +8.6%, LL-DRAM ~ +13.4%")


if __name__ == "__main__":
    main()
