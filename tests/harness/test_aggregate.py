"""Tests for the unified aggregation layer (harness.aggregate)."""

import builtins

import pytest

from repro.harness import aggregate, pool, runner
from repro.harness import cache as run_cache
from repro.harness.aggregate import Frame
from repro.harness.spec import RunSpec, Scale

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

SWEEP = [
    RunSpec(kind="single", name=name, mechanism=mech, scale=TINY,
            engine="event")
    for name in ("hmmer", "libquantum")
    for mech in ("none", "chargecache")
]

ROWS = [
    {"name": "a", "mech": "none", "ipc": 1.0},
    {"name": "a", "mech": "cc", "ipc": 2.0},
    {"name": "b", "mech": "none", "ipc": 3.0},
    {"name": "b", "mech": "cc", "ipc": 5.0},
]


@pytest.fixture(autouse=True)
def _fresh(tmp_path):
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "cache"))
    yield
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


class TestFrameVerbs:
    def test_columns_first_seen_order(self):
        frame = Frame([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert frame.columns == ["a", "b", "c"]
        assert len(frame) == 2

    def test_where_equals(self):
        frame = Frame(ROWS)
        sub = frame.where(mech="cc")
        assert [row["name"] for row in sub] == ["a", "b"]
        assert sub.columns == frame.columns

    def test_where_predicate(self):
        frame = Frame(ROWS)
        sub = frame.where(lambda row: row["ipc"] > 2.0, mech="cc")
        assert [row["name"] for row in sub] == ["b"]

    def test_where_absent_column_matches_nothing(self):
        assert len(Frame(ROWS).where(engine="dense")) == 0

    def test_mean_is_sum_over_len(self):
        assert Frame(ROWS).where(mech="cc").mean("ipc") == 3.5
        assert Frame([]).mean("ipc") == 0.0

    def test_column_and_pivot(self):
        frame = Frame(ROWS).where(mech="none")
        assert frame.column("ipc") == [1.0, 3.0]
        assert frame.pivot("name", "ipc") == {"a": 1.0, "b": 3.0}

    def test_groupby_mean(self):
        grouped = Frame(ROWS).groupby(["mech"]).mean("ipc")
        assert grouped.to_records() == [
            {"mech": "none", "ipc": 2.0}, {"mech": "cc", "ipc": 3.5}]

    def test_to_records_uses_column_order(self):
        frame = Frame(ROWS, columns=["ipc", "name"])
        assert frame.to_records()[0] == {"ipc": 1.0, "name": "a"}

    def test_to_pandas_gated(self):
        pytest.importorskip("pandas")
        df = Frame(ROWS).to_pandas()
        assert list(df.columns) == ["name", "mech", "ipc"]

    def test_to_pandas_raises_without_pandas(self, monkeypatch):
        real_import = builtins.__import__

        def no_pandas(name, *args, **kwargs):
            if name == "pandas":
                raise ImportError("gated for test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_pandas)
        with pytest.raises(RuntimeError, match="pandas"):
            Frame(ROWS).to_pandas()


class TestSweepFrame:
    def test_axes_and_metrics(self):
        sweep = pool.execute_sweep(SWEEP)
        frame = aggregate.sweep_frame(sweep)
        assert len(frame) == len(SWEEP)
        for column in ("kind", "name", "mechanism", "label", "source",
                       "total_ipc", "row_hit_rate"):
            assert column in frame.columns
        none = frame.where(mechanism="none")
        assert sorted(none.column("name")) == ["hmmer", "libquantum"]

    def test_mean_matches_hand_loop(self):
        sweep = pool.execute_sweep(SWEEP)
        frame = aggregate.sweep_frame(sweep)
        by_hand = [p.result.total_ipc for p in sweep.points
                   if p.spec.mechanism == "chargecache"]
        assert frame.where(mechanism="chargecache").mean("total_ipc") \
            == sum(by_hand) / len(by_hand)

    def test_specs_frame_serves_from_memo(self):
        pool.execute_sweep(SWEEP)
        frame = aggregate.specs_frame(SWEEP)
        assert set(frame.column("source")) == {"memory"}


class TestStoreFrame:
    def test_from_store_dir(self, tmp_path):
        pool.execute_sweep(SWEEP)
        frame = aggregate.store_frame(str(tmp_path / "cache"))
        assert len(frame) == len(SWEEP)
        assert "key" in frame.columns
        cc = frame.where(mechanism="chargecache")
        assert len(cc) == 2
        for row in cc:
            assert row["key"] == run_cache.cache_key(
                RunSpec(kind="single", name=row["name"],
                        mechanism="chargecache", scale=TINY,
                        engine="event"))

    def test_from_database(self, tmp_path):
        from repro.service.database import ResultsDatabase
        sweep = pool.execute_sweep(SWEEP)
        db = ResultsDatabase(str(tmp_path / "r.sqlite"))
        for point in sweep.points:
            db.record(point.spec, point.result)
        frame = aggregate.store_frame(str(tmp_path / "r.sqlite"),
                                      mechanism="chargecache")
        assert len(frame) == 2
        assert set(frame.column("mechanism")) == {"chargecache"}
        # spec_json is unpacked into axis columns.
        assert set(frame.column("kind")) == {"single"}

    def test_corrupt_envelopes_skipped(self, tmp_path):
        pool.execute_sweep(SWEEP[:1])
        disk = runner.active_disk_cache()
        key = run_cache.cache_key(SWEEP[0])
        with open(disk.path_for(key), "w", encoding="ascii") as fh:
            fh.write("{}")
        assert len(aggregate.store_frame(str(tmp_path / "cache"))) == 0
