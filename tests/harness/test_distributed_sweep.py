"""Resumable + work-stealing sweep tests (journal, claimer, drain).

The ISSUE-level guarantees under test:

* a killed-and-resumed sweep re-simulates **zero** checkpointed specs
  and its journal converges to one line per key;
* racing claimers partition a sweep with per-key simulation count
  exactly one, and the union of their stores is byte-identical to a
  serial run;
* keys claimed by peers are drained from the shared store (source
  ``"remote"``); dead peers' claims are stolen, or the sweep fails
  loudly after its wait budget.
"""

import threading

import pytest

from repro.harness import cache as run_cache
from repro.harness import pool, runner
from repro.harness.journal import SweepJournal
from repro.harness.pool import SweepError, execute_sweep
from repro.harness.spec import RunSpec, Scale
from repro.harness.store import DatabaseClaimer, LocalDirStore
from repro.service.database import ResultsDatabase

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

SWEEP = [
    RunSpec(kind="single", name=name, mechanism=mech, scale=TINY,
            engine="event")
    for name in ("hmmer", "libquantum", "mcf")
    for mech in ("none", "chargecache")
]

KEYS = [run_cache.cache_key(spec) for spec in SWEEP]


@pytest.fixture(autouse=True)
def _fresh(tmp_path):
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "store"))
    yield
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


@pytest.fixture
def sim_log(monkeypatch):
    """Log of every actual simulation (cache keys, in call order)."""
    calls = []
    real = runner._execute_spec

    def counting(spec):
        calls.append(run_cache.cache_key(spec))
        return real(spec)

    monkeypatch.setattr(runner, "_execute_spec", counting)
    return calls


def _serial_reference(tmp_path):
    """Envelope bytes of a plain serial run, from a pristine store."""
    ref_dir = str(tmp_path / "serial-ref")
    runner.configure_disk_cache(ref_dir)
    runner.clear_memo()
    execute_sweep(SWEEP, batch=False)
    runner.clear_memo()
    store = LocalDirStore(ref_dir)
    bytes_by_key = {}
    for key in KEYS:
        with open(store.path_for(key), "rb") as fh:
            bytes_by_key[key] = fh.read()
    runner.configure_disk_cache(str(tmp_path / "store"))
    return bytes_by_key


class TestResumption:
    def test_killed_sweep_resumes_without_resimulating(
            self, tmp_path, sim_log):
        db = ResultsDatabase(str(tmp_path / "r.sqlite"))
        journal_path = str(tmp_path / "w.journal")
        kill_after = 2

        def dying_progress(done, total, point):
            if done >= kill_after:
                raise KeyboardInterrupt("simulated worker death")

        with pytest.raises(BaseException):
            execute_sweep(SWEEP, journal=journal_path,
                          claimer=DatabaseClaimer(db, owner="w1"),
                          batch=False, progress=dying_progress)
        first_run = list(sim_log)
        journal = SweepJournal(journal_path)
        checkpointed = journal.completed_keys()
        assert len(checkpointed) == kill_after

        # Restart: same journal, same store, a fresh process (memo
        # cleared).  Dead-claim stealing lets the restart reclaim its
        # own abandoned pending rows.
        runner.clear_memo()
        sim_log.clear()
        sweep = execute_sweep(
            SWEEP, journal=journal_path,
            claimer=DatabaseClaimer(db, owner="w1-restart",
                                    steal_stale_s=0.0),
            batch=False)
        assert [p.spec for p in sweep.points] == SWEEP

        # Zero checkpointed specs re-simulated, and per-key simulation
        # count across both runs is exactly one.
        assert not (set(sim_log) & checkpointed)
        assert sorted(first_run + sim_log) == sorted(KEYS)

        # The journal converged: one line per key, every key present.
        converged = SweepJournal(journal_path)
        assert converged.completed_keys() == set(KEYS)
        with open(journal_path, encoding="ascii") as fh:
            assert len(fh.readlines()) == len(KEYS)

    def test_rerun_of_finished_sweep_is_all_store_hits(
            self, tmp_path, sim_log):
        db = ResultsDatabase(str(tmp_path / "r.sqlite"))
        journal_path = str(tmp_path / "w.journal")
        claimer = DatabaseClaimer(db, owner="w1")
        execute_sweep(SWEEP, journal=journal_path, claimer=claimer,
                      batch=False)
        runner.clear_memo()
        sim_log.clear()
        sweep = execute_sweep(SWEEP, journal=journal_path,
                              claimer=claimer, batch=False)
        assert sim_log == []
        assert sweep.counts()["disk"] == len(SWEEP)
        with open(journal_path, encoding="ascii") as fh:
            assert len(fh.readlines()) == len(KEYS)


class TestPartitioning:
    def test_racing_claimers_split_with_exactly_one_sim_per_key(
            self, tmp_path, sim_log):
        reference = _serial_reference(tmp_path)
        db = ResultsDatabase(str(tmp_path / "r.sqlite"))
        half = SWEEP[:3]

        # "Peer" wins its chunk first; we deliver its results midway
        # through our own sweep, as a live remote worker would.
        peer_keys = [run_cache.cache_key(spec) for spec in half]
        assert db.claim_many(half, owner="peer",
                             keys=peer_keys) == [True] * 3
        store = LocalDirStore(str(tmp_path / "store"))

        # Compute peer results out of band (separate store), then
        # replicate their envelopes after a short delay.
        peer_dir = str(tmp_path / "peer-store")
        runner.configure_disk_cache(peer_dir)
        runner.clear_memo()
        execute_sweep(half, batch=False)
        runner.clear_memo()
        peer_store = LocalDirStore(peer_dir)
        runner.configure_disk_cache(str(tmp_path / "store"))

        def deliver():
            for spec, key in zip(half, peer_keys):
                store.put_envelope(key, peer_store.get_envelope(key))
                db.record(spec, run_cache.result_from_json(
                    peer_store.get_envelope(key)["result"]),
                    key=key, owner="peer")

        sim_log.clear()
        timer = threading.Timer(0.3, deliver)
        timer.start()
        try:
            sweep = execute_sweep(
                SWEEP, claimer=DatabaseClaimer(db, owner="me"),
                batch=False, remote_wait_s=30.0, remote_poll_s=0.01)
        finally:
            timer.cancel()

        counts = sweep.counts()
        assert counts["computed"] == 3
        assert counts["remote"] == 3
        assert sorted(sim_log) == sorted(
            run_cache.cache_key(spec) for spec in SWEEP[3:])
        # Union of both workers' output is byte-identical to serial.
        for key in KEYS:
            with open(store.path_for(key), "rb") as fh:
                assert fh.read() == reference[key]
        # Results are correct in order.
        assert [p.spec for p in sweep.points] == SWEEP

    def test_dead_peer_claims_are_stolen(self, tmp_path, sim_log):
        db = ResultsDatabase(str(tmp_path / "r.sqlite"))
        half = SWEEP[:3]
        assert all(db.claim_many(
            half, owner="dead-peer",
            keys=[run_cache.cache_key(s) for s in half]))
        sweep = execute_sweep(
            SWEEP,
            claimer=DatabaseClaimer(db, owner="me", steal_stale_s=0.0),
            batch=False, remote_wait_s=5.0, remote_poll_s=0.01)
        assert sweep.counts()["computed"] == len(SWEEP)
        assert sorted(sim_log) == sorted(KEYS)

    def test_unserved_peer_claims_time_out(self, tmp_path):
        db = ResultsDatabase(str(tmp_path / "r.sqlite"))
        spec = SWEEP[0]
        assert db.claim(spec, owner="silent-peer",
                        key=run_cache.cache_key(spec))
        with pytest.raises(SweepError):
            execute_sweep([spec],
                          claimer=DatabaseClaimer(db, owner="me"),
                          batch=False, remote_wait_s=0.2,
                          remote_poll_s=0.01)

    def test_distributed_needs_a_store(self, tmp_path):
        runner.configure_disk_cache(None, enabled=False)
        db = ResultsDatabase(str(tmp_path / "r.sqlite"))
        with pytest.raises(SweepError):
            execute_sweep(SWEEP[:1],
                          claimer=DatabaseClaimer(db, owner="me"))


class TestChunking:
    def test_chunks_pack_whole_units(self):
        units = [["a", "b"], ["c"], ["d", "e"], ["f"]]
        chunks = pool._chunk_units(units, chunk_specs=2)
        # Units are never split across chunks.
        flattened = [unit for chunk in chunks for unit in chunk]
        assert flattened == units
        assert [sum(len(u) for u in chunk) for chunk in chunks] \
            == [2, 3, 1]

    def test_batched_distributed_matches_unbatched(
            self, tmp_path, sim_log):
        db = ResultsDatabase(str(tmp_path / "r.sqlite"))
        batched = execute_sweep(
            SWEEP, claimer=DatabaseClaimer(db, owner="me"),
            batch=True, chunk_specs=2)
        runner.clear_memo()
        runner.configure_disk_cache(str(tmp_path / "other"))
        plain = execute_sweep(SWEEP, batch=False)
        for a, b in zip(batched.results, plain.results):
            assert a.ipcs == b.ipcs
            assert a.mem_cycles == b.mem_cycles
            assert a.mechanism_hits == b.mechanism_hits
