"""Regression tests for the `all` command's shared sweep pool.

`all` must collect every experiment's declared specs, dedupe them, and
execute the union through ONE pool: each distinct cache key is
computed at most once per cold run, every experiment's own prefetch is
then served entirely from the memo (zero computed points), and the
exported artifacts are byte-identical to running the experiments
individually.
"""

from __future__ import annotations

import csv
import filecmp
import json
import os

import pytest

from repro.harness import cli, experiments, runner, scenarios
from repro.harness.spec import Scale

#: Experiments exercised by the shared-pool tests.  All of them accept
#: a single-application workload list ("libquantum"), so one
#: ``--workloads`` value is valid across the whole subset.
SUBSET = ("fig3a", "fig7a", "scaling", "standards")

#: Shrunken scenario families (full matrix wall-clock belongs in the
#: CLI/benchmarks, not unit tests).  Like the real families, they
#: share a DDR3 platform so cross-experiment dedupe is exercised.
SMALL_SCALING = ("c1-r1", "c2-r1")
SMALL_STANDARDS = ("c1-r1", "ddr4-2400-c1")

TINY = Scale(single_core_instructions=2000, multi_core_instructions=900,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)


@pytest.fixture(autouse=True)
def _harness_state(monkeypatch):
    """Shrink the matrix, and restore every global the CLI touches."""
    monkeypatch.setattr(scenarios, "SCALING_SCENARIOS", SMALL_SCALING)
    monkeypatch.setattr(scenarios, "STANDARD_SCENARIOS", SMALL_STANDARDS)
    prev = (runner._disk_enabled, runner._disk_dir, runner.default_jobs)
    yield
    runner.clear_memo()
    experiments.set_default_jobs(None)
    experiments.set_progress(None)
    runner.set_default_engine(None)
    runner.configure_disk_cache(prev[1], enabled=prev[0])
    runner.default_jobs = prev[2]


def _cli(args):
    assert cli.main(args) == 0


def _manifest_keys(csv_dir) -> set:
    path = os.path.join(csv_dir, "cache_manifest.csv")
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert rows, "manifest is empty"
    return {row["cache_key"] for row in rows}


class TestSharedPoolAll:
    def test_all_computes_each_key_once_and_matches_individual_runs(
            self, tmp_path, monkeypatch, capsys):
        subset = {name: cli._EXPERIMENTS[name] for name in SUBSET}
        monkeypatch.setattr(cli, "_EXPERIMENTS", subset)

        cache_all = tmp_path / "cache-all"
        csv_all = tmp_path / "csv-all"
        json_all = tmp_path / "all.json"
        common = ["--workloads", "libquantum", "--scale", "0.03"]
        _cli(["all", *common, "--jobs", "2",
              "--cache-dir", str(cache_all), "--csv", str(csv_all),
              "--json", str(json_all)])
        capsys.readouterr()

        results = json.loads(json_all.read_text())
        assert sorted(results) == sorted(SUBSET)
        # Every experiment was served entirely from the shared
        # prefetch: nothing was recomputed per experiment.
        for name in SUBSET:
            info = results[name]["cache"]
            assert info["computed"] == 0, (
                f"{name} recomputed {info['computed']} points after "
                f"the shared sweep")
            assert info["memory"] == info["points"]

        # Each distinct cache key executed exactly once: the cold
        # cache directory holds one entry per distinct key and nothing
        # else.
        keys = _manifest_keys(csv_all)
        entries = [f for f in os.listdir(cache_all)
                   if f.endswith(".json")]
        assert len(entries) == len(keys)
        assert {f[:-5] for f in entries} == keys

        # Byte-identical exports vs running each experiment alone
        # (fresh memo, separate cold cache, serial pool).
        runner.clear_memo()
        cache_solo = tmp_path / "cache-solo"
        csv_solo = tmp_path / "csv-solo"
        solo_keys = set()
        for name in SUBSET:
            _cli([name, *common, "--jobs", "1",
                  "--cache-dir", str(cache_solo),
                  "--csv", str(csv_solo)])
            # Each run overwrites the manifest; accumulate the union.
            solo_keys |= _manifest_keys(csv_solo)
        capsys.readouterr()
        for name in SUBSET:
            a = os.path.join(csv_all, f"{name}.csv")
            b = os.path.join(csv_solo, f"{name}.csv")
            assert filecmp.cmp(a, b, shallow=False), (
                f"{name}.csv differs between `all` and individual runs")
        # Same work either way: the solo caches cover the same keys.
        assert solo_keys == keys

    def test_warm_all_is_all_hits(self, tmp_path, monkeypatch, capsys):
        subset = {name: cli._EXPERIMENTS[name]
                  for name in ("fig3a", "scaling")}
        monkeypatch.setattr(cli, "_EXPERIMENTS", subset)
        cache_dir = tmp_path / "cache"
        common = ["--workloads", "libquantum", "--scale", "0.03",
                  "--jobs", "2", "--cache-dir", str(cache_dir)]
        _cli(["all", *common])
        capsys.readouterr()
        entries_cold = sorted(os.listdir(cache_dir))

        runner.clear_memo()  # force the disk layer, like a new process
        _cli(["all", *common])
        err = capsys.readouterr().err
        # The shared sweep reports itself, fully served by the cache.
        assert "all (shared pool) [run cache:" in err
        assert " 0 simulated" in err
        assert sorted(os.listdir(cache_dir)) == entries_cold


class TestDeclarations:
    def test_declarations_exist_for_every_sweeping_experiment(self):
        declared = set(experiments.SWEEP_DECLARATIONS)
        assert declared <= set(cli._EXPERIMENTS)
        assert set(cli._EXPERIMENTS) - declared == \
            {"fig6", "table1", "table2"}  # the no-sweep artifacts

    @pytest.mark.parametrize("name,workloads", [
        ("fig3a", ["libquantum"]),
        ("fig7a", ["libquantum"]),
        ("scaling", ["libquantum"]),
        ("standards", ["libquantum"]),
        ("energy", ["libquantum"]),
    ])
    def test_declaration_covers_what_the_experiment_runs(
            self, name, workloads):
        """After prefetching only the declared specs, the experiment
        itself must find every run in the memo — i.e. declarations
        never under-declare."""
        runner.clear_memo()
        experiments.prefetch_experiments([name], workloads, TINY)
        result = cli._EXPERIMENTS[name](workloads, TINY)
        info = result["cache"]
        assert info["computed"] == 0, (
            f"{name} computed {info['computed']} undeclared points")

    def test_declared_specs_dedupe_across_experiments(self):
        """scaling and standards share the DDR3 platforms; the union
        must contain each spec once."""
        specs = experiments.declared_specs(
            ["scaling", "standards"], ["libquantum"], TINY)
        assert len(specs) == len(set(specs))
        scaling = experiments.declared_specs(["scaling"], ["libquantum"],
                                             TINY)
        standards = experiments.declared_specs(["standards"],
                                               ["libquantum"], TINY)
        shared = set(scaling) & set(standards)
        assert shared, "expected the DDR3 rows to be shared"
        assert len(specs) == len(set(scaling) | set(standards))
