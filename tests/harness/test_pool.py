"""Tests for the process-pool sweep executor."""

import pytest

from repro.harness import pool, runner
from repro.harness.pool import SweepError, execute_sweep, resolve_jobs
from repro.harness.spec import RunSpec, Scale

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

SWEEP = [
    RunSpec(kind="single", name=name, mechanism=mech, scale=TINY,
            engine="event")
    for name in ("hmmer", "libquantum")
    for mech in ("none", "chargecache")
]


@pytest.fixture(autouse=True)
def _fresh(tmp_path):
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "cache"))
    yield
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestDeterminism:
    def test_parallel_matches_serial_in_order(self):
        serial = execute_sweep(SWEEP, jobs=1)
        assert [p.spec for p in serial.points] == SWEEP
        runner.clear_caches()
        parallel = execute_sweep(SWEEP, jobs=4)
        assert [p.spec for p in parallel.points] == SWEEP
        for ser, par in zip(serial.results, parallel.results):
            assert par.ipcs == ser.ipcs
            assert par.mem_cycles == ser.mem_cycles
            assert par.instructions == ser.instructions
            assert par.activations == ser.activations
            assert par.row_hit_rate == ser.row_hit_rate
            assert par.average_read_latency_cycles == \
                ser.average_read_latency_cycles
            assert par.config == ser.config

    def test_parallel_results_land_in_memo(self):
        execute_sweep(SWEEP, jobs=2)
        # Aggregation code re-requesting the same runs must not fork
        # or recompute: every point is now an in-process memory hit.
        again = execute_sweep(SWEEP, jobs=2)
        assert all(p.source == "memory" for p in again.points)

    def test_second_process_level_run_hits_disk(self):
        execute_sweep(SWEEP, jobs=2)
        runner.clear_memo()  # simulate a fresh process, same cache dir
        again = execute_sweep(SWEEP, jobs=1)
        assert all(p.source == "disk" for p in again.points)

    def test_duplicate_specs_computed_once(self):
        sweep = execute_sweep([SWEEP[0], SWEEP[0], SWEEP[1]], jobs=1)
        assert len(sweep.points) == 3
        assert sweep.points[0].result is sweep.points[1].result
        assert sweep.counts()["points"] == 2
        assert sweep.counts()["computed"] == 2


class TestProgressAndAnnotation:
    def test_progress_callback_sees_every_point(self):
        seen = []
        execute_sweep(SWEEP, jobs=1,
                      progress=lambda done, total, p:
                      seen.append((done, total, p.spec)))
        assert [s[0] for s in seen] == [1, 2, 3, 4]
        assert all(s[1] == len(SWEEP) for s in seen)
        assert {s[2] for s in seen} == set(SWEEP)

    def test_annotation_shape(self):
        sweep = execute_sweep(SWEEP[:2], jobs=1)
        info = sweep.annotation()
        assert info["points"] == 2
        assert info["computed"] == 2
        assert info["jobs"] == 1
        assert len(info["points_detail"]) == 2
        assert all(d["source"] == "computed"
                   for d in info["points_detail"])


class TestFailureSurfacing:
    BAD = RunSpec(kind="single", name="no-such-workload", scale=TINY,
                  engine="event")

    def test_serial_failure_names_the_spec(self):
        with pytest.raises(SweepError) as err:
            execute_sweep([SWEEP[0], self.BAD], jobs=1)
        assert err.value.spec == self.BAD
        assert "no-such-workload" in str(err.value)

    def test_parallel_failure_names_the_spec_without_hanging(self):
        with pytest.raises(SweepError) as err:
            execute_sweep([SWEEP[0], self.BAD, SWEEP[1]], jobs=2)
        assert err.value.spec == self.BAD
        assert "no-such-workload" in str(err.value)

    def test_bad_kind_rejected_at_declaration(self):
        with pytest.raises(ValueError):
            RunSpec(kind="dual", name="hmmer", scale=TINY)


class TestSerialParallelEquivalenceViaCodec:
    def test_parallel_result_equals_disk_decode(self):
        """A pool-returned result and a disk hit decode identically
        (they share the codec), so jobs=N can never leak state the
        persistent layer would not."""
        parallel = execute_sweep(SWEEP[:2], jobs=2)
        runner.clear_memo()
        disk = execute_sweep(SWEEP[:2], jobs=1)
        assert all(p.source == "disk" for p in disk.points)
        for a, b in zip(parallel.results, disk.results):
            assert a.ipcs == b.ipcs
            assert a.mem_cycles == b.mem_cycles
            assert a.config == b.config


def test_stderr_progress_smoke(capsys):
    point = pool.SweepPoint(SWEEP[0], None, "disk", 1.5)
    pool.stderr_progress(1, 4, point)
    err = capsys.readouterr().err
    assert "[1/4]" in err and "disk" in err
