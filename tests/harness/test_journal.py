"""Tests for the sweep completion journal (harness.journal)."""

import json
import os

from repro.harness.journal import SweepJournal


class TestRecordAndLoad:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        with SweepJournal(path) as journal:
            assert journal.record("k1", label="a", source="computed")
            assert journal.record("k2", label="b", source="disk")
        loaded = SweepJournal(path)
        assert len(loaded) == 2
        assert "k1" in loaded and "k2" in loaded
        assert loaded.completed_keys() == {"k1", "k2"}
        assert loaded.computed_keys() == {"k1"}
        assert loaded.source_of("k2") == "disk"

    def test_idempotent_append(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"))
        assert journal.record("k1")
        assert not journal.record("k1")
        assert not journal.record("k1", source="disk")
        assert len(journal) == 1
        assert journal.source_of("k1") == "computed"

    def test_seq_orders_entries(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"))
        for key in ("c", "a", "b"):
            journal.record(key)
        entries = list(journal.entries())
        assert [e["key"] for e in entries] == ["c", "a", "b"]
        assert [e["seq"] for e in entries] == [1, 2, 3]

    def test_reload_continues_seq(self, tmp_path):
        path = str(tmp_path / "j")
        SweepJournal(path).record("k1")
        journal = SweepJournal(path)
        journal.record("k2")
        assert [e["seq"] for e in journal.entries()] == [1, 2]


class TestCrashTolerance:
    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "j")
        journal = SweepJournal(path)
        journal.record("k1")
        journal.record("k2")
        journal.close()
        with open(path, "a", encoding="ascii") as fh:
            fh.write('{"key": "k3", "la')  # crash mid-write
        reloaded = SweepJournal(path)
        assert reloaded.completed_keys() == {"k1", "k2"}
        # And the journal stays appendable after the torn tail.
        assert reloaded.record("k4")
        assert "k4" in SweepJournal(path).completed_keys()

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "j")
        journal = SweepJournal(path)
        journal.record("k1")
        journal.close()
        with open(path, "a", encoding="ascii") as fh:
            fh.write("\n\n")
        assert SweepJournal(path).completed_keys() == {"k1"}

    def test_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "absent"))
        assert len(journal) == 0
        assert journal.completed_keys() == set()


class TestFormat:
    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = str(tmp_path / "j")
        SweepJournal(path).record("k1", label="x", source="computed")
        with open(path, encoding="ascii") as fh:
            line = fh.readline().rstrip("\n")
        assert line == json.dumps(
            {"key": "k1", "label": "x", "seq": 1, "source": "computed"},
            sort_keys=True, separators=(",", ":"))

    def test_no_timestamps(self, tmp_path):
        path = str(tmp_path / "j")
        SweepJournal(path).record("k1")
        entry = next(SweepJournal(path).entries())
        assert set(entry) == {"key", "label", "seq", "source"}

    def test_parent_dir_created(self, tmp_path):
        nested = str(tmp_path / "a" / "b" / "j")
        SweepJournal(nested).record("k1")
        assert os.path.exists(nested)
