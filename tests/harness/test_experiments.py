"""Smoke tests for every experiment driver at a tiny scale.

These verify shapes and basic qualitative facts; the full-scale
assertions live in the benchmarks.
"""

import pytest

from repro.harness import experiments
from repro.harness.runner import Scale, clear_caches

TINY = Scale(single_core_instructions=3000, multi_core_instructions=1500,
             warmup_cpu_cycles=1500, max_mem_cycles=400_000)

WORKLOADS = ["libquantum", "mcf"]
MIXES = ["w1"]


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_caches()
    yield


class TestFig3:
    def test_single(self):
        result = experiments.run_fig3("single", WORKLOADS, TINY)
        assert result["id"] == "fig3a"
        rows = result["rows"]
        assert rows[-1]["workload"] == "AVG"
        avg = rows[-1]
        assert 0 <= avg["rltl_8ms"] <= 1
        assert 0 <= avg["refresh_8ms"] <= 1

    def test_rltl_exceeds_refresh_fraction(self):
        """The paper's headline motivation (Fig. 3)."""
        result = experiments.run_fig3("single", WORKLOADS, TINY)
        avg = result["rows"][-1]
        assert avg["rltl_8ms"] > avg["refresh_8ms"]


class TestFig4:
    def test_interval_monotonicity(self):
        result = experiments.run_fig4("single", WORKLOADS,
                                      intervals_ms=(0.125, 1.0, 32.0),
                                      scale=TINY)
        avg = result["rows"][-1]
        for policy in ("open", "closed"):
            series = [avg[f"{policy}_{i}ms"] for i in (0.125, 1.0, 32.0)]
            assert series == sorted(series)  # RLTL grows with interval


class TestFig6AndTable2:
    def test_fig6_shape(self):
        result = experiments.run_fig6()
        assert result["full"]["ready_ns"] < result["partial"]["ready_ns"]
        assert result["trcd_reduction_ns"] > 0
        assert result["tras_reduction_ns"] > result["trcd_reduction_ns"]

    def test_table2_rows(self):
        result = experiments.run_table2()
        assert result["rows"][0]["duration_ms"] == "baseline"
        assert len(result["rows"]) == 5


class TestFig7:
    def test_single_core(self):
        result = experiments.run_fig7("single", WORKLOADS, scale=TINY)
        avg = result["rows"][-1]
        assert avg["workload"] == "AVG"
        assert avg["lldram"] >= avg["chargecache"] - 0.01
        assert avg["chargecache"] >= -0.005  # never degrades

    def test_rows_sorted_by_rmpkc(self):
        result = experiments.run_fig7("single", WORKLOADS, scale=TINY)
        rmpkcs = [r["rmpkc"] for r in result["rows"][:-1]]
        assert rmpkcs == sorted(rmpkcs)

    def test_eight_core(self):
        result = experiments.run_fig7("eight", MIXES, scale=TINY)
        avg = result["rows"][-1]
        assert avg["chargecache"] >= -0.01


class TestFig8:
    def test_energy_reduction_bounds(self):
        result = experiments.run_fig8(("single",), WORKLOADS, TINY)
        row = result["rows"][0]
        assert -0.05 <= row["average_reduction"] <= 1.0
        assert row["max_reduction"] >= row["average_reduction"]


class TestFig9And10:
    def test_hit_rate_monotone_in_capacity(self):
        result = experiments.run_fig9(("single",), (64, 256),
                                      WORKLOADS, TINY)
        by_cap = {r["entries"]: r["hit_rate"] for r in result["rows"]}
        assert by_cap[256] >= by_cap[64] - 0.02
        assert by_cap["unlimited"] >= by_cap[256] - 0.02

    def test_fig10_shape(self):
        result = experiments.run_fig10(("single",), (64, 256),
                                       WORKLOADS, TINY)
        assert len(result["rows"]) == 2


class TestFig11:
    def test_duration_sweep(self):
        result = experiments.run_fig11(("single",), (1.0, 16.0),
                                       WORKLOADS, TINY)
        by_dur = {r["duration_ms"]: r for r in result["rows"]}
        # Longer duration -> weaker reductions -> no better speedup.
        assert by_dur[1.0]["reductions"] >= by_dur[16.0]["reductions"]


class TestEnergy:
    """Per-standard energy experiment (fig8 x Section 7.2)."""

    SMALL = ("c1-r1", "ddr4-2400-c1")

    @pytest.fixture(autouse=True)
    def _small_family(self, monkeypatch):
        from repro.harness import scenarios
        monkeypatch.setattr(scenarios, "STANDARD_SCENARIOS", self.SMALL)

    def test_per_standard_rows(self):
        result = experiments.run_energy(WORKLOADS, TINY)
        assert result["id"] == "energy"
        by_scen = {r["scenario"]: r for r in result["rows"]}
        assert set(by_scen) == set(self.SMALL)
        ddr3 = by_scen["c1-r1"]
        ddr4 = by_scen["ddr4-2400-c1"]
        assert ddr3["standard"] == "DDR3-1600"
        assert ddr4["standard"] == "DDR4-2400"
        # Each row carries its own standard's electrical identity.
        assert ddr3["vdd"] == 1.5 and ddr4["vdd"] == 1.2
        assert ddr4["tck_ns"] == pytest.approx(1000.0 / 1200.0)
        for row in result["rows"]:
            assert row["n"] == len(WORKLOADS)
            assert row["baseline_uj"] > 0
            assert row["max_reduction"] >= row["average_reduction"]
            assert -0.2 <= row["average_reduction"] <= 1.0

    def test_breakdown_components_non_negative_across_matrix(self):
        """Property check on real runs: no standard's preset yields a
        negative energy component anywhere in the sampled matrix."""
        from repro.energy.drampower import energy_for_run
        from repro.harness.runner import run_scenario
        experiments.run_energy(WORKLOADS, TINY)  # populate the memo
        for scen in self.SMALL:
            for mech in ("none", "chargecache"):
                for name in WORKLOADS:
                    run = run_scenario(scen, name, mech, TINY,
                                       idle_finished=True)
                    breakdown = energy_for_run(run)
                    for key, value in breakdown.as_dict().items():
                        assert value >= 0, (scen, mech, name, key)


class TestOverheadAndConfig:
    def test_sec63(self):
        result = experiments.run_sec63(TINY, mix="w1")
        assert result["storage_bytes"] == 5376
        assert result["area_mm2"] == pytest.approx(0.022, rel=0.02)
        assert 0.05 < result["average_power_mw"] < 1.0

    def test_sec63_reports_run_config_overhead(self):
        """The run-config overhead rides alongside the paper-config
        numbers; on the default eight-core mix platform the two design
        points coincide."""
        result = experiments.run_sec63(TINY, mix="w1")
        assert result["config_storage_bytes"] == result["storage_bytes"]
        assert result["config_area_mm2"] == \
            pytest.approx(result["area_mm2"])
        assert result["config_average_power_mw"] == \
            pytest.approx(result["average_power_mw"])

    def test_table1_echo(self):
        result = experiments.run_table1()
        assert result["dram"]["trcd_cycles"] == 11
        assert result["chargecache"]["entries"] == 128
        assert result["processor"]["cores"] == [1, 8]
