"""Tests for the pluggable ResultStore backends (harness.store)."""

import os

import pytest

from repro.harness import cache as run_cache
from repro.harness import runner
from repro.harness.spec import RunSpec, Scale
from repro.harness.store import (
    LayeredStore,
    LocalDirStore,
    ResultStore,
    is_store_url,
    open_store,
    store_url,
)

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

SPEC = RunSpec(kind="single", name="hmmer", mechanism="none", scale=TINY,
               engine="event")


@pytest.fixture(autouse=True)
def _fresh(tmp_path):
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(None, enabled=False)
    yield
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


def _result():
    return runner.run_spec(SPEC)


class TestURLParsing:
    def test_is_store_url(self):
        assert is_store_url("http://127.0.0.1:8023")
        assert is_store_url("file:///tmp/x")
        assert is_store_url("layered:/tmp/a,http://h:1")
        assert not is_store_url("/tmp/plain/dir")
        assert not is_store_url("relative/dir")

    def test_plain_path_and_file_url(self, tmp_path):
        a = open_store(str(tmp_path / "a"))
        b = open_store(f"file://{tmp_path / 'a'}")
        assert isinstance(a, LocalDirStore)
        assert isinstance(b, LocalDirStore)
        assert a.root == b.root
        assert store_url(a) == f"file://{tmp_path / 'a'}"

    def test_http_url(self):
        store = open_store("http://127.0.0.1:1")  # never contacted
        assert store.scheme == "http"
        assert store_url(store) == "http://127.0.0.1:1"

    def test_layered_url(self, tmp_path):
        store = open_store(f"layered:{tmp_path / 'l'},http://127.0.0.1:1")
        assert isinstance(store, LayeredStore)
        assert isinstance(store.local, LocalDirStore)
        assert store.remote.scheme == "http"

    def test_layered_default_local(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dflt"))
        store = open_store("layered:http://127.0.0.1:1")
        assert isinstance(store.local, LocalDirStore)
        assert store.local.root == str(tmp_path / "dflt")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            open_store("ftp://example.com/cache")

    def test_layered_remote_must_not_nest(self, tmp_path):
        with pytest.raises(ValueError):
            open_store(f"layered:{tmp_path},layered:{tmp_path}")


class TestLocalDirStore:
    def test_is_a_result_store(self, tmp_path):
        store = LocalDirStore(str(tmp_path))
        assert isinstance(store, ResultStore)
        assert isinstance(run_cache.RunCache(str(tmp_path)), ResultStore)

    def test_round_trip(self, tmp_path):
        store = LocalDirStore(str(tmp_path))
        result = _result()
        key = run_cache.cache_key(SPEC)
        assert not store.contains(key)
        store.put(key, SPEC, result)
        assert store.contains(key)
        assert store.keys() == [key]
        hit = store.get(key)
        assert hit.ipcs == result.ipcs
        envelope = store.get_envelope(key)
        assert envelope["key"] == key
        assert envelope["schema"] == run_cache.SCHEMA_VERSION


class TestLayeredStore:
    def _pair(self, tmp_path):
        local = LocalDirStore(str(tmp_path / "local"))
        remote = LocalDirStore(str(tmp_path / "remote"))
        return local, remote, LayeredStore(local, remote)

    def test_write_through(self, tmp_path):
        local, remote, layered = self._pair(tmp_path)
        key = run_cache.cache_key(SPEC)
        layered.put(key, SPEC, _result())
        assert local.contains(key) and remote.contains(key)

    def test_read_through_with_write_back(self, tmp_path):
        local, remote, layered = self._pair(tmp_path)
        key = run_cache.cache_key(SPEC)
        remote.put(key, SPEC, _result())
        assert not local.contains(key)
        hit = layered.get(key)
        assert hit is not None
        # The remote envelope was replicated locally, byte-identical.
        assert local.contains(key)
        with open(local.path_for(key), "rb") as a, \
                open(remote.path_for(key), "rb") as b:
            assert a.read() == b.read()

    def test_keys_union(self, tmp_path):
        local, remote, layered = self._pair(tmp_path)
        key = run_cache.cache_key(SPEC)
        remote.put(key, SPEC, _result())
        assert layered.keys() == [key]
        assert layered.contains(key)

    def test_clear_is_local_only(self, tmp_path):
        local, remote, layered = self._pair(tmp_path)
        key = run_cache.cache_key(SPEC)
        layered.put(key, SPEC, _result())
        layered.clear()
        assert not local.contains(key)
        assert remote.contains(key)


class TestRunnerBinding:
    def test_url_binding_opens_a_store(self, tmp_path):
        runner.configure_disk_cache(f"file://{tmp_path / 'c'}")
        disk = runner.active_disk_cache()
        assert isinstance(disk, LocalDirStore)

    def test_plain_dir_binding_unchanged(self, tmp_path):
        runner.configure_disk_cache(str(tmp_path / "c"))
        disk = runner.active_disk_cache()
        assert isinstance(disk, run_cache.RunCache)


class TestEnvelopeValidation:
    def test_put_envelope_rejects_key_mismatch(self, tmp_path):
        store = LocalDirStore(str(tmp_path))
        key = run_cache.cache_key(SPEC)
        store.put(key, SPEC, _result())
        envelope = store.get_envelope(key)
        with pytest.raises(ValueError):
            store.put_envelope("0" * 64, envelope)

    def test_put_envelope_rejects_schema_mismatch(self, tmp_path):
        store = LocalDirStore(str(tmp_path))
        key = run_cache.cache_key(SPEC)
        store.put(key, SPEC, _result())
        envelope = dict(store.get_envelope(key))
        envelope["schema"] = 999
        with pytest.raises(ValueError):
            store.put_envelope(key, envelope)

    def test_get_envelope_tolerates_corruption(self, tmp_path):
        store = LocalDirStore(str(tmp_path))
        key = run_cache.cache_key(SPEC)
        store.put(key, SPEC, _result())
        with open(store.path_for(key), "w", encoding="ascii") as fh:
            fh.write("{not json")
        assert store.get_envelope(key) is None
        assert store.get(key) is None

    def test_envelope_replication_preserves_bytes(self, tmp_path):
        src = LocalDirStore(str(tmp_path / "src"))
        dst = LocalDirStore(str(tmp_path / "dst"))
        key = run_cache.cache_key(SPEC)
        store_path = src.put(key, SPEC, _result())
        dst.put_envelope(key, src.get_envelope(key))
        with open(store_path, "rb") as a, \
                open(dst.path_for(key), "rb") as b:
            assert a.read() == b.read()
