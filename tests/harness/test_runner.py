"""Tests for the harness run manager."""

import pytest

from repro.harness.runner import (
    Scale,
    build_config,
    clear_caches,
    current_scale,
    run_workload,
)

TINY = Scale(single_core_instructions=2000, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)


class TestScale:
    def test_default_scale(self):
        scale = Scale()
        assert scale.single_core_instructions > 0
        assert scale.time_scale == 64.0

    def test_scaled(self):
        assert Scale().scaled(2.0).single_core_instructions == \
            2 * Scale().single_core_instructions

    def test_scaled_floors(self):
        assert Scale().scaled(1e-9).single_core_instructions == 1000

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            Scale().scaled(0)

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert current_scale().single_core_instructions == \
            2 * Scale().single_core_instructions

    def test_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert current_scale().single_core_instructions == \
            8 * Scale().single_core_instructions


class TestBuildConfig:
    def test_single_mode(self):
        cfg = build_config("single", "chargecache", TINY)
        assert cfg.processor.num_cores == 1
        assert cfg.controller.row_policy == "open"
        assert cfg.instruction_limit == 2000

    def test_eight_mode(self):
        cfg = build_config("eight", "none", TINY)
        assert cfg.processor.num_cores == 8
        assert cfg.dram.channels == 2

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            build_config("dual", "none", TINY)

    def test_duration_selects_reductions(self):
        cfg1 = build_config("single", "chargecache", TINY,
                            cc_duration_ms=1.0)
        cfg16 = build_config("single", "chargecache", TINY,
                             cc_duration_ms=16.0)
        assert cfg1.chargecache.trcd_reduction_cycles == 4
        assert cfg16.chargecache.trcd_reduction_cycles < 4

    def test_capacity_override(self):
        cfg = build_config("single", "chargecache", TINY, cc_entries=512)
        assert cfg.chargecache.entries == 512

    def test_row_policy_override(self):
        cfg = build_config("single", "none", TINY, row_policy="closed")
        assert cfg.controller.row_policy == "closed"


class TestCaching:
    def test_identical_runs_memoised(self):
        clear_caches()
        a = run_workload("hmmer", "none", TINY)
        b = run_workload("hmmer", "none", TINY)
        assert a is b  # same object: cache hit

    def test_different_mechanism_not_shared(self):
        clear_caches()
        a = run_workload("hmmer", "none", TINY)
        b = run_workload("hmmer", "chargecache", TINY)
        assert a is not b

    def test_clear_caches(self):
        a = run_workload("hmmer", "none", TINY)
        clear_caches()
        b = run_workload("hmmer", "none", TINY)
        assert a is not b
        # Determinism: the recomputed result matches.
        assert a.ipcs == b.ipcs
