"""Tests for the harness run manager."""

import pytest

from repro.harness import runner
from repro.harness.runner import (
    Scale,
    alone_spec,
    build_config,
    clear_caches,
    clear_memo,
    current_scale,
    mix_spec,
    run_spec_ex,
    run_workload,
    workload_spec,
)

TINY = Scale(single_core_instructions=2000, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)


class TestScale:
    def test_default_scale(self):
        scale = Scale()
        assert scale.single_core_instructions > 0
        assert scale.time_scale == 64.0

    def test_scaled(self):
        assert Scale().scaled(2.0).single_core_instructions == \
            2 * Scale().single_core_instructions

    def test_scaled_floors(self):
        assert Scale().scaled(1e-9).single_core_instructions == 1000

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            Scale().scaled(0)

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert current_scale().single_core_instructions == \
            2 * Scale().single_core_instructions

    def test_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert current_scale().single_core_instructions == \
            8 * Scale().single_core_instructions


class TestBuildConfig:
    def test_single_mode(self):
        cfg = build_config("single", "chargecache", TINY)
        assert cfg.processor.num_cores == 1
        assert cfg.controller.row_policy == "open"
        assert cfg.instruction_limit == 2000

    def test_eight_mode(self):
        cfg = build_config("eight", "none", TINY)
        assert cfg.processor.num_cores == 8
        assert cfg.dram.channels == 2

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            build_config("dual", "none", TINY)

    def test_duration_selects_reductions(self):
        cfg1 = build_config("single", "chargecache", TINY,
                            cc_duration_ms=1.0)
        cfg16 = build_config("single", "chargecache", TINY,
                             cc_duration_ms=16.0)
        assert cfg1.chargecache.trcd_reduction_cycles == 4
        assert cfg16.chargecache.trcd_reduction_cycles < 4

    def test_capacity_override(self):
        cfg = build_config("single", "chargecache", TINY, cc_entries=512)
        assert cfg.chargecache.entries == 512

    def test_row_policy_override(self):
        cfg = build_config("single", "none", TINY, row_policy="closed")
        assert cfg.controller.row_policy == "closed"


class TestSpecBuilders:
    def test_workload_spec_normalises_engine_and_scale(self):
        spec = workload_spec("hmmer", "chargecache", TINY)
        assert spec.kind == "single"
        assert spec.engine in ("event", "dense")  # concrete, never None
        assert spec.scale == TINY

    def test_default_scale_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        spec = workload_spec("hmmer")
        assert spec.scale == current_scale()

    def test_mix_and_alone_kinds(self):
        assert mix_spec("w1", scale=TINY).kind == "eight"
        alone = alone_spec("hmmer", TINY)
        assert alone.kind == "alone"
        assert alone.mechanism == "none"

    def test_spec_paths_share_the_memo_with_run_workload(self):
        clear_caches()
        via_fn = run_workload("hmmer", "none", TINY)
        _, source = run_spec_ex(workload_spec("hmmer", "none", TINY))
        assert source == "memory"  # identical spec, identical key
        assert via_fn is runner.run_spec(
            workload_spec("hmmer", "none", TINY))


class TestCaching:
    def test_identical_runs_memoised(self):
        clear_caches()
        a = run_workload("hmmer", "none", TINY)
        b = run_workload("hmmer", "none", TINY)
        assert a is b  # same object: cache hit

    def test_different_mechanism_not_shared(self):
        clear_caches()
        a = run_workload("hmmer", "none", TINY)
        b = run_workload("hmmer", "chargecache", TINY)
        assert a is not b

    def test_clear_caches(self):
        a = run_workload("hmmer", "none", TINY)
        clear_caches()
        b = run_workload("hmmer", "none", TINY)
        assert a is not b
        # Determinism: the recomputed result matches.
        assert a.ipcs == b.ipcs

    def test_clear_caches_also_clears_disk_layer(self):
        """clear_caches must point the next run at an empty persistent
        layer too, or test isolation would silently read stale disk
        entries after the memo is dropped."""
        clear_caches()
        run_workload("hmmer", "none", TINY)
        clear_caches()
        _, source = run_spec_ex(workload_spec("hmmer", "none", TINY))
        assert source == "computed"  # neither memo nor disk survived

    def test_memo_clear_falls_through_to_disk(self):
        clear_caches()
        a = run_workload("hmmer", "none", TINY)
        clear_memo()
        b, source = run_spec_ex(workload_spec("hmmer", "none", TINY))
        if runner.active_disk_cache() is not None:
            assert source == "disk"
            assert b is not a  # restored object, not the memo entry
        assert b.ipcs == a.ipcs
        assert b.mem_cycles == a.mem_cycles
