"""Batch-vs-serial sweep equivalence and grouping safety.

Satellite guarantees for the batched sweep path:

* a randomized property test — sampled (platform x mechanism-spec)
  grids must produce byte-identical results and identical persistent
  cache contents whether executed batched or one-at-a-time;
* a grouping guard — :func:`~repro.harness.spec.batch_signature` may
  only merge specs whose cache keys agree on every non-mechanism
  field, so batching can never alias two distinct platform/workload
  cache entries.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.harness import cache as run_cache
from repro.harness import pool, runner
from repro.harness.cache import cache_key, result_to_json
from repro.harness.pool import execute_sweep
from repro.harness.spec import (
    MECHANISM_FIELDS,
    RunSpec,
    Scale,
    batch_signature,
)

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)


@pytest.fixture(autouse=True)
def _fresh(tmp_path):
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "cache"))
    yield
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


#: Mechanism axes sampled by the property test: registry spec strings
#: paired with the cc_* shorthand knobs, mixing replay-collapsible
#: mechanisms, the replay-excluded one (nuat), and compositions.
MECHANISM_AXIS = [
    ("none", {}),
    ("chargecache", {}),
    ("chargecache", {"cc_entries": 64}),
    ("chargecache", {"cc_entries": 512}),
    ("chargecache", {"cc_unbounded": True}),
    ("lldram", {}),
    ("nuat", {}),
    ("chargecache+nuat", {}),
]

#: Platform axes: (kind, name, scenario, extra spec fields).
PLATFORM_AXIS = [
    ("single", "hmmer", None, {}),
    ("single", "libquantum", None, {"seed": 2}),
    ("single", "mcf", None, {"row_policy": "closed"}),
    ("eight", "w1", None, {}),
]


def _sampled_sweep(rng: random.Random, points: int):
    specs = []
    for _ in range(points):
        kind, name, scenario, extra = rng.choice(PLATFORM_AXIS)
        mechanism, cc = rng.choice(MECHANISM_AXIS)
        specs.append(RunSpec(kind=kind, name=name, mechanism=mechanism,
                             scale=TINY, engine="event",
                             scenario=scenario, **extra, **cc))
    return specs


@pytest.mark.parametrize("seed", (0, 1))
def test_batched_sweep_is_bit_identical_to_serial(seed, tmp_path):
    specs = _sampled_sweep(random.Random(seed), points=10)

    runner.configure_disk_cache(str(tmp_path / "batched"))
    batched = execute_sweep(specs, jobs=1, batch=True)
    batched_keys = set(runner.active_disk_cache().keys())

    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "serial"))
    serial = execute_sweep(specs, jobs=1, batch=False)
    serial_keys = set(runner.active_disk_cache().keys())

    assert [p.spec for p in batched.points] == specs
    for b, s in zip(batched.points, serial.points):
        assert result_to_json(b.result) == result_to_json(s.result), \
            b.spec.label()
    # Both paths persist under exactly the same content-addressed keys.
    assert batched_keys == serial_keys
    assert all(p.batch_group is None for p in serial.points)


def test_batched_points_warm_a_serial_rerun():
    specs = [RunSpec(kind="single", name="hmmer", mechanism=mech,
                     scale=TINY, engine="event", cc_entries=entries)
             for mech, entries in (("none", None), ("chargecache", 64),
                                   ("chargecache", 256))]
    batched = execute_sweep(specs, jobs=1, batch=True)
    assert batched.counts()["batched"] == 3
    runner.clear_memo()  # fresh process, same persistent cache
    warm = execute_sweep(specs, jobs=1, batch=True)
    assert all(p.source == "disk" for p in warm.points)
    assert warm.counts()["batched"] == 0


class TestParallelBatching:
    """Regression: batching must survive ``--jobs > 1``.

    Parallel sweeps used to fall back silently to one simulation per
    point, losing the multi-variant collapse with zero telemetry; now
    each batch group is the unit of pool distribution.
    """

    SPECS = [RunSpec(kind="single", name=name, mechanism=mech,
                     scale=TINY, engine="event", cc_entries=entries)
             for name in ("hmmer", "libquantum")
             for mech, entries in (("none", None), ("chargecache", 64),
                                   ("chargecache", 256))]

    def test_parallel_sweep_keeps_batch_groups(self, tmp_path):
        runner.configure_disk_cache(str(tmp_path / "par"))
        parallel = execute_sweep(self.SPECS, jobs=2, batch=True)
        counts = parallel.counts()
        assert counts["computed"] == len(self.SPECS)
        assert counts["batched"] == len(self.SPECS)
        # Two workloads -> two batch groups, three variants each.
        groups = {}
        for point in parallel.points:
            groups.setdefault(point.batch_group, []).append(point.spec)
        assert len(groups) == 2
        for members in groups.values():
            assert len(members) == 3
            assert len({batch_signature(s) for s in members}) == 1

    def test_parallel_batched_matches_serial_unbatched(self, tmp_path):
        runner.configure_disk_cache(str(tmp_path / "par"))
        parallel = execute_sweep(self.SPECS, jobs=2, batch=True)
        parallel_keys = set(runner.active_disk_cache().keys())

        runner.clear_memo()
        runner.configure_disk_cache(str(tmp_path / "ser"))
        serial = execute_sweep(self.SPECS, jobs=1, batch=False)
        serial_keys = set(runner.active_disk_cache().keys())

        assert [p.spec for p in parallel.points] == self.SPECS
        for par, ser in zip(parallel.points, serial.points):
            assert result_to_json(par.result) == \
                result_to_json(ser.result), par.spec.label()
        assert parallel_keys == serial_keys

    def test_parallel_no_batch_stays_ungrouped(self, tmp_path):
        runner.configure_disk_cache(str(tmp_path / "nobatch"))
        sweep = execute_sweep(self.SPECS, jobs=2, batch=False)
        assert all(p.batch_group is None for p in sweep.points)
        assert sweep.counts()["computed"] == len(self.SPECS)

    def test_parallel_failure_inside_group_names_the_spec(self,
                                                          tmp_path):
        runner.configure_disk_cache(str(tmp_path / "fail"))
        bad = RunSpec(kind="single", name="no-such-workload",
                      scale=TINY, engine="event")
        with pytest.raises(pool.SweepError) as err:
            execute_sweep(self.SPECS[:3] + [bad], jobs=2, batch=True)
        assert err.value.spec == bad
        assert "no-such-workload" in str(err.value)


class TestGroupingGuard:
    BASE = dict(kind="single", name="hmmer", scale=TINY, engine="event")

    def test_mechanism_fields_do_not_split_groups(self):
        a = RunSpec(mechanism="none", **self.BASE)
        b = RunSpec(mechanism="chargecache", cc_entries=64,
                    cc_duration_ms=4.0, cc_unbounded=False, **self.BASE)
        assert batch_signature(a) == batch_signature(b)
        assert cache_key(a) != cache_key(b)

    @pytest.mark.parametrize("field,value", [
        ("name", "mcf"),
        ("seed", 9),
        ("engine", "dense"),
        ("row_policy", "closed"),
        ("idle_finished", True),
        ("enable_rltl", True),
    ])
    def test_non_mechanism_fields_split_groups(self, field, value):
        a = RunSpec(mechanism="chargecache", **self.BASE)
        b = RunSpec(mechanism="chargecache",
                    **{**self.BASE, field: value})
        assert batch_signature(a) != batch_signature(b)

    def test_signature_covers_every_non_mechanism_key_field(self):
        """Batch grouping never merges specs whose cache keys differ
        on non-mechanism fields — structurally: the signature is the
        cache key's own payload minus exactly MECHANISM_FIELDS."""
        spec = RunSpec(mechanism="chargecache", **self.BASE)
        payload = spec.key_payload()
        signature_fields = set(json.loads(batch_signature(spec)))
        assert signature_fields == set(payload) - set(MECHANISM_FIELDS)

    def test_runner_rejects_mixed_groups(self):
        a = RunSpec(mechanism="none", **self.BASE)
        b = RunSpec(mechanism="chargecache",
                    **{**self.BASE, "name": "mcf"})
        with pytest.raises(runner.BatchIncompatible):
            runner.run_spec_batch([a, b])

    def test_pool_never_groups_across_signatures(self):
        specs = [
            RunSpec(mechanism="none", **self.BASE),
            RunSpec(mechanism="chargecache", **self.BASE),
            RunSpec(mechanism="none", **{**self.BASE, "name": "mcf"}),
            RunSpec(mechanism="chargecache",
                    **{**self.BASE, "name": "mcf"}),
        ]
        sweep = execute_sweep(specs, jobs=1, batch=True)
        groups = {}
        for point in sweep.points:
            groups.setdefault(point.batch_group, []).append(point.spec)
        assert len(groups) == 2
        for members in groups.values():
            signatures = {batch_signature(s) for s in members}
            assert len(signatures) == 1
