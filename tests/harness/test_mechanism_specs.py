"""End-to-end tests for parameterized mechanism specs in the harness.

Acceptance contract of the registry redesign: a
``"chargecache(entries=256)+nuat"``-style spec runs end-to-end, lands
on the same RunResult as the equivalent hand-built configuration, and
order-permuted compositions share one cache key.
"""

import pytest

from repro.harness import cli, runner
from repro.harness.cache import cache_key
from repro.harness.runner import (
    Scale,
    build_config,
    clear_memo,
    run_spec_ex,
    run_workload,
    workload_spec,
)
from repro.harness.scenarios import scenario_config
from repro.harness.spec import RunSpec

TINY = Scale(single_core_instructions=2000, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)


class TestSpecNormalization:
    def test_parameterized_spec_equals_handbuilt_spec(self):
        inline = workload_spec("libquantum",
                               "nuat+chargecache(entries=256)", TINY)
        handbuilt = workload_spec("libquantum", "chargecache+nuat", TINY,
                                  cc_entries=256)
        assert inline == handbuilt
        assert cache_key(inline) == cache_key(handbuilt)

    def test_order_permuted_compositions_share_one_key(self):
        keys = {cache_key(workload_spec("mcf", spec, TINY))
                for spec in ("chargecache+nuat", "nuat+chargecache")}
        assert len(keys) == 1

    def test_direct_runspec_normalizes_at_key_time(self):
        """Specs built around the sanctioned constructors still hash
        canonically (memo identity differs, disk identity must not)."""
        direct = RunSpec(kind="single", name="mcf",
                         mechanism="nuat+chargecache(entries=256)",
                         scale=TINY)
        sanctioned = workload_spec("mcf", "chargecache+nuat", TINY,
                                   cc_entries=256)
        assert cache_key(direct) == cache_key(sanctioned)

    def test_default_valued_params_join_the_plain_key(self):
        assert cache_key(workload_spec(
            "mcf", "chargecache(entries=128,duration_ms=1.0)", TINY)) == \
            cache_key(workload_spec("mcf", "chargecache", TINY))

    def test_runspec_rejects_bad_mechanism_eagerly(self):
        with pytest.raises(ValueError):
            RunSpec(kind="single", name="mcf", mechanism="warp", scale=TINY)
        with pytest.raises(ValueError):
            workload_spec("mcf", "chargecache(entries=-4)", TINY)

    def test_conflicting_shorthand_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            workload_spec("mcf", "chargecache(entries=256)", TINY,
                          cc_entries=64)


class TestEndToEnd:
    def test_spec_string_run_is_the_handbuilt_run(self):
        """Same RunResult object: one memo entry serves both
        spellings; counters of a recompute match bit-for-bit."""
        clear_memo()
        via_spec = run_workload("libquantum",
                                "chargecache(entries=256)+nuat", TINY)
        via_kwargs, source = run_spec_ex(workload_spec(
            "libquantum", "nuat+chargecache", TINY, cc_entries=256))
        assert source == "memory"
        assert via_kwargs is via_spec
        # And an independent recompute (memo dropped) is bit-identical.
        clear_memo()
        recomputed = run_workload("libquantum", "nuat+chargecache",
                                  TINY, cc_entries=256)
        assert recomputed.ipcs == via_spec.ipcs
        assert recomputed.mem_cycles == via_spec.mem_cycles
        assert recomputed.mechanism_hits == via_spec.mechanism_hits
        assert recomputed.config == via_spec.config

    def test_build_config_accepts_inline_params(self):
        via_spec = build_config("single", "chargecache(entries=256)+nuat",
                                TINY)
        via_kwargs = build_config("single", "chargecache+nuat", TINY,
                                  cc_entries=256)
        assert via_spec == via_kwargs
        assert via_spec.mechanism == "chargecache+nuat"
        assert via_spec.chargecache.entries == 256

    def test_build_config_inline_duration_derives_reductions(self):
        via_spec = build_config("single", "chargecache(duration_ms=16)",
                                TINY)
        via_kwargs = build_config("single", "chargecache", TINY,
                                  cc_duration_ms=16.0)
        assert via_spec == via_kwargs
        assert via_spec.chargecache.trcd_reduction_cycles < 4

    def test_coupled_inline_params_run_through_the_harness(self):
        """entries=3 is only valid with associativity=3 (it fails the
        registered associativity=2); the pair must survive the
        shorthand fold as one inline unit and reach the built
        mechanism (regression: the fold used to split the pair and
        falsely reject it)."""
        clear_memo()
        result = run_workload(
            "libquantum", "chargecache(entries=3,associativity=3)",
            TINY)
        assert result.config.chargecache.entries == 128  # block untouched
        assert result.config.mechanism == \
            "chargecache(associativity=3,entries=3)"

    def test_scenario_config_accepts_inline_params(self):
        via_spec = scenario_config("c8-r2", "chargecache(entries=64)",
                                   TINY)
        via_kwargs = scenario_config("c8-r2", "chargecache", TINY,
                                     cc_entries=64)
        assert via_spec == via_kwargs
        assert via_spec.chargecache.entries == 64

    def test_residual_inline_params_flow_to_the_mechanism(self):
        """Parameters without a RunSpec shorthand (e.g. sharing) stay
        inline in the config's mechanism string and reach the built
        mechanism through the registry."""
        clear_memo()
        result = run_workload("libquantum",
                              "chargecache(sharing=shared)", TINY)
        assert result.config.mechanism == "chargecache(sharing=shared)"
        from repro.core import registry
        from repro.dram.refresh import RefreshScheduler
        from repro.dram.timing import DDR3_1600
        mech = registry.build(
            result.config.mechanism,
            registry.MechanismContext(
                timing=DDR3_1600, num_cores=1,
                refresh_scheduler=RefreshScheduler(DDR3_1600, 1, 64 * 1024),
                config=result.config))
        assert mech.config.sharing == "shared"


class TestCLIMechanisms:
    @pytest.fixture(autouse=True)
    def _harness_state(self):
        """Restore every global ``cli.main`` touches (cache binding,
        jobs, progress, engine) so the session-wide tmp cache stays
        bound for later tests."""
        from repro.harness import experiments
        prev = (runner._disk_enabled, runner._disk_dir,
                runner.default_jobs)
        yield
        runner.clear_memo()
        experiments.set_default_jobs(None)
        experiments.set_progress(None)
        runner.set_default_engine(None)
        runner.configure_disk_cache(prev[1], enabled=prev[0])
        runner.default_jobs = prev[2]

    def test_parser_accepts_mechanism_specs(self):
        args = cli.build_parser().parse_args(
            ["fig7a", "--mechanisms", "chargecache(entries=256)+nuat"])
        assert args.mechanisms == ["chargecache(entries=256)+nuat"]

    def test_main_rejects_bad_mechanism_spec(self, capsys):
        """A bad spec exits with an argparse-style error (usage + the
        parse failure), not a raw traceback."""
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["fig7a", "--mechanisms", "warpdrive"])
        assert excinfo.value.code == 2
        assert "warpdrive" in capsys.readouterr().err

    def test_empty_mechanisms_flag_rejected(self):
        """`--mechanisms` with no specs must error out, not silently
        render a baseline-only figure."""
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig7a", "--mechanisms"])

    def test_fig7_runs_parameterized_specs_from_the_cli(self, capsys,
                                                       monkeypatch):
        """A parameterized composition runs end-to-end through the real
        CLI entry point and lands on the same cached run as the
        order-permuted spelling."""
        monkeypatch.setenv("REPRO_SCALE", "0.001")  # floors at 1000 inst
        runner.clear_memo()
        assert cli.main(["fig7a", "--workloads", "libquantum",
                         "--mechanisms", "chargecache(entries=256)+nuat",
                         "--progress"]) == 0
        capsys.readouterr()
        # The permuted spelling is served from the memo: zero computes.
        from repro.harness import experiments
        result = experiments.run_fig7(
            "single", ["libquantum"],
            mechanisms=("nuat+chargecache(entries=256)",),
            scale=runner.current_scale())
        assert result["cache"]["computed"] == 0
        row = result["rows"][0]
        assert "nuat+chargecache(entries=256)" in row

    def test_all_shared_pool_prefetches_custom_mechanisms(self):
        """`all --mechanisms SPEC` must hand the custom specs to the
        shared pool: the declared fig7 sweep swaps the default
        mechanism set for the custom one instead of simulating runs
        nobody will report."""
        from repro.harness import experiments
        specs = experiments.declared_specs(
            ("fig7a",), ["libquantum"], TINY,
            mechanisms=("chargecache(entries=256)+nuat",))
        mechanisms = {spec.mechanism for spec in specs}
        entries = {spec.cc_entries for spec in specs}
        assert mechanisms == {"none", "chargecache+nuat"}
        assert entries == {None, 256}
        assert not any(spec.mechanism == "lldram" for spec in specs)
