"""Unit tests for the scale-out scenario registry.

Scenario names feed run-cache keys, so this suite locks both the
published name set and each name's platform binding: renaming is a
visible (golden-test) change, silently re-binding a name to a
different platform is a bug.
"""

import pytest

from repro.config import SimulationConfig
from repro.harness import scenarios
from repro.harness.scenarios import (
    SCALING_SCENARIOS,
    STANDARD_SCENARIOS,
    Scenario,
    register_scenario,
    scenario,
    scenario_config,
    scenario_names,
    scenario_traces,
    scenario_workload_names,
)
from repro.harness.spec import RunSpec, Scale

TINY = Scale(single_core_instructions=2000, multi_core_instructions=900,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

#: Golden copy of the registry: name -> (cores, channels, ranks,
#: standard, policy).  A failure here means a cache-key-visible change
#: — fine if intentional (new names invalidate nothing), but a changed
#: *binding* for an existing name must instead use a new name.
GOLDEN = {
    "c1-r1": (1, 1, 1, "DDR3-1600", "open"),
    "c1-r2": (1, 1, 2, "DDR3-1600", "open"),
    "c2-r1": (2, 1, 1, "DDR3-1600", "closed"),
    "c2-r2": (2, 1, 2, "DDR3-1600", "closed"),
    "c4-r1": (4, 2, 1, "DDR3-1600", "closed"),
    "c4-r2": (4, 2, 2, "DDR3-1600", "closed"),
    "c8-r1": (8, 2, 1, "DDR3-1600", "closed"),
    "c8-r2": (8, 2, 2, "DDR3-1600", "closed"),
    "c16-r1": (16, 2, 1, "DDR3-1600", "closed"),
    "c16-r2": (16, 2, 2, "DDR3-1600", "closed"),
    "ddr4-2400-c1": (1, 1, 1, "DDR4-2400", "open"),
    "ddr4-2400-c8": (8, 2, 1, "DDR4-2400", "closed"),
    "lpddr3-1600-c1": (1, 1, 1, "LPDDR3-1600", "open"),
    "lpddr3-1600-c8": (8, 2, 1, "LPDDR3-1600", "closed"),
    "gddr5-4000-c1": (1, 1, 1, "GDDR5-4000", "open"),
    "gddr5-4000-c8": (8, 2, 1, "GDDR5-4000", "closed"),
}


class TestRegistry:
    def test_names_are_stable(self):
        assert set(scenario_names()) == set(GOLDEN)

    def test_platform_bindings_are_stable(self):
        for name, (cores, channels, ranks, std, policy) in GOLDEN.items():
            scen = scenario(name)
            assert (scen.num_cores, scen.channels,
                    scen.ranks_per_channel, scen.standard,
                    scen.row_policy) == (cores, channels, ranks, std,
                                         policy), name

    def test_no_two_names_share_a_platform(self):
        """Duplicate platforms under two names would run (and cache)
        the same simulation twice in the shared `all` sweep."""
        platforms = {}
        for scen in scenarios.all_scenarios():
            key = (scen.num_cores, scen.channels, scen.ranks_per_channel,
                   scen.standard, scen.row_policy)
            assert key not in platforms, (
                f"{scen.name} duplicates {platforms[key]}")
            platforms[key] = scen.name

    def test_experiment_families_are_registered(self):
        for name in SCALING_SCENARIOS + STANDARD_SCENARIOS:
            scenario(name)  # must not raise

    def test_scaling_family_covers_the_matrix(self):
        cores = {scenario(n).num_cores for n in SCALING_SCENARIOS}
        ranks = {scenario(n).ranks_per_channel for n in SCALING_SCENARIOS}
        assert cores == {1, 2, 4, 8, 16}
        assert ranks == {1, 2}

    def test_standards_family_covers_every_preset(self):
        from repro.dram.standards import PRESETS
        stds = {scenario(n).standard for n in STANDARD_SCENARIOS}
        assert stds == set(PRESETS)

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("c3-r1")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(Scenario(name="c1-r1"))


class TestValidation:
    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError,
                           match="ranks_per_channel must be >= 1"):
            Scenario(name="bad", ranks_per_channel=0).validate()

    def test_non_power_of_two_ranks_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            Scenario(name="bad", ranks_per_channel=3).validate()

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError, match="num_cores must be >= 1"):
            Scenario(name="bad", num_cores=0).validate()

    def test_unknown_standard_rejected(self):
        with pytest.raises(ValueError, match="unknown standard"):
            Scenario(name="bad", standard="RLDRAM-3").validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown row policy"):
            Scenario(name="bad", row_policy="adaptive").validate()

    def test_whitespace_name_rejected(self):
        with pytest.raises(ValueError, match="whitespace-free"):
            Scenario(name="c1 r1").validate()


class TestConfigConstruction:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_every_scenario_builds_a_valid_config(self, name):
        cfg = scenario_config(name, "chargecache", TINY)
        assert isinstance(cfg, SimulationConfig)
        cfg.validate()  # idempotent; scenario_config validated already
        scen = scenario(name)
        assert cfg.processor.num_cores == scen.num_cores
        assert cfg.dram.channels == scen.channels
        assert cfg.dram.ranks_per_channel == scen.ranks_per_channel
        assert cfg.dram.standard == scen.standard
        assert cfg.controller.row_policy == scen.row_policy
        # Bus frequency always tracks the standard.
        assert cfg.dram.bus_freq_mhz == scen.timing.freq_mhz

    def test_reductions_rescale_with_the_clock(self):
        """~5/10 ns of charge headroom is more cycles on faster buses."""
        ddr3 = scenario_config("c1-r1", "chargecache", TINY).chargecache
        gddr5 = scenario_config("gddr5-4000-c1", "chargecache",
                                TINY).chargecache
        assert (ddr3.trcd_reduction_cycles,
                ddr3.tras_reduction_cycles) == (4, 8)
        assert gddr5.trcd_reduction_cycles > ddr3.trcd_reduction_cycles
        assert gddr5.tras_reduction_cycles > ddr3.tras_reduction_cycles

    def test_instruction_budget_follows_core_count(self):
        single = scenario_config("c1-r1", "none", TINY)
        multi = scenario_config("c4-r1", "none", TINY)
        assert single.instruction_limit == TINY.single_core_instructions
        assert multi.instruction_limit == TINY.multi_core_instructions


class TestWorkloads:
    def test_mix_cycles_to_core_count(self):
        from repro.workloads.mixes import mix_composition
        apps = mix_composition("w1")
        names16 = scenario_workload_names(scenario("c16-r1"), "w1")
        assert len(names16) == 16
        assert names16 == apps + apps
        names2 = scenario_workload_names(scenario("c2-r1"), "w1")
        assert names2 == apps[:2]

    def test_single_application_replicates(self):
        names = scenario_workload_names(scenario("c4-r1"), "mcf")
        assert names == ["mcf"] * 4

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            scenario_workload_names(scenario("c1-r1"), "nosuchapp")

    def test_traces_match_core_count(self):
        from repro.dram.organization import Organization
        cfg = scenario_config("c2-r2", "none", TINY)
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        traces = scenario_traces(scenario("c2-r2"), "w1", org)
        assert len(traces) == 2


class TestSpecs:
    def test_scenario_spec_validates_eagerly(self):
        from repro.harness.runner import scenario_spec
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_spec("c3-r1", "w1")
        with pytest.raises(KeyError, match="unknown workload"):
            scenario_spec("c1-r1", "nosuchapp")
        spec = scenario_spec("c2-r2", "w1", "chargecache", TINY)
        assert spec.kind == "scenario"
        assert spec.scenario == "c2-r2"
        assert "c2-r2" in spec.label()

    def test_spec_kind_scenario_coupling(self):
        with pytest.raises(ValueError, match="scenario runs"):
            RunSpec(kind="scenario", name="w1")
        with pytest.raises(ValueError, match="scenario runs"):
            RunSpec(kind="single", name="mcf", scenario="c1-r1")
