"""Tests for report rendering and the CLI plumbing."""

import json

import pytest

from repro.harness import experiments
from repro.harness.cli import build_parser, main
from repro.harness.report import (
    format_percent,
    format_table,
    render_experiment,
)


class TestFormatting:
    def test_percent(self):
        assert format_percent(0.086) == "8.6%"
        assert format_percent(0.00235, digits=2) == "0.24%"

    def test_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 0.125)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_table_title(self):
        text = format_table(("x",), [(1,)], title="demo")
        assert text.splitlines()[0] == "demo"


class TestRenderers:
    def test_generic_renderer(self):
        result = {"id": "fig9", "rows": [
            {"mode": "single", "entries": 128, "hit_rate": 0.38}]}
        text = render_experiment(result)
        assert "fig9" in text and "128" in text

    def test_fig6_renderer(self):
        text = render_experiment(experiments.run_fig6())
        assert "tRCD headroom" in text
        assert "paper: 4.5 / 9.6" in text

    def test_sec63_renderer(self):
        result = {
            "id": "sec6.3", "storage_bytes": 5376, "area_mm2": 0.022,
            "area_fraction_of_llc": 0.0024, "average_power_mw": 0.15,
            "power_fraction_of_llc": 0.0023, "access_rate_per_s": 1e7,
            "paper": {"storage_bytes": 5376, "area_mm2": 0.022,
                      "area_fraction_of_llc": 0.0024,
                      "average_power_mw": 0.149,
                      "power_fraction_of_llc": 0.0023}}
        text = render_experiment(result)
        assert "5376" in text


class TestCLI:
    def test_parser_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_main_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "paper_trcd_ns" in out

    def test_main_json_dump(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["fig6", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "fig6" in data

    def test_main_csv_dump(self, tmp_path, capsys):
        out = tmp_path / "csvs"
        assert main(["table2", "--csv", str(out)]) == 0
        assert (out / "table2.csv").read_text().startswith("duration_ms")
