"""Tests for report rendering and the CLI plumbing."""

import json

import pytest

from repro.harness import experiments
from repro.harness.cli import build_parser, main
from repro.harness.report import (
    format_percent,
    format_table,
    render_experiment,
)


class TestFormatting:
    def test_percent(self):
        assert format_percent(0.086) == "8.6%"
        assert format_percent(0.00235, digits=2) == "0.24%"

    def test_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 0.125)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_table_title(self):
        text = format_table(("x",), [(1,)], title="demo")
        assert text.splitlines()[0] == "demo"


class TestRenderers:
    def test_generic_renderer(self):
        result = {"id": "fig9", "rows": [
            {"mode": "single", "entries": 128, "hit_rate": 0.38}]}
        text = render_experiment(result)
        assert "fig9" in text and "128" in text

    def test_fig6_renderer(self):
        text = render_experiment(experiments.run_fig6())
        assert "tRCD headroom" in text
        assert "paper: 4.5 / 9.6" in text

    def test_sec63_renderer(self):
        result = {
            "id": "sec6.3", "storage_bytes": 5376, "area_mm2": 0.022,
            "area_fraction_of_llc": 0.0024, "average_power_mw": 0.15,
            "power_fraction_of_llc": 0.0023, "access_rate_per_s": 1e7,
            "paper": {"storage_bytes": 5376, "area_mm2": 0.022,
                      "area_fraction_of_llc": 0.0024,
                      "average_power_mw": 0.149,
                      "power_fraction_of_llc": 0.0023}}
        text = render_experiment(result)
        assert "5376" in text


class TestCacheAnnotation:
    INFO = {"points": 4, "disk": 3, "memory": 1, "computed": 0,
            "jobs": 2,
            "points_detail": [
                {"label": "single:mcf:none", "source": "disk"}]}

    def test_annotation_line(self):
        from repro.harness.report import render_cache_annotation
        text = render_cache_annotation(self.INFO)
        assert "run cache: 4/4 points were hits" in text
        assert "jobs=2" in text

    def test_rendered_artifact_is_cache_state_independent(self):
        """The rendered table must diff clean across cache states
        (verify recipe: engine parity via stdout diff), so the
        provenance note never lands in render_experiment output."""
        result = {"id": "fig9", "rows": [{"mode": "single",
                                          "entries": 128,
                                          "hit_rate": 0.38}]}
        plain = render_experiment(result)
        annotated = render_experiment(dict(result, cache=self.INFO))
        assert plain == annotated
        assert "run cache" not in annotated

    def test_render_cache_annotation_empty(self):
        from repro.harness.report import render_cache_annotation
        assert render_cache_annotation(None) == ""
        assert render_cache_annotation({}) == ""


class TestCLI:
    @pytest.fixture(autouse=True)
    def _restore_harness_state(self):
        """Every main() call re-binds the global cache/pool state (that
        is its job as a process entry point); restore it so later tests
        never touch the default ~/.cache directory."""
        from repro.harness import runner
        prev = (runner._disk_enabled, runner._disk_dir)
        yield
        runner.clear_memo()
        runner.configure_disk_cache(prev[1], enabled=prev[0])
        runner.default_jobs = None
        experiments.set_default_jobs(None)
        experiments.set_progress(None)
    def test_parser_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"

    def test_parser_execution_flags(self):
        args = build_parser().parse_args(
            ["fig9", "--jobs", "4", "--cache-dir", "/tmp/x",
             "--no-cache", "--progress"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache is True
        assert args.progress is True

    def test_main_jobs_and_cache_flags(self, tmp_path, capsys):
        cache_dir = tmp_path / "cc"
        argv = ["fig3a", "--workloads", "hmmer", "--scale", "0.02",
                "--jobs", "2", "--cache-dir", str(cache_dir),
                "--csv", str(tmp_path / "csv")]
        assert main(argv) == 0
        out = capsys.readouterr()
        assert "run cache: 0/1" in out.err  # cold: simulated
        assert list(cache_dir.glob("*.json"))  # persisted
        manifest = (tmp_path / "csv" / "cache_manifest.csv").read_text()
        assert "single:hmmer:none" in manifest
        # A second CLI pass over the same cache dir is all hits, and
        # the rendered artifact on stdout is byte-identical.
        from repro.harness import runner
        runner.clear_memo()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "run cache: 1/1" in warm.err
        assert warm.out == out.out

    def test_main_no_cache_writes_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "cc"
        assert main(["fig3a", "--workloads", "hmmer", "--scale", "0.02",
                     "--no-cache", "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_main_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "paper_trcd_ns" in out

    def test_main_json_dump(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["fig6", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "fig6" in data

    def test_main_csv_dump(self, tmp_path, capsys):
        out = tmp_path / "csvs"
        assert main(["table2", "--csv", str(out)]) == 0
        assert (out / "table2.csv").read_text().startswith("duration_ms")
