"""Tests for CSV export of experiment results."""

import csv
import io

from repro.harness.experiments import run_fig6, run_table2
from repro.harness.export import (
    export_cache_manifest,
    export_csv,
    rows_to_csv,
    write_csv,
)


class TestRowsToCsv:
    def test_basic(self):
        text = rows_to_csv([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "0.5"]

    def test_missing_keys_blank(self):
        text = rows_to_csv([{"a": 1, "b": 2}, {"a": 3}])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[2] == ["3", ""]

    def test_tuple_values_joined(self):
        text = rows_to_csv([{"r": (4, 8)}])
        assert "4/8" in text

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_explicit_columns(self):
        text = rows_to_csv([{"a": 1, "b": 2}], columns=["b"])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["b"], ["2"]]


class TestExperimentExport:
    def test_table2_roundtrip(self):
        text = export_csv(run_table2())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "duration_ms"
        assert len(rows) == 6  # header + baseline + 4 durations

    def test_fig6_wide_format(self):
        text = export_csv(run_fig6())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["time_ns", "bitline_v_full",
                           "bitline_v_partial"]
        assert len(rows) > 20

    def test_scalar_experiment(self):
        result = {"id": "sec6.3", "storage_bytes": 5376,
                  "area_mm2": 0.022, "paper": {"x": 1}}
        text = export_csv(result)
        rows = list(csv.reader(io.StringIO(text)))
        assert "storage_bytes" in rows[0]
        assert "paper" not in rows[0]  # nested dicts dropped

    def test_write_csv(self, tmp_path):
        path = tmp_path / "t2.csv"
        assert write_csv(run_table2(), str(path)) == str(path)
        assert path.read_text().startswith("duration_ms")

    def test_cache_annotation_not_leaked_into_rows_csv(self):
        result = {"id": "fig9",
                  "rows": [{"mode": "single", "hit_rate": 0.4}],
                  "cache": {"points": 1, "disk": 1, "memory": 0,
                            "computed": 0, "jobs": 1,
                            "points_detail": []}}
        text = export_csv(result)
        assert "cache" not in text  # provenance lives in the manifest


class TestCacheManifest:
    RESULTS = {
        "fig9": {"id": "fig9", "rows": [],
                 "cache": {"points": 2, "disk": 1, "memory": 0,
                           "computed": 1, "jobs": 2,
                           "points_detail": [
                               {"label": "single:mcf:chargecache",
                                "source": "disk", "key": "aa" * 32,
                                "engine": "event", "batch_group": ""},
                               {"label": "single:mcf:none",
                                "source": "computed", "key": "bb" * 32,
                                "engine": "event",
                                "batch_group": "deadbeef0123"}]}},
        "table2": {"id": "table2", "rows": []},  # not annotated
    }

    def test_manifest_rows(self):
        rows = list(csv.reader(io.StringIO(
            export_cache_manifest(self.RESULTS))))
        assert rows[0] == ["experiment", "point", "source", "cache_hit",
                           "cache_key", "engine", "batch_group"]
        assert rows[1] == ["fig9", "single:mcf:chargecache", "disk",
                           "True", "aa" * 32, "event", ""]
        assert rows[2] == ["fig9", "single:mcf:none", "computed",
                           "False", "bb" * 32, "event", "deadbeef0123"]
        assert len(rows) == 3  # table2 contributes nothing

    def test_empty_when_nothing_annotated(self):
        assert export_cache_manifest({"table2": self.RESULTS["table2"]}) \
            == ""
