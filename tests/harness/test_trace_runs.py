"""Trace-kind RunSpecs and the calibrate experiment.

The contract under test: an ingested trace is identified by its
*content hash* (trace_sha256 in the cache key), never by its path
(excluded from the key), so the same bytes are one cached run wherever
the file lives, an edited file is a fresh key, and a second run of the
same trace is answered entirely from the persistent cache.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness import experiments, runner
from repro.harness.cache import cache_key
from repro.harness.spec import (
    RunSpec,
    Scale,
    batch_signature,
    spec_from_payload,
)
from repro.harness.runner import run_spec, run_spec_ex, trace_spec
from repro.workloads.ingest import TraceFormatError, trace_file_sha256

from tests.helpers import write_trace

TINY = Scale(single_core_instructions=2000, multi_core_instructions=900,
             warmup_cpu_cycles=500, max_mem_cycles=300_000)


@pytest.fixture
def trace_path(tmp_path):
    # Long enough that the cold pass over distinct lines outlasts the
    # TINY instruction budget — a short looped trace becomes
    # LLC-resident and generates no DRAM traffic after its first pass.
    return write_trace(tmp_path / "stream.trace", n=600, gap=6)


@pytest.fixture(autouse=True)
def _restore_harness_state():
    """Fresh memo and no ambient disk cache: these tests assert on
    *where* results come from (computed/disk) and on execution-time
    errors, both of which a warm cache would mask."""
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(None, enabled=False)
    yield
    runner.clear_memo()
    experiments.set_calibration_traces(None)
    runner.configure_disk_cache(prev[1], enabled=prev[0])


class TestTraceSpec:
    def test_spec_shape(self, trace_path):
        spec = trace_spec(trace_path, "chargecache", TINY)
        assert spec.kind == "trace"
        assert spec.name == "stream"
        assert spec.trace_sha256 == trace_file_sha256(trace_path)
        assert spec.trace_path == os.path.abspath(trace_path)
        assert spec.trace_sha256[:8] in spec.label()

    def test_key_excludes_path_includes_hash(self, trace_path, tmp_path):
        spec = trace_spec(trace_path, "none", TINY)
        payload = spec.key_payload()
        assert "trace_path" not in payload
        assert payload["trace_sha256"] == spec.trace_sha256
        # Same bytes elsewhere -> identical key; different bytes ->
        # different key.
        copy = tmp_path / "copy" / "other-name.trace"
        copy.parent.mkdir()
        copy.write_bytes(open(trace_path, "rb").read())
        moved = trace_spec(str(copy), "none", TINY, name="stream")
        assert cache_key(moved) == cache_key(spec)
        edited = write_trace(tmp_path / "edited.trace", n=65, gap=6)
        assert cache_key(trace_spec(edited, "none", TINY,
                                    name="stream")) != cache_key(spec)

    def test_payload_roundtrip(self, trace_path):
        spec = trace_spec(trace_path, "chargecache", TINY)
        rebuilt = spec_from_payload(spec.key_payload())
        assert rebuilt.trace_path is None       # location is not identity
        assert rebuilt.trace_sha256 == spec.trace_sha256
        assert cache_key(rebuilt) == cache_key(spec)

    def test_trace_fields_are_validated(self, trace_path):
        with pytest.raises(ValueError, match="SHA-256"):
            RunSpec(kind="trace", name="x", scale=TINY)
        with pytest.raises(ValueError, match="SHA-256"):
            RunSpec(kind="trace", name="x", scale=TINY,
                    trace_sha256="abc")
        with pytest.raises(ValueError, match="only meaningful"):
            RunSpec(kind="single", name="x", scale=TINY,
                    trace_sha256="0" * 64)

    def test_batch_signature_groups_by_trace(self, trace_path, tmp_path):
        base = trace_spec(trace_path, "none", TINY)
        cc = trace_spec(trace_path, "chargecache", TINY)
        assert batch_signature(base) == batch_signature(cc)
        other = write_trace(tmp_path / "other.trace", n=12)
        assert batch_signature(trace_spec(other, "none", TINY)) != \
            batch_signature(base)


class TestTraceExecution:
    def test_runs_and_loops(self, trace_path):
        result = run_spec(trace_spec(trace_path, "none", TINY))
        assert result.work_instructions >= TINY.single_core_instructions
        assert result.activations > 0

    def test_second_run_hits_disk_cache(self, trace_path, tmp_path):
        runner.configure_disk_cache(str(tmp_path / "cache"))
        runner.clear_memo()
        spec = trace_spec(trace_path, "none", TINY)
        first, src1 = run_spec_ex(spec)
        assert src1 == "computed"
        runner.clear_memo()            # force the disk layer
        second, src2 = run_spec_ex(trace_spec(trace_path, "none", TINY))
        assert src2 == "disk"
        assert second.total_ipc == pytest.approx(first.total_ipc)

    def test_edited_file_fails_the_old_spec(self, trace_path):
        spec = trace_spec(trace_path, "none", TINY)
        with open(trace_path, "a") as fh:
            fh.write("100000 0x7f00 W\n")
        with pytest.raises(TraceFormatError,
                           match="content hash mismatch"):
            run_spec(spec)

    def test_pathless_spec_cannot_simulate(self, trace_path):
        rebuilt = spec_from_payload(
            trace_spec(trace_path, "none", TINY).key_payload())
        with pytest.raises(ValueError, match="no trace_path"):
            run_spec(rebuilt)

    def test_engine_parity(self, trace_path):
        event = run_spec(trace_spec(trace_path, "none", TINY,
                                    engine="event"))
        dense = run_spec(trace_spec(trace_path, "none", TINY,
                                    engine="dense"))
        assert event.total_ipc == pytest.approx(dense.total_ipc)
        assert event.activations == dense.activations
        assert event.row_hit_rate == pytest.approx(dense.row_hit_rate)

    def test_chargecache_runs_on_traces(self, tmp_path):
        # A ping-pong pattern (conflict every access, short reuse gap)
        # must produce ChargeCache hits through the trace path.
        fixtures = os.path.join(os.path.dirname(__file__), os.pardir,
                                "fixtures", "traces")
        path = os.path.join(fixtures, "pingpong.trace")
        result = run_spec(trace_spec(path, "chargecache", TINY))
        assert result.mechanism_hit_rate > 0.5


class TestTimeScaleSync:
    def test_fingerprint_mirrors_harness_default(self):
        # fingerprint.py keeps a local copy to avoid a workloads ->
        # harness layering inversion; they must never drift.
        from repro.harness.spec import DEFAULT_TIME_SCALE as harness_ts
        from repro.workloads.ingest.fingerprint import (
            DEFAULT_TIME_SCALE as ingest_ts,
        )
        assert ingest_ts == harness_ts


class TestCalibrate:
    def test_end_to_end(self, trace_path):
        experiments.set_calibration_traces([trace_path])
        result = experiments.run_calibrate(
            workloads=["libquantum", "hmmer"], scale=TINY)
        assert result["id"] == "calibrate"
        rows = {(r["workload"], r["kind"]): r for r in result["rows"]}
        assert set(rows) == {("libquantum", "synthetic"),
                             ("hmmer", "synthetic"),
                             ("stream", "trace")}
        for r in result["rows"]:
            assert set(r) == set(experiments._CALIBRATE_COLUMNS)
        assert rows[("libquantum", "synthetic")]["status"] == "ok"
        trace_row = rows[("stream", "trace")]
        assert trace_row["status"] == "ingested"
        assert isinstance(trace_row["sim_row_hit"], float)
        assert result["traces"] == [trace_path]
        assert result["drift"] == []
        # 1 trace x (baseline + chargecache)
        assert result["cache"]["points"] == 2

    def test_workload_without_reference_reports_no_ref(self,
                                                       monkeypatch):
        from repro.workloads.ingest import reference
        experiments.set_calibration_traces([])
        monkeypatch.delitem(reference.REFERENCE_FINGERPRINTS, "hmmer")
        rows = experiments.run_calibrate(workloads=["hmmer"],
                                         scale=TINY)["rows"]
        assert rows[0]["status"] == "no-ref"
        assert rows[0]["ref_rltl_1ms"] == ""
        assert rows[0]["rltl_1ms"] > 0.9    # still measured

    def test_declaration_covers_the_experiment(self, trace_path):
        experiments.set_calibration_traces([trace_path])
        runner.clear_memo()
        experiments.prefetch_experiments(["calibrate"], ["hmmer"], TINY)
        result = experiments.run_calibrate(workloads=["hmmer"],
                                           scale=TINY)
        assert result["cache"]["computed"] == 0

    def test_fingerprints_ignore_scale(self, trace_path):
        # Synthetic fingerprints are pinned to the reference
        # provenance point, so deltas mean the same at every --scale.
        experiments.set_calibration_traces([])
        small = experiments.run_calibrate(workloads=["mcf"], scale=TINY)
        other = experiments.run_calibrate(
            workloads=["mcf"], scale=TINY.scaled(2.0))
        assert small["rows"][0] == other["rows"][0]

    def test_renders_and_exports(self, trace_path, tmp_path):
        from repro.harness.export import export_csv
        from repro.harness.report import render_experiment
        experiments.set_calibration_traces([trace_path])
        result = experiments.run_calibrate(workloads=["hmmer"],
                                           scale=TINY)
        text = render_experiment(result)
        assert "calibrate: fingerprints @" in text
        assert "avg 1ms-RLTL" in text
        csv_text = export_csv(result)
        header = csv_text.splitlines()[0].split(",")
        assert header == list(experiments._CALIBRATE_COLUMNS)
        assert json.dumps(result, default=str)  # JSON-serializable


class TestCLI:
    def test_scale_presets(self):
        from repro.harness.cli import _scale_arg
        assert _scale_arg("tiny") == 0.05
        assert _scale_arg("full") == 1.0
        assert _scale_arg("0.3") == pytest.approx(0.3)
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _scale_arg("huge")
        with pytest.raises(argparse.ArgumentTypeError):
            _scale_arg("-1")

    def test_calibrate_cli(self, trace_path, tmp_path, capsys):
        from repro.harness import cli
        json_path = tmp_path / "cal.json"
        code = cli.main(["calibrate", "--workloads", "hmmer",
                         "--scale", "tiny",
                         "--traces", trace_path,
                         "--cache-dir", str(tmp_path / "cache"),
                         "--json", str(json_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibrate: fingerprints @" in out
        data = json.loads(json_path.read_text())
        kinds = {r["kind"] for r in data["calibrate"]["rows"]}
        assert kinds == {"synthetic", "trace"}

    def test_traces_flag_requires_existing_file(self, tmp_path, capsys):
        from repro.harness import cli
        with pytest.raises(SystemExit):
            cli.main(["calibrate", "--traces",
                      str(tmp_path / "missing.trace")])
        assert "no such file" in capsys.readouterr().err
