"""Tests for run-cache garbage collection (stale-fingerprint pruning)
and its ``chargecache-harness cache gc`` CLI surface."""

import json
import os

import pytest

from repro.harness import cli
from repro.harness.cache import (
    RunCache,
    SCHEMA_VERSION,
    cache_key,
    code_fingerprint,
    result_to_json,
)
from repro.harness.runner import Scale, run_spec_ex, workload_spec

TINY = Scale(single_core_instructions=2000, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)


@pytest.fixture
def seeded(tmp_path):
    """A cache dir holding one current entry and one stale entry.

    The stale entry is a realistic envelope written under a different
    code fingerprint — exactly what a source edit leaves behind.
    """
    from repro.harness import runner
    root = tmp_path / "cache"
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.configure_disk_cache(str(root))
    runner.clear_memo()
    spec = workload_spec("libquantum", "none", TINY)
    result, source = run_spec_ex(spec)
    assert source == "computed"
    cache = RunCache(str(root))
    assert len(cache) == 1
    current_key = cache_key(spec)

    stale_key = "f" * 64
    envelope = {
        "schema": SCHEMA_VERSION,
        "key": stale_key,
        "fingerprint": "deadbeef" * 8,   # not the current sources
        "spec": spec.key_payload(),
        "result": result_to_json(result),
    }
    with open(cache.path_for(stale_key), "w", encoding="ascii") as fh:
        json.dump(envelope, fh)

    yield cache, current_key, stale_key
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


class TestGC:
    def test_dry_run_lists_but_keeps(self, seeded):
        cache, current_key, stale_key = seeded
        report = cache.gc(dry_run=True)
        assert [key for key, _ in report.stale] == [stale_key]
        assert report.stale[0][1] == "code fingerprint mismatch"
        assert report.removed == 0
        assert report.kept == 1
        assert cache.contains(stale_key)  # nothing deleted

    def test_gc_prunes_only_stale(self, seeded):
        cache, current_key, stale_key = seeded
        report = cache.gc()
        assert report.removed == 1
        assert not cache.contains(stale_key)
        assert cache.contains(current_key)
        # Idempotent: a second pass finds nothing.
        again = cache.gc()
        assert again.stale == [] and again.kept == 1

    def test_gc_treats_corrupt_as_stale(self, seeded):
        cache, current_key, stale_key = seeded
        bad_key = "0" * 64
        with open(cache.path_for(bad_key), "w", encoding="ascii") as fh:
            fh.write("{not json")
        report = cache.gc()
        assert ("0" * 64, "unreadable") in report.stale
        assert not cache.contains(bad_key)
        assert cache.contains(current_key)

    def test_gc_sweeps_only_aged_stray_tmp_files(self, seeded):
        from repro.harness.cache import TMP_SWEEP_AGE_S
        cache, _, _ = seeded
        stray = os.path.join(cache.root, "writer-crashed.tmp")
        with open(stray, "w") as fh:
            fh.write("partial")
        # Fresh temps may belong to an in-flight writer in another
        # process: gc must leave them alone.
        report = cache.gc()
        assert os.path.exists(stray)
        assert not any(name == "writer-crashed.tmp"
                       for name, _ in report.stale)
        # Once aged past the threshold it's a crashed writer's orphan:
        # a dry run lists it (so the report matches what a real gc
        # would do) but only the real pass deletes it.
        old = os.path.getmtime(stray) - TMP_SWEEP_AGE_S - 60
        os.utime(stray, (old, old))
        report = cache.gc(dry_run=True)
        assert ("writer-crashed.tmp", "stray writer temp") in report.stale
        assert os.path.exists(stray)   # dry run leaves temps alone
        report = cache.gc()
        assert not os.path.exists(stray)
        assert report.removed == 1

    def test_tmp_sweep_immune_to_host_clock_skew(self, seeded,
                                                 monkeypatch):
        """Regression: the orphan sweep must age ``.tmp`` files against
        the directory's own clock, not ``time.time()``.

        With an NFS-mounted cache dir the server stamps mtimes from
        *its* clock; a skewed host used to compute ``cutoff =
        time.time() - AGE`` and could sweep a freshly-written in-flight
        temp (host fast) or keep a crashed orphan forever (host slow).
        Simulate hours of skew in both directions and check neither
        failure happens.
        """
        import time as time_mod

        from repro.harness.cache import TMP_SWEEP_AGE_S
        cache, _, _ = seeded
        fresh = os.path.join(cache.root, "inflight-writer.tmp")
        with open(fresh, "w") as fh:
            fh.write("partial")

        real_time = time_mod.time
        for skew in (2 * TMP_SWEEP_AGE_S, -2 * TMP_SWEEP_AGE_S):
            monkeypatch.setattr(time_mod, "time",
                                lambda s=skew: real_time() + s)
            report = cache.gc(dry_run=True)
            assert not any(name == "inflight-writer.tmp"
                           for name, _ in report.stale), \
                f"fresh temp swept under {skew:+.0f}s host skew"
        monkeypatch.setattr(time_mod, "time", real_time)

        # A genuinely old orphan (by the directory's clock) is still
        # collected even when the host clock runs slow.
        old = os.path.getmtime(fresh) - TMP_SWEEP_AGE_S - 60
        os.utime(fresh, (old, old))
        monkeypatch.setattr(time_mod, "time",
                            lambda: real_time() - 2 * TMP_SWEEP_AGE_S)
        report = cache.gc()
        assert not os.path.exists(fresh)

    def test_explicit_fingerprint(self, seeded):
        cache, current_key, stale_key = seeded
        # Under the stale entry's own fingerprint, roles swap.
        report = cache.gc(fingerprint="deadbeef" * 8, dry_run=True)
        assert [key for key, _ in report.stale] == [current_key]
        assert code_fingerprint() != "deadbeef" * 8


class TestCLI:
    def test_cache_gc_dry_run_then_prune(self, seeded, capsys):
        cache, current_key, stale_key = seeded
        assert cli.main(["cache", "gc", "--dry-run",
                         "--cache-dir", cache.root]) == 0
        out = capsys.readouterr().out
        assert stale_key in out and "would remove 1" in out
        assert cache.contains(stale_key)

        assert cli.main(["cache", "gc", "--cache-dir", cache.root]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert not cache.contains(stale_key)
        assert cache.contains(current_key)

    def test_cache_without_action_shows_help(self, capsys):
        assert cli.main(["cache"]) == 2
