"""Tests for the persistent content-addressed run cache."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.harness import cache
from repro.harness import runner
from repro.harness.cache import (
    RunCache,
    cache_key,
    code_fingerprint,
    result_from_json,
    result_to_json,
)
from repro.harness.spec import RunSpec, Scale

TINY = Scale(single_core_instructions=2000, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

SPEC = RunSpec(kind="single", name="hmmer", mechanism="chargecache",
               scale=TINY, enable_rltl=True, seed=3, engine="event")


@pytest.fixture
def bound_cache(tmp_path):
    """Re-bind the runner's disk layer to a fresh dir; restore after."""
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "cache"))
    yield runner.active_disk_cache()
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


class TestCacheKey:
    def test_stable_within_process(self):
        assert cache_key(SPEC) == cache_key(SPEC)
        # Equal specs built independently hash identically.
        twin = RunSpec(kind="single", name="hmmer",
                       mechanism="chargecache", scale=TINY,
                       enable_rltl=True, seed=3, engine="event")
        assert cache_key(twin) == cache_key(SPEC)

    def test_stable_across_processes(self):
        """Same spec -> same key in a fresh interpreter (no PYTHONHASHSEED
        or dict-order dependence)."""
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        script = (
            "from repro.harness.cache import cache_key\n"
            "from repro.harness.spec import RunSpec, Scale\n"
            "spec = RunSpec(kind='single', name='hmmer', "
            "mechanism='chargecache', "
            "scale=Scale(single_core_instructions=2000, "
            "multi_core_instructions=1000, warmup_cpu_cycles=1000, "
            "max_mem_cycles=300_000), enable_rltl=True, seed=3, "
            "engine='event')\n"
            "print(cache_key(spec))\n")
        env = dict(os.environ,
                   PYTHONPATH=src_root + os.pathsep
                   + os.environ.get("PYTHONPATH", ""),
                   PYTHONHASHSEED="12345")
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == cache_key(SPEC)

    def test_every_field_change_changes_key(self):
        base = cache_key(SPEC)
        variants = {
            "kind": "eight",
            "name": "mcf",
            "mechanism": "none",
            "scale": TINY.scaled(2.0),
            "enable_rltl": False,
            "row_policy": "closed",
            "cc_entries": 64,
            "cc_duration_ms": 4.0,
            "cc_unbounded": True,
            "idle_finished": True,
            "seed": 4,
            "engine": "dense",
        }
        # trace_sha256/trace_path have dedicated cases below: the hash
        # is key material, the path deliberately is not.
        assert set(variants) | {"scenario", "trace_sha256",
                                "trace_path"} == \
            {f.name for f in dataclasses.fields(RunSpec)}, \
            "new RunSpec field needs a key-sensitivity case here"
        keys = {base}
        for field, value in variants.items():
            changed = dataclasses.replace(SPEC, **{field: value})
            key = cache_key(changed)
            assert key != base, f"{field} change did not change the key"
            keys.add(key)
        assert len(keys) == len(variants) + 1  # all pairwise distinct

    def test_trace_field_key_semantics(self):
        """The trace content hash is key material; the path is
        location only — the same bytes must hit the same envelope
        wherever the file lives."""
        trace = dataclasses.replace(SPEC, kind="trace",
                                    trace_sha256="a" * 64,
                                    trace_path="/data/a.trace")
        other_bytes = dataclasses.replace(trace,
                                          trace_sha256="b" * 64)
        moved = dataclasses.replace(trace,
                                    trace_path="/elsewhere/b.trace")
        assert cache_key(other_bytes) != cache_key(trace)
        assert cache_key(moved) == cache_key(trace)

    def test_scenario_field_changes_key(self):
        """The scenario name is platform identity (kind and scenario
        flip together — __post_init__ couples them)."""
        on_scenario = dataclasses.replace(SPEC, kind="scenario",
                                          scenario="c1-r1")
        other_scenario = dataclasses.replace(on_scenario,
                                             scenario="c1-r2")
        keys = {cache_key(SPEC), cache_key(on_scenario),
                cache_key(other_scenario)}
        assert len(keys) == 3

    def test_scale_subfield_changes_key(self):
        changed = dataclasses.replace(
            SPEC, scale=dataclasses.replace(TINY, max_mem_cycles=400_000))
        assert cache_key(changed) != cache_key(SPEC)

    def test_fingerprint_is_part_of_key(self):
        assert cache_key(SPEC, fingerprint="deadbeef") != cache_key(SPEC)

    def test_code_fingerprint_stable_and_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


class TestResultCodec:
    def test_round_trip_fidelity(self, bound_cache):
        fresh = runner.run_spec(SPEC)
        assert fresh.rltl is not None
        restored = result_from_json(
            json.loads(json.dumps(result_to_json(fresh))))
        for name in cache._PLAIN_FIELDS:
            assert getattr(restored, name) == getattr(fresh, name), name
        assert restored.config == fresh.config
        assert restored.extra == fresh.extra
        # Derived metrics agree exactly.
        assert restored.total_ipc == fresh.total_ipc
        assert restored.rmpkc() == fresh.rmpkc()
        assert restored.mechanism_hit_rate == fresh.mechanism_hit_rate
        # The restored RLTL probe answers every tracked interval.
        for interval in fresh.rltl.intervals_ms:
            assert restored.rltl.rltl(interval) == \
                fresh.rltl.rltl(interval)
            assert restored.rltl.refresh_fraction(interval) == \
                fresh.rltl.refresh_fraction(interval)
        assert restored.rltl.mean_gap_ms == fresh.rltl.mean_gap_ms

    def test_reuse_profiler_round_trip(self):
        from repro.stats.reuse import RowReuseProfiler
        profiler = RowReuseProfiler()
        for row in (1, 2, 3, 1, 2, 1, 9, 1):
            profiler.on_activate(0, 0, 0, row)
        data = json.loads(json.dumps(cache._reuse_to_json(profiler)))
        restored = cache._reuse_from_json(data)
        assert restored.histogram == profiler.histogram
        assert restored.cold == profiler.cold
        assert restored.activations == profiler.activations
        assert restored.distinct_rows() == profiler.distinct_rows()
        assert restored.predicted_hit_rate(2) == \
            profiler.predicted_hit_rate(2)
        assert restored.median_reuse_distance() == \
            profiler.median_reuse_distance()


class TestRunCacheStore:
    def test_persists_across_instances(self, tmp_path):
        store = RunCache(str(tmp_path))
        result = runner._execute_spec(SPEC)
        key = cache_key(SPEC)
        store.put(key, SPEC, result)
        again = RunCache(str(tmp_path))
        loaded = again.get(key)
        assert loaded is not None
        assert loaded.mem_cycles == result.mem_cycles
        assert loaded.ipcs == result.ipcs
        assert key in again.keys()
        assert len(again) == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = RunCache(str(tmp_path))
        key = cache_key(SPEC)
        os.makedirs(store.root, exist_ok=True)
        with open(store.path_for(key), "w") as fh:
            fh.write("{not json at all")
        assert store.get(key) is None
        assert store.misses == 1

    def test_non_object_json_is_a_miss(self, tmp_path):
        store = RunCache(str(tmp_path))
        key = cache_key(SPEC)
        os.makedirs(store.root, exist_ok=True)
        for payload in ("null", "[]", '"text"'):
            with open(store.path_for(key), "w") as fh:
                fh.write(payload)
            assert store.get(key) is None, payload

    def test_partial_file_is_a_miss(self, tmp_path):
        store = RunCache(str(tmp_path))
        result = runner._execute_spec(SPEC)
        key = cache_key(SPEC)
        path = store.put(key, SPEC, result)
        with open(path, "r") as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text[:len(text) // 2])  # truncated mid-write
        assert store.get(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = RunCache(str(tmp_path))
        result = runner._execute_spec(SPEC)
        key = cache_key(SPEC)
        path = store.put(key, SPEC, result)
        with open(path) as fh:
            envelope = json.load(fh)
        envelope["schema"] = cache.SCHEMA_VERSION + 1
        with open(path, "w") as fh:
            json.dump(envelope, fh)
        assert store.get(key) is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert RunCache(str(tmp_path)).get(cache_key(SPEC)) is None

    def test_clear_removes_entries(self, tmp_path):
        store = RunCache(str(tmp_path))
        result = runner._execute_spec(SPEC)
        store.put(cache_key(SPEC), SPEC, result)
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0
        assert store.get(cache_key(SPEC)) is None


class TestPutDurability:
    """Regression: ``put`` must fsync the temp file *before* the
    rename (and best-effort the directory after), or a crash can
    persist a rename pointing at unwritten data blocks — a silently
    truncated envelope."""

    def test_data_synced_before_rename(self, tmp_path, monkeypatch):
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (events.append("fsync"),
                                        real_fsync(fd))[1])
        monkeypatch.setattr(os, "replace",
                            lambda src, dst:
                            (events.append("replace"),
                             real_replace(src, dst))[1])
        store = RunCache(str(tmp_path))
        result = runner._execute_spec(SPEC)
        store.put(cache_key(SPEC), SPEC, result)
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace"), \
            "temp file must be durable before it becomes visible"

    def test_directory_fsync_failure_is_tolerated(self, tmp_path,
                                                  monkeypatch):
        """A filesystem refusing directory fsync (or O_DIRECTORY)
        must not fail the write — the envelope itself is synced."""
        real_open = os.open

        def deny_dir_open(path, flags, *args, **kwargs):
            if isinstance(path, str) and os.path.isdir(path):
                raise PermissionError("no directory handles here")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", deny_dir_open)
        store = RunCache(str(tmp_path))
        result = runner._execute_spec(SPEC)
        key = cache_key(SPEC)
        store.put(key, SPEC, result)   # must not raise
        assert store.get(key) is not None


class TestReadThrough:
    def test_disk_hit_after_memo_clear(self, bound_cache):
        fresh, source = runner.run_spec_ex(SPEC)
        assert source == "computed"
        runner.clear_memo()
        recalled, source = runner.run_spec_ex(SPEC)
        assert source == "disk"
        assert recalled is not fresh
        assert recalled.ipcs == fresh.ipcs
        # Third call is served by the re-populated memo.
        again, source = runner.run_spec_ex(SPEC)
        assert source == "memory"
        assert again is recalled

    def test_no_cache_bypass(self, tmp_path):
        prev = (runner._disk_enabled, runner._disk_dir)
        try:
            runner.clear_memo()
            runner.configure_disk_cache(str(tmp_path / "c"),
                                        enabled=False)
            assert runner.active_disk_cache() is None
            _, source = runner.run_spec_ex(SPEC)
            assert source == "computed"
            runner.clear_memo()
            _, source = runner.run_spec_ex(SPEC)
            assert source == "computed"  # nothing persisted
            assert not os.path.exists(str(tmp_path / "c"))
        finally:
            runner.clear_memo()
            runner.configure_disk_cache(prev[1], enabled=prev[0])

    def test_no_cache_env_bypass(self, bound_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert runner.active_disk_cache() is None
        _, source = runner.run_spec_ex(SPEC)
        assert source == "computed"
        runner.clear_memo()
        _, source = runner.run_spec_ex(SPEC)
        assert source == "computed"

    def test_execution_config_threads_through(self, tmp_path):
        from repro.config import ExecutionConfig
        from repro.harness.pool import resolve_jobs
        prev = (runner._disk_enabled, runner._disk_dir)
        try:
            runner.apply_execution_config(ExecutionConfig(
                jobs=7, cache_dir=str(tmp_path / "via-config")))
            disk = runner.active_disk_cache()
            assert disk is not None
            assert disk.root == str(tmp_path / "via-config")
            assert resolve_jobs(None) == 7  # jobs honoured, not ignored
            assert resolve_jobs(2) == 2     # explicit width still wins
            runner.apply_execution_config(
                ExecutionConfig(use_run_cache=False))
            assert runner.active_disk_cache() is None
            assert resolve_jobs(None) == 1
        finally:
            runner.clear_memo()
            runner.default_jobs = None
            runner.configure_disk_cache(prev[1], enabled=prev[0])

    def test_clear_caches_never_deletes_default_dir_entries(
            self, tmp_path, monkeypatch):
        """A library caller asking for a fresh in-process state must
        not destroy the shared default cache it never bound."""
        prev = (runner._disk_enabled, runner._disk_dir)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
        try:
            runner.clear_memo()
            runner.configure_disk_cache(None)  # default-dir resolution
            runner.run_spec(SPEC)
            assert len(runner.active_disk_cache()) == 1
            runner.clear_caches()
            assert len(runner.active_disk_cache()) == 1  # survived
            _, source = runner.run_spec_ex(SPEC)
            assert source == "disk"
        finally:
            runner.clear_memo()
            runner.configure_disk_cache(prev[1], enabled=prev[0])

    def test_clear_caches_clears_disk_layer(self, bound_cache):
        runner.run_spec(SPEC)
        disk = runner.active_disk_cache()
        assert len(disk) == 1
        runner.clear_caches()
        disk = runner.active_disk_cache()
        assert len(disk) == 0
        _, source = runner.run_spec_ex(SPEC)
        assert source == "computed"
