"""Test-only helpers: an *independent* DRAM command legality checker,
and the shared tiny-trace factory.

The simulator enforces timing constraints in its bank/rank/channel
state machines; the checker below re-verifies an issued-command log
from scratch with its own bookkeeping, so a bug in the simulator's
enforcement cannot hide itself.

:func:`tiny_trace` / :func:`write_trace` factor the repeated "build a
small deterministic trace, write it, ingest it" dance out of the
ingestion, fingerprint and harness tests; :func:`tiny_internal` is the
same idea for the simulator's internal record type.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Iterable, List, Optional, Sequence

from repro.cpu.trace import TraceRecord
from repro.dram.commands import Command, IssuedCommand
from repro.dram.timing import TimingParameters
from repro.workloads.ingest import MemTraceRecord, write_mem_trace


def tiny_trace(n: int = 32, *, gap: int = 4, start: int = 0x1000,
               stride: int = 64,
               write_every: Optional[int] = 4) -> List[MemTraceRecord]:
    """A small deterministic external-format trace (sequential stream).

    ``n`` records, ``gap`` cycles apart, byte addresses ``start``,
    ``start + stride``, ...; every ``write_every``-th record is a
    write (``None`` = all reads).
    """
    records = []
    cycle = 0
    for i in range(n):
        cycle += gap
        is_write = (write_every is not None
                    and i % write_every == write_every - 1)
        records.append(MemTraceRecord(cycle, start + i * stride,
                                      is_write))
    return records


def write_trace(path, records: Optional[Sequence[MemTraceRecord]] = None,
                **kwargs) -> str:
    """Write ``records`` (default: ``tiny_trace(**kwargs)``) to
    ``path`` in the external ``<cycle> <address> <R|W>`` line format;
    returns ``str(path)``."""
    if records is None:
        records = tiny_trace(**kwargs)
    write_mem_trace(str(path), records)
    return str(path)


def tiny_internal(n: int = 100, *, bubbles: int = 0, start_line: int = 0,
                  stride: int = 1,
                  write_every: Optional[int] = None) -> List[TraceRecord]:
    """A small deterministic internal-format trace (sequential lines)."""
    return [TraceRecord(bubbles, start_line + i * stride,
                        write_every is not None
                        and i % write_every == write_every - 1)
            for i in range(n)]


class CommandLogViolation(AssertionError):
    pass


def check_command_log(log: Iterable[IssuedCommand],
                      timing: TimingParameters,
                      reduced_trcd: int = None,
                      reduced_tras: int = None) -> int:
    """Validate every inter-command constraint in a command log.

    Reduced-timing ACTs (``cmd.reduced``) are checked against the
    reduced tRCD/tRAS (defaults: the paper's 7/20 cycles; pass the
    scenario's own reduction when checking non-DDR3 standards).

    Rank-scope constraints (tRRD, tFAW, tRFC, REF-with-open-bank) are
    tracked **per rank**, so interleaved command streams from
    multi-rank channels are verified independently per rank; column
    commands that hop ranks on the shared data bus must additionally
    be spaced by tCCD + tRTRS (the simulator's rank-switch contract,
    which is at least as strict as JEDEC's tBL + tRTRS burst gap for
    every supported standard).

    Returns the number of commands checked; raises
    :class:`CommandLogViolation` on the first violation.
    """
    if reduced_trcd is None:
        reduced_trcd = timing.tRCD - 4
    if reduced_tras is None:
        reduced_tras = timing.tRAS - 8

    last_cmd_cycle = None
    open_row = {}            # (rank, bank) -> row
    act_cycle = {}           # (rank, bank) -> (cycle, reduced)
    pre_cycle = {}           # (rank, bank) -> cycle
    last_col = {}            # (rank, bank) -> (cycle, cmd)
    rank_acts = defaultdict(deque)   # rank -> recent ACT cycles
    rank_ref_until = defaultdict(int)
    chan_col = deque()       # (cycle, cmd, rank) channel-level column cmds

    def fail(cmd, why):
        raise CommandLogViolation(f"{why}: {cmd}")

    count = 0
    for cmd in log:
        count += 1
        key = (cmd.rank, cmd.bank)
        if last_cmd_cycle is not None:
            if cmd.cycle == last_cmd_cycle:
                fail(cmd, "two commands in one bus cycle")
            if cmd.cycle < last_cmd_cycle:
                fail(cmd, "command log not in cycle order")
        last_cmd_cycle = cmd.cycle

        if cmd.command is Command.ACT:
            if key in open_row:
                fail(cmd, "ACT to an open bank")
            if key in pre_cycle and cmd.cycle - pre_cycle[key] < timing.tRP:
                fail(cmd, "tRP violation")
            if cmd.cycle < rank_ref_until[cmd.rank]:
                fail(cmd, "tRFC violation")
            acts = rank_acts[cmd.rank]
            if acts and cmd.cycle - acts[-1] < timing.tRRD:
                fail(cmd, "tRRD violation")
            if len(acts) >= 4 and cmd.cycle - acts[-4] < timing.tFAW:
                fail(cmd, "tFAW violation")
            acts.append(cmd.cycle)
            if len(acts) > 4:
                acts.popleft()
            open_row[key] = cmd.row
            act_cycle[key] = (cmd.cycle, cmd.reduced)
        elif cmd.command is Command.PRE:
            if key not in open_row:
                fail(cmd, "PRE to a closed bank")
            issued, reduced = act_cycle[key]
            tras = reduced_tras if reduced else timing.tRAS
            if cmd.cycle - issued < tras:
                fail(cmd, "tRAS violation")
            col = last_col.get(key)
            if col is not None:
                col_cycle, col_cmd = col
                if col_cycle >= issued:
                    if col_cmd is Command.RD and \
                            cmd.cycle - col_cycle < timing.read_to_pre:
                        fail(cmd, "tRTP violation")
                    if col_cmd is Command.WR and \
                            cmd.cycle - col_cycle < timing.write_to_pre:
                        fail(cmd, "write recovery violation")
            del open_row[key]
            pre_cycle[key] = cmd.cycle
        elif cmd.command in (Command.RD, Command.WR):
            if key not in open_row:
                fail(cmd, "column command to a closed bank")
            issued, reduced = act_cycle[key]
            trcd = reduced_trcd if reduced else timing.tRCD
            if cmd.cycle - issued < trcd:
                fail(cmd, "tRCD violation")
            if chan_col:
                prev_cycle, prev_cmd, prev_rank = chan_col[-1]
                if cmd.cycle - prev_cycle < timing.tCCD:
                    fail(cmd, "tCCD violation")
                if prev_cmd is Command.RD and cmd.command is Command.WR \
                        and cmd.cycle - prev_cycle < timing.read_to_write:
                    fail(cmd, "read->write turnaround violation")
                if prev_cmd is Command.WR and cmd.command is Command.RD \
                        and cmd.cycle - prev_cycle < timing.write_to_read:
                    fail(cmd, "write->read turnaround violation")
                if prev_rank != cmd.rank and cmd.cycle - prev_cycle \
                        < timing.tCCD + timing.tRTRS:
                    fail(cmd, "tRTRS violation (rank-switch gap)")
            chan_col.append((cmd.cycle, cmd.command, cmd.rank))
            if len(chan_col) > 8:
                chan_col.popleft()
            last_col[key] = (cmd.cycle, cmd.command)
        elif cmd.command is Command.REF:
            for (rank, _bank) in open_row:
                if rank == cmd.rank:
                    fail(cmd, "REF with an open bank")
            rank_ref_until[cmd.rank] = cmd.cycle + timing.tRFC
        else:
            fail(cmd, f"unexpected command {cmd.command}")
    return count


def drain_system(system, max_mem_cycles: int = 400_000):
    """Run a system and return its result (helper for integration)."""
    return system.run(max_mem_cycles=max_mem_cycles)


def collect_command_logs(system) -> List[IssuedCommand]:
    logs = []
    for controller in system.controllers:
        logs.append(controller.channel.command_log)
    return logs
