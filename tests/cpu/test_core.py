"""Unit tests for the trace-driven core model."""

import pytest

from repro.cpu.core import (
    BLOCK_DEP,
    BLOCK_MSHR,
    BLOCK_NONE,
    BLOCK_REJECT,
    BLOCK_WINDOW,
    Core,
)
from repro.cpu.trace import TraceRecord, looped, trace_from_tuples


class Memory:
    """Scriptable memory-system stub."""

    def __init__(self, accept=True):
        self.accept = accept
        self.issued = []

    def __call__(self, core_id, line, is_write, token):
        if not self.accept:
            return False
        self.issued.append((line, is_write, token))
        return True


def make_core(records, memory=None, **kwargs):
    memory = memory or Memory()
    core = Core(0, looped(records), memory.issue
                if hasattr(memory, "issue") else memory, **kwargs)
    return core, memory


class TestBubbleDispatch:
    def test_issue_width_limits_rate(self):
        records = trace_from_tuples([(300, 0x1, False)])
        core, _ = make_core(records, instruction_limit=300)
        core.run_until(50)
        # 3-wide: 50 cycles -> at most 150 instructions.
        assert core.dispatched == 150

    def test_ipc_of_pure_compute_is_issue_width(self):
        records = trace_from_tuples([(3000, 0x1, False)])
        core, _ = make_core(records, instruction_limit=900)
        core.run_until(301)
        assert core.finished
        assert core.ipc() == pytest.approx(3.0, rel=0.05)


class TestLoads:
    def test_load_issued_to_memory(self):
        records = trace_from_tuples([(1, 0x10, False),
                                     (100_000, 0x11, False)])
        core, mem = make_core(records)
        core.run_until(5)
        assert mem.issued and mem.issued[0][0] == 0x10
        assert core.mshr_used == 1

    def test_mshr_limit_blocks(self):
        records = trace_from_tuples([(0, i, False) for i in range(10)])
        core, mem = make_core(records, mshrs=8)
        core.run_until(20)
        assert core.mshr_used == 8
        assert core.block_reason == BLOCK_MSHR

    def test_completion_frees_mshr_and_unblocks(self):
        records = trace_from_tuples([(0, i, False) for i in range(10)])
        core, mem = make_core(records, mshrs=8)
        core.run_until(20)
        token = mem.issued[0][2]
        core.on_load_complete(token)
        assert core.mshr_used == 7
        assert core.block_reason == BLOCK_NONE

    def test_unknown_token_rejected(self):
        records = trace_from_tuples([(0, 1, False)])
        core, _ = make_core(records)
        core.run_until(5)
        with pytest.raises(KeyError):
            core.on_load_complete(999)


class TestWindow:
    def test_window_fills_behind_incomplete_load(self):
        records = trace_from_tuples([(0, 0x10, False), (1000, 0x11, False)])
        core, mem = make_core(records, window_size=16)
        core.run_until(100)
        # Load never completes: at most window_size instructions in
        # flight behind it.
        assert core.window_occupancy == 16
        assert core.block_reason == BLOCK_WINDOW

    def test_retirement_barrier(self):
        records = trace_from_tuples([(0, 0x10, False), (1000, 0x11, False)])
        core, mem = make_core(records, window_size=16)
        core.run_until(100)
        assert core.retired == 0  # everything waits on the load
        core.on_load_complete(mem.issued[0][2])
        assert core.retired == core.dispatched


class TestDependentLoads:
    def test_dependent_load_serialises(self):
        records = trace_from_tuples([
            (0, 0x10, False, True),
            (0, 0x11, False, True),
        ])
        core, mem = make_core(records)
        core.run_until(50)
        assert len(mem.issued) == 1  # second waits for first
        assert core.block_reason == BLOCK_DEP
        core.on_load_complete(mem.issued[0][2])
        core.run_until(51)
        assert len(mem.issued) == 2


class TestStores:
    def test_store_does_not_use_mshr(self):
        records = trace_from_tuples([(0, i, True) for i in range(20)])
        core, mem = make_core(records, instruction_limit=10)
        core.run_until(30)
        assert core.mshr_used == 0
        assert core.stores_issued >= 10

    def test_store_retires_immediately(self):
        records = trace_from_tuples([(0, 1, True), (5, 2, False)])
        core, _ = make_core(records)
        core.run_until(3)
        assert core.retired >= 1


class TestRejection:
    def test_rejected_access_blocks_then_retries(self):
        records = trace_from_tuples([(0, 0x10, False)])
        mem = Memory(accept=False)
        core, _ = make_core(records, memory=mem)
        core.run_until(10)
        assert core.block_reason == BLOCK_REJECT
        mem.accept = True
        core.retry_rejected()
        core.run_until(12)
        assert mem.issued


class TestAccounting:
    def test_finish_freezes_ipc(self):
        records = trace_from_tuples([(299, 0x1, False)])
        core, mem = make_core(records, instruction_limit=300)
        core.run_until(100)
        token = mem.issued[0][2]
        core.on_load_complete(token)
        core.run_until(200)
        assert core.finished
        ipc_at_finish = core.ipc()
        core.run_until(500)
        assert core.ipc() == ipc_at_finish

    def test_reset_stats_restarts_accounting(self):
        records = trace_from_tuples([(3000, 0x1, False)])
        core, _ = make_core(records, instruction_limit=600)
        core.run_until(100)
        core.reset_stats(100)
        assert core.retired_since_reset == 0
        core.run_until(301)
        assert core.finished
        assert core.ipc() == pytest.approx(3.0, rel=0.05)

    def test_exhausted_trace_raises(self):
        core = Core(0, iter([TraceRecord(1, 1, False)]), Memory())
        with pytest.raises(RuntimeError, match="exhausted"):
            core.run_until(100)
