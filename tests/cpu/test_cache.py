"""Unit tests for the shared LLC."""

import pytest

from repro.config import CacheConfig
from repro.controller.address_mapping import AddressMapper
from repro.cpu.cache import SharedCache
from repro.dram.organization import Organization


class FakeController:
    """Accept/record controller stub with scriptable capacity."""

    def __init__(self, accept=True):
        self.accept = accept
        self.reads = []
        self.writes = []

    def enqueue_read(self, request, cycle):
        if not self.accept:
            return False
        self.reads.append(request)
        return True

    def enqueue_write(self, request, cycle):
        if not self.accept:
            return False
        self.writes.append(request)
        return True


class Harness:
    def __init__(self, accept=True, size_bytes=4096, assoc=2):
        self.org = Organization(channels=1, ranks=1, banks=4, rows=64,
                                columns=8)
        self.mapper = AddressMapper(self.org)
        self.controller = FakeController(accept)
        self.hits = []
        self.completions = []
        self.cache = SharedCache(
            CacheConfig(size_bytes=size_bytes, associativity=assoc,
                        line_bytes=64),
            self.mapper, [self.controller],
            hit_notify=lambda c, t, d: self.hits.append((c, t, d)),
            current_mem_cycle=lambda: 0)

    def load(self, line, core=0, token=0):
        return self.cache.access_load(
            core, line, token,
            notify=lambda c, t: self.completions.append((c, t)))

    def fill(self, index=-1):
        self.controller.reads[index].callback(self.controller.reads[index])


class TestLoads:
    def test_cold_miss_goes_to_memory(self):
        h = Harness()
        assert h.load(5)
        assert len(h.controller.reads) == 1
        assert h.cache.load_misses == 1

    def test_fill_completes_waiter_and_installs(self):
        h = Harness()
        h.load(5, token=11)
        h.fill()
        assert h.completions == [(0, 11)]
        assert h.cache.contains(5)

    def test_hit_after_fill(self):
        h = Harness()
        h.load(5)
        h.fill()
        h.load(5, token=22)
        assert h.cache.load_hits == 1
        assert h.hits[-1][1] == 22  # notified via hit path

    def test_mshr_merge(self):
        h = Harness()
        h.load(5, core=0, token=1)
        h.load(5, core=1, token=2)
        assert len(h.controller.reads) == 1  # merged
        assert h.cache.mshr_merges == 1
        h.fill()
        assert sorted(h.completions) == [(0, 1), (1, 2)]


class TestStores:
    def test_store_hit_dirties_line(self):
        h = Harness()
        h.load(5)
        h.fill()
        assert h.cache.access_store(0, 5)
        assert h.cache.store_hits == 1

    def test_store_miss_writes_through(self):
        h = Harness()
        assert h.cache.access_store(0, 5)
        assert len(h.controller.writes) == 1
        assert h.cache.store_misses == 1
        assert not h.cache.contains(5)  # no-allocate


class TestEvictions:
    def test_lru_eviction(self):
        h = Harness(size_bytes=2 * 64 * 4, assoc=2)  # 4 sets, 2 ways
        sets = h.cache.num_sets
        lines = [0, sets, 2 * sets]  # all map to set 0
        for line in lines:
            h.load(line)
            h.fill()
        assert not h.cache.contains(lines[0])
        assert h.cache.contains(lines[1])
        assert h.cache.contains(lines[2])

    def test_dirty_eviction_writes_back(self):
        h = Harness(size_bytes=2 * 64 * 4, assoc=2)
        sets = h.cache.num_sets
        h.load(0)
        h.fill()
        h.cache.access_store(0, 0)       # dirty line 0
        h.load(sets)
        h.fill()
        h.load(2 * sets)                 # evicts line 0 (dirty)
        h.fill()
        assert h.cache.writebacks == 1
        wb = h.controller.writes[-1]
        assert wb.line_address == 0

    def test_clean_eviction_is_silent(self):
        h = Harness(size_bytes=2 * 64 * 4, assoc=2)
        sets = h.cache.num_sets
        for line in (0, sets, 2 * sets):
            h.load(line)
            h.fill()
        assert h.cache.writebacks == 0


class TestRetry:
    def test_read_parks_when_controller_full(self):
        h = Harness(accept=False)
        h.load(5)
        assert h.cache.outstanding_misses == 1
        assert not h.controller.reads
        h.controller.accept = True
        h.cache.tick()
        assert len(h.controller.reads) == 1

    def test_store_backpressure(self):
        h = Harness(accept=False)
        for i in range(SharedCache.MAX_PARKED_WRITES):
            assert h.cache.access_store(0, i)
        assert not h.cache.access_store(0, 999)  # back-pressure

    def test_parked_writes_drain(self):
        h = Harness(accept=False)
        h.cache.access_store(0, 1)
        h.controller.accept = True
        h.cache.tick()
        assert len(h.controller.writes) == 1


class TestStats:
    def test_hit_rate(self):
        h = Harness()
        h.load(5)
        h.fill()
        h.load(5)
        assert h.cache.hit_rate() == pytest.approx(0.5)

    def test_reset(self):
        h = Harness()
        h.load(5)
        h.cache.reset_stats()
        assert h.cache.load_misses == 0
