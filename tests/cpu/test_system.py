"""End-to-end tests for the System runner on tiny configurations."""

import pytest

from repro.cpu.system import System
from repro.dram.organization import Organization
from repro.workloads.synthetic import random_trace, stream_trace

from tests.conftest import tiny_config


def small_system(mechanism="none", num_cores=1, pattern="stream",
                 **cfg_kwargs):
    cfg = tiny_config(mechanism=mechanism, num_cores=num_cores,
                      **cfg_kwargs)
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    traces = []
    for core in range(num_cores):
        if pattern == "stream":
            traces.append(stream_trace(org, 1 << 20, 10.0, seed=core + 1,
                                       num_streams=2))
        else:
            traces.append(random_trace(org, 1 << 21, 10.0, seed=core + 1))
    return System(cfg, traces)


class TestBasicRuns:
    def test_single_core_completes(self):
        result = small_system().run(max_mem_cycles=400_000)
        assert not result.truncated
        assert result.instructions[0] == 3000
        assert 0 < result.total_ipc <= 3.0

    def test_generates_dram_traffic(self):
        result = small_system(pattern="random").run(max_mem_cycles=400_000)
        assert result.activations > 0
        assert result.reads > 0

    def test_refreshes_happen_on_long_runs(self):
        result = small_system(instruction_limit=40_000).run(
            max_mem_cycles=800_000)
        if result.mem_cycles > 6300:
            assert result.refreshes > 0

    def test_multi_core_run(self):
        result = small_system(num_cores=2, pattern="random",
                              row_policy="closed").run(
            max_mem_cycles=800_000)
        assert len(result.ipcs) == 2
        assert all(ipc > 0 for ipc in result.ipcs)

    def test_truncation_flag(self):
        result = small_system(instruction_limit=10 ** 7).run(
            max_mem_cycles=2_000)
        assert result.truncated


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = small_system(pattern="random").run(max_mem_cycles=400_000)
        b = small_system(pattern="random").run(max_mem_cycles=400_000)
        assert a.ipcs == b.ipcs
        assert a.activations == b.activations
        assert a.mem_cycles == b.mem_cycles


class TestMechanisms:
    def test_chargecache_reduces_activation_latency(self):
        base = small_system("none", pattern="random").run(
            max_mem_cycles=400_000)
        cc = small_system("chargecache", pattern="random").run(
            max_mem_cycles=400_000)
        assert cc.mechanism_lookups > 0
        # ChargeCache never hurts: IPC within noise or better.
        assert cc.total_ipc >= base.total_ipc * 0.995

    def test_lldram_is_upper_bound(self):
        cc = small_system("chargecache", pattern="random").run(
            max_mem_cycles=400_000)
        ll = small_system("lldram", pattern="random").run(
            max_mem_cycles=400_000)
        assert ll.mechanism_hit_rate == 1.0
        assert ll.total_ipc >= cc.total_ipc * 0.99

    def test_act_reduced_counts_match_mechanism_hits(self):
        cc = small_system("chargecache", pattern="stream").run(
            max_mem_cycles=400_000)
        assert cc.act_reduced == cc.mechanism_hits


class TestAccountingInvariants:
    def test_rank_active_bounded_by_runtime(self):
        result = small_system(pattern="random").run(max_mem_cycles=400_000)
        ranks = result.config.dram.channels \
            * result.config.dram.ranks_per_channel
        assert 0 <= result.rank_active_cycles <= ranks * result.mem_cycles

    def test_reads_and_writes_non_negative(self):
        result = small_system(pattern="random").run(max_mem_cycles=400_000)
        assert result.reads >= 0 and result.writes >= 0
        assert result.activations <= result.reads + result.writes + 1

    def test_trace_count_mismatch_rejected(self):
        cfg = tiny_config(num_cores=2)
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        with pytest.raises(ValueError):
            System(cfg, [stream_trace(org, 1 << 20, 10.0, seed=1)])


class TestSummary:
    def test_summary_contains_key_stats(self):
        result = small_system("chargecache", pattern="random").run(
            max_mem_cycles=400_000)
        text = result.summary()
        assert "mechanism=chargecache" in text
        assert "RMPKC" in text
        assert "accelerated" in text

    def test_summary_marks_truncation(self):
        result = small_system(instruction_limit=10 ** 7).run(
            max_mem_cycles=2_000)
        assert "(truncated)" in result.summary()


class TestRLTLProbeIntegration:
    def test_probe_counts_activations(self):
        cfg = tiny_config(mechanism="none", instruction_limit=3000)
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        system = System(cfg, [random_trace(org, 1 << 21, 10.0, seed=3)],
                        enable_rltl=True, rltl_time_scale=512.0)
        result = system.run(max_mem_cycles=400_000)
        assert result.rltl is not None
        assert result.rltl.activations == result.activations
