"""Unit tests for trace records and file I/O."""

import pytest

from repro.cpu.trace import (
    TraceRecord,
    looped,
    read_trace_file,
    trace_from_tuples,
    write_trace_file,
)


class TestRecords:
    def test_from_tuples(self):
        records = trace_from_tuples([(3, 0x10, False), (0, 0x20, True, True)])
        assert records[0] == TraceRecord(3, 0x10, False, False)
        assert records[1] == TraceRecord(0, 0x20, True, True)

    def test_bad_tuple(self):
        with pytest.raises(ValueError):
            trace_from_tuples([(1, 2)])

    def test_looped_repeats(self):
        records = trace_from_tuples([(1, 0x1, False)])
        it = looped(records)
        assert next(it) == next(it)

    def test_looped_empty_rejected(self):
        with pytest.raises(ValueError):
            looped([])


class TestFileIO:
    def test_roundtrip_native(self, tmp_path):
        path = tmp_path / "t.trace"
        records = trace_from_tuples([
            (5, 0x100, False),
            (0, 0x200, True),
            (2, 0x300, False, True),
        ])
        count = write_trace_file(str(path), records)
        assert count == 3
        assert read_trace_file(str(path)) == records

    def test_ramulator_read_only_format(self, tmp_path):
        path = tmp_path / "r.trace"
        path.write_text("7 0x400\n")
        records = read_trace_file(str(path))
        assert records == [TraceRecord(7, 0x400 >> 6, False)]

    def test_ramulator_read_write_format(self, tmp_path):
        path = tmp_path / "rw.trace"
        path.write_text("7 1024 2048\n")
        records = read_trace_file(str(path))
        assert records == [TraceRecord(7, 16, False),
                           TraceRecord(0, 32, True)]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text("# header\n\n3 R 0x40\n")
        assert len(read_trace_file(str(path))) == 1

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1 2 3 4 5\n")
        with pytest.raises(ValueError, match="bad.trace:1"):
            read_trace_file(str(path))
