"""Tests for the ChargeCache overhead model (paper Section 6.3)."""

import pytest

from repro.config import eight_core_config
from repro.energy.mcpat import (
    LLC_AREA_MM2_4MB_22NM,
    hcrac_entry_bits,
    hcrac_overhead,
    hcrac_storage_bits,
    overhead_for_config,
)


class TestPaperEquations:
    def test_entry_size_equation_2(self):
        """EntrySize = log2(R) + log2(B) + log2(Ro) + 1 = 20 bits for
        the paper's 1 rank, 8 banks, 64K rows."""
        assert hcrac_entry_bits(1, 8, 64 * 1024) == 20

    def test_storage_equation_1_paper_total(self):
        """8 cores x 2 channels x 128 entries x 21 bits = 5376 bytes."""
        bits = hcrac_storage_bits(cores=8, channels=2, entries=128,
                                  associativity=2, ranks=1, banks=8,
                                  rows=64 * 1024)
        assert bits == 43008
        assert bits // 8 == 5376

    def test_per_core_storage_672_bytes(self):
        bits = hcrac_storage_bits(cores=1, channels=2, entries=128,
                                  associativity=2, ranks=1, banks=8,
                                  rows=64 * 1024)
        assert bits // 8 == 672

    def test_lru_bits_scale_with_associativity(self):
        direct = hcrac_storage_bits(1, 1, 128, 1, 1, 8, 64 * 1024)
        two_way = hcrac_storage_bits(1, 1, 128, 2, 1, 8, 64 * 1024)
        four_way = hcrac_storage_bits(1, 1, 128, 4, 1, 8, 64 * 1024)
        assert two_way - direct == 128      # +1 LRU bit per entry
        assert four_way - two_way == 128    # +1 more


class TestAreaAndPower:
    def test_paper_area(self):
        overhead = hcrac_overhead()
        assert overhead.area_mm2 == pytest.approx(0.022, rel=0.01)

    def test_area_fraction_of_llc(self):
        overhead = hcrac_overhead()
        assert overhead.area_fraction_of_llc() == \
            pytest.approx(0.0024, rel=0.05)

    def test_average_power_near_paper(self):
        """At a representative 8-core access rate (~25M HCRAC ops/s)
        the model lands near the paper's 0.149 mW."""
        overhead = hcrac_overhead()
        power = overhead.average_power_w(25e6)
        assert power == pytest.approx(0.149e-3, rel=0.15)

    def test_leakage_dominates_at_idle(self):
        overhead = hcrac_overhead()
        assert overhead.average_power_w(0) == overhead.leakage_w

    def test_power_monotone_in_rate(self):
        overhead = hcrac_overhead()
        assert overhead.average_power_w(1e8) > overhead.average_power_w(1e6)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            hcrac_overhead().average_power_w(-1)

    def test_llc_reference_sane(self):
        assert 5.0 < LLC_AREA_MM2_4MB_22NM < 20.0


class TestConfigBridge:
    def test_overhead_for_paper_config(self):
        overhead = overhead_for_config(eight_core_config())
        assert overhead.storage_bytes == 5376

    def test_shared_table_drops_the_per_core_factor(self):
        """sharing="shared" builds one table per channel (paper
        footnote 2), so equation (1)'s C factor is 1, not 8."""
        from dataclasses import replace
        cfg = eight_core_config()
        shared = replace(cfg, chargecache=replace(cfg.chargecache,
                                                  sharing="shared"))
        assert overhead_for_config(shared).storage_bytes == 5376 // 8

    def test_bigger_table_bigger_area(self):
        small = hcrac_overhead(entries=128)
        large = hcrac_overhead(entries=1024)
        assert large.area_mm2 == pytest.approx(8 * small.area_mm2)


class TestValidation:
    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            hcrac_storage_bits(0, 1, 128, 2, 1, 8, 64 * 1024)
        with pytest.raises(ValueError):
            hcrac_storage_bits(1, 1, 128, 0, 1, 8, 64 * 1024)
        with pytest.raises(ValueError):
            hcrac_entry_bits(3, 8, 64 * 1024)  # non power of two
