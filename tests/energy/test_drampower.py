"""Unit tests for the DRAM energy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy.drampower import (
    DDR3PowerParameters,
    EnergyBreakdown,
    energy_components,
)
from repro.dram.timing import DDR3_1600

P = DDR3PowerParameters()


def components(**kwargs):
    defaults = dict(activations=0, reads=0, writes=0, refreshes=0,
                    rank_active_cycles=0, total_rank_cycles=10_000,
                    timing=DDR3_1600)
    defaults.update(kwargs)
    return energy_components(**defaults)


class TestComponents:
    def test_idle_run_is_pure_precharged_background(self):
        e = components()
        assert e.act_pre_pj == 0
        assert e.read_pj == 0
        assert e.background_precharged_pj > 0
        expected = P.idd2n_ma * P.vdd * 10_000 * 1.25 * P.chips_per_rank
        assert e.background_precharged_pj == pytest.approx(expected)

    def test_each_activation_costs_energy(self):
        one = components(activations=1)
        two = components(activations=2)
        delta = two.act_pre_pj - one.act_pre_pj
        assert delta == pytest.approx(one.act_pre_pj)
        assert delta > 0

    def test_reads_cost_more_than_writes_per_burst(self):
        # IDD4R > IDD4W in the datasheet values.
        reads = components(reads=10).read_pj
        writes = components(writes=10).write_pj
        assert reads > writes > 0

    def test_refresh_energy(self):
        e = components(refreshes=3)
        expected = (P.idd5b_ma - P.idd2n_ma) * P.vdd \
            * 3 * DDR3_1600.tRFC * 1.25 * P.chips_per_rank
        assert e.refresh_pj == pytest.approx(expected)

    def test_active_standby_costs_more_than_precharged(self):
        active = components(rank_active_cycles=10_000)
        idle = components(rank_active_cycles=0)
        assert active.total_pj > idle.total_pj

    def test_mechanism_energy_included(self):
        e = components(mechanism_pj=123.0)
        assert e.mechanism_pj == 123.0
        assert e.total_pj >= 123.0


class TestValidation:
    def test_active_exceeding_total_rejected(self):
        with pytest.raises(ValueError):
            components(rank_active_cycles=20_000)

    def test_bad_power_parameters_rejected(self):
        bad = DDR3PowerParameters(idd3n_ma=10.0, idd2n_ma=32.0)
        with pytest.raises(ValueError):
            components(power=bad)


class TestBreakdown:
    def test_total_is_sum_of_parts(self):
        e = components(activations=5, reads=7, writes=3, refreshes=1,
                       rank_active_cycles=500)
        parts = (e.act_pre_pj + e.read_pj + e.write_pj + e.refresh_pj
                 + e.background_active_pj + e.background_precharged_pj
                 + e.mechanism_pj)
        assert e.total_pj == pytest.approx(parts)

    def test_as_dict_round_trip(self):
        e = components(activations=5)
        d = e.as_dict()
        assert d["act_pre_pj"] == e.act_pre_pj
        assert d["total_pj"] == e.total_pj

    def test_total_mj(self):
        e = EnergyBreakdown(1e9, 0, 0, 0, 0, 0)
        assert e.total_mj == pytest.approx(1.0)


class TestProperties:
    @given(st.integers(0, 1000), st.integers(0, 1000),
           st.integers(0, 1000), st.integers(0, 50),
           st.integers(0, 10_000))
    @settings(max_examples=100)
    def test_energy_never_negative(self, acts, reads, writes, refs,
                                   active):
        e = components(activations=acts, reads=reads, writes=writes,
                       refreshes=refs, rank_active_cycles=active)
        for value in e.as_dict().values():
            assert value >= 0

    @given(st.integers(0, 500))
    @settings(max_examples=50)
    def test_monotone_in_activations(self, acts):
        a = components(activations=acts).total_pj
        b = components(activations=acts + 1).total_pj
        assert b > a
