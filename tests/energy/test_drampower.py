"""Unit tests for the DRAM energy model."""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy.drampower import (
    DDR3PowerParameters,
    EnergyBreakdown,
    PowerParameters,
    access_rate_for_run,
    energy_components,
    energy_for_run,
    run_seconds,
)
from repro.dram.standards import PROFILES, profile
from repro.dram.timing import DDR3_1600

P = DDR3PowerParameters()


def components(**kwargs):
    defaults = dict(activations=0, reads=0, writes=0, refreshes=0,
                    rank_active_cycles=0, total_rank_cycles=10_000,
                    timing=DDR3_1600)
    defaults.update(kwargs)
    return energy_components(**defaults)


class TestComponents:
    def test_idle_run_is_pure_precharged_background(self):
        e = components()
        assert e.act_pre_pj == 0
        assert e.read_pj == 0
        assert e.background_precharged_pj > 0
        expected = P.idd2n_ma * P.vdd * 10_000 * 1.25 * P.chips_per_rank
        assert e.background_precharged_pj == pytest.approx(expected)

    def test_each_activation_costs_energy(self):
        one = components(activations=1)
        two = components(activations=2)
        delta = two.act_pre_pj - one.act_pre_pj
        assert delta == pytest.approx(one.act_pre_pj)
        assert delta > 0

    def test_reads_cost_more_than_writes_per_burst(self):
        # IDD4R > IDD4W in the datasheet values.
        reads = components(reads=10).read_pj
        writes = components(writes=10).write_pj
        assert reads > writes > 0

    def test_refresh_energy(self):
        e = components(refreshes=3)
        expected = (P.idd5b_ma - P.idd2n_ma) * P.vdd \
            * 3 * DDR3_1600.tRFC * 1.25 * P.chips_per_rank
        assert e.refresh_pj == pytest.approx(expected)

    def test_active_standby_costs_more_than_precharged(self):
        active = components(rank_active_cycles=10_000)
        idle = components(rank_active_cycles=0)
        assert active.total_pj > idle.total_pj

    def test_mechanism_energy_included(self):
        e = components(mechanism_pj=123.0)
        assert e.mechanism_pj == 123.0
        assert e.total_pj >= 123.0


#: Hand-computed single-command energies per standard, in pJ:
#: act  = (IDD0*tRC - IDD3N*tRAS - IDD2N*tRP) * VDD * tCK * chips
#: read = (IDD4R - IDD3N) * VDD * tBL * tCK * chips
#: ref  = (IDD5B - IDD2N) * VDD * tRFC * tCK * chips
_GOLDEN_PJ = {
    "DDR3-1600": {"act": 10935.0, "read": 7140.0, "refresh": 555360.0},
    "DDR4-2400": {"act": 7440.0, "read": 3392.0, "refresh": 675360.0},
    "LPDDR3-1600": {"act": 2667.0, "read": 1968.0, "refresh": 66024.0},
    "GDDR5-4000": {"act": 3360.0, "read": 630.0, "refresh": 167700.0},
}


class TestStandardPresets:
    """Golden-value checks for every standard's power preset."""

    @pytest.mark.parametrize("standard", sorted(PROFILES))
    def test_golden_single_command_energies(self, standard):
        prof = profile(standard)
        golden = _GOLDEN_PJ[standard]
        e = energy_components(
            activations=1, reads=1, writes=0, refreshes=1,
            rank_active_cycles=0, total_rank_cycles=10_000,
            timing=prof.timing, power=prof.power)
        assert e.act_pre_pj == pytest.approx(golden["act"])
        assert e.read_pj == pytest.approx(golden["read"])
        assert e.refresh_pj == pytest.approx(golden["refresh"])

    @pytest.mark.parametrize("standard", sorted(PROFILES))
    def test_presets_validate_and_match_their_timing(self, standard):
        prof = profile(standard)
        prof.validate()
        assert prof.power.name == prof.timing.name == standard

    def test_ddr3_preset_is_the_legacy_default(self):
        """The pre-profile model hardcoded these values; the DDR3
        profile must keep producing bit-identical energies."""
        assert profile("DDR3-1600").power == DDR3PowerParameters()


def _fake_run(config, mem_cycles=100_000, activations=500, reads=2000,
              writes=700, refreshes=12, rank_active_cycles=40_000):
    """Minimal RunResult stand-in for the energy path."""
    return SimpleNamespace(
        config=config, mem_cycles=mem_cycles, activations=activations,
        reads=reads, writes=writes, refreshes=refreshes,
        rank_active_cycles=rank_active_cycles)


class TestRunResolution:
    """energy_for_run must use the run config's own standard."""

    def _scenario_run(self, name):
        from repro.harness.scenarios import scenario_config
        return _fake_run(scenario_config(name, "none"))

    def test_ddr4_run_uses_ddr4_clock_and_currents(self):
        run = self._scenario_run("ddr4-2400-c1")
        prof = profile("DDR4-2400")
        e = energy_for_run(run)
        expected = energy_components(
            activations=run.activations, reads=run.reads,
            writes=run.writes, refreshes=run.refreshes,
            rank_active_cycles=run.rank_active_cycles,
            total_rank_cycles=run.mem_cycles,
            timing=prof.timing, power=prof.power)
        assert e.as_dict() == pytest.approx(expected.as_dict())
        # The same counts billed at DDR3's clock/IDD set differ: the
        # pre-change hardcoded-DDR3 path was wrong for this run.
        wrong = energy_for_run(run, timing=DDR3_1600,
                               power=DDR3PowerParameters())
        assert e.total_pj != pytest.approx(wrong.total_pj)
        assert run_seconds(run) == pytest.approx(
            run.mem_cycles * prof.timing.tCK_ns * 1e-9)

    def test_ddr3_resolution_matches_legacy_explicit_call(self):
        """Pre-change callers passed DDR3_1600 + DDR3PowerParameters()
        explicitly; resolving from a DDR3 config must be bit-identical
        (fig8's DDR3 numbers cannot move)."""
        from repro.config import eight_core_config
        run = _fake_run(eight_core_config())
        resolved = energy_for_run(run)
        legacy = energy_for_run(run, timing=DDR3_1600,
                                power=DDR3PowerParameters())
        assert resolved.as_dict() == legacy.as_dict()

    def test_access_rate_uses_own_clock(self):
        from repro.harness.scenarios import scenario_config
        counts = dict(mem_cycles=80_000, activations=100, reads=400,
                      writes=100)
        ddr3 = _fake_run(scenario_config("c1-r1", "none"), **counts)
        gddr5 = _fake_run(scenario_config("gddr5-4000-c1", "none"),
                          **counts)
        # Same counts, 2.5x faster clock => 2.5x the access rate.
        assert access_rate_for_run(gddr5) == pytest.approx(
            access_rate_for_run(ddr3) * 2.5)


class TestValidation:
    def test_active_exceeding_total_rejected(self):
        with pytest.raises(ValueError):
            components(rank_active_cycles=20_000)

    def test_bad_power_parameters_rejected(self):
        bad = DDR3PowerParameters(idd3n_ma=10.0, idd2n_ma=32.0)
        with pytest.raises(ValueError):
            components(power=bad)

    @pytest.mark.parametrize("field", ["idd4r_ma", "idd4w_ma"])
    def test_burst_current_below_active_standby_rejected(self, field):
        bad = PowerParameters(**{field: P.idd3n_ma - 1.0})
        with pytest.raises(ValueError, match="IDD4R/IDD4W"):
            components(power=bad)

    def test_refresh_current_below_precharged_standby_rejected(self):
        bad = PowerParameters(idd5b_ma=P.idd2n_ma - 1.0)
        with pytest.raises(ValueError, match="IDD5B"):
            components(power=bad)

    @pytest.mark.parametrize("field", ["idd0_ma", "idd2n_ma", "idd3n_ma",
                                       "idd4r_ma", "idd4w_ma", "idd5b_ma"])
    def test_non_positive_currents_rejected(self, field):
        # Negative standby currents would satisfy the ordering checks
        # while still producing negative background energy.
        bad = PowerParameters(**{field: -1.0})
        with pytest.raises(ValueError, match=field):
            components(power=bad)

    @pytest.mark.parametrize("field", ["activations", "reads", "writes",
                                       "refreshes", "rank_active_cycles",
                                       "total_rank_cycles"])
    def test_negative_counts_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            components(**{field: -1})

    def test_negative_mechanism_energy_rejected(self):
        with pytest.raises(ValueError):
            components(mechanism_pj=-1.0)


class TestBreakdown:
    def test_total_is_sum_of_parts(self):
        e = components(activations=5, reads=7, writes=3, refreshes=1,
                       rank_active_cycles=500)
        parts = (e.act_pre_pj + e.read_pj + e.write_pj + e.refresh_pj
                 + e.background_active_pj + e.background_precharged_pj
                 + e.mechanism_pj)
        assert e.total_pj == pytest.approx(parts)

    def test_as_dict_round_trip(self):
        e = components(activations=5)
        d = e.as_dict()
        assert d["act_pre_pj"] == e.act_pre_pj
        assert d["total_pj"] == e.total_pj

    def test_total_mj(self):
        e = EnergyBreakdown(1e9, 0, 0, 0, 0, 0)
        assert e.total_mj == pytest.approx(1.0)


class TestProperties:
    @given(st.sampled_from(sorted(PROFILES)),
           st.integers(0, 1000), st.integers(0, 1000),
           st.integers(0, 1000), st.integers(0, 50),
           st.integers(0, 10_000))
    @settings(max_examples=150)
    def test_energy_never_negative_on_any_standard(self, standard, acts,
                                                   reads, writes, refs,
                                                   active):
        """Every breakdown component is non-negative for every power
        preset of the scenario matrix's standards family."""
        prof = profile(standard)
        e = energy_components(activations=acts, reads=reads,
                              writes=writes, refreshes=refs,
                              rank_active_cycles=active,
                              total_rank_cycles=10_000,
                              timing=prof.timing, power=prof.power)
        for value in e.as_dict().values():
            assert value >= 0

    @given(st.integers(0, 500))
    @settings(max_examples=50)
    def test_monotone_in_activations(self, acts):
        a = components(activations=acts).total_pj
        b = components(activations=acts + 1).total_pj
        assert b > a
