"""Tests for the sense-amplifier transient model (paper Figure 6)."""

import pytest

from repro.circuit.sense_amp import SenseAmpModel
from repro.circuit.spice import (
    WORST_CASE_AGE_MS,
    bitline_transient,
    derive_timing_table,
    find_latency_pair,
    spec_margins,
)


class TestFigure6Anchors:
    """Calibration against the paper's SPICE numbers."""

    def test_fully_charged_ready_time(self):
        ready, _ = find_latency_pair(0.0)
        assert ready == pytest.approx(10.0, abs=0.7)

    def test_worst_case_ready_time(self):
        ready, _ = find_latency_pair(WORST_CASE_AGE_MS)
        assert ready == pytest.approx(14.5, abs=0.7)

    def test_trcd_headroom(self):
        full, _ = find_latency_pair(0.0)
        worst, _ = find_latency_pair(WORST_CASE_AGE_MS)
        assert worst - full == pytest.approx(4.5, abs=0.8)

    def test_tras_headroom(self):
        _, full = find_latency_pair(0.0)
        _, worst = find_latency_pair(WORST_CASE_AGE_MS)
        assert worst - full == pytest.approx(9.6, abs=1.2)


class TestMonotonicity:
    def test_older_cells_are_slower(self):
        readies = [find_latency_pair(age)[0]
                   for age in (0.0, 1.0, 4.0, 16.0, 64.0)]
        assert readies == sorted(readies)

    def test_restore_also_monotone(self):
        restores = [find_latency_pair(age)[1]
                    for age in (0.0, 1.0, 4.0, 16.0, 64.0)]
        assert restores == sorted(restores)

    def test_restore_after_ready(self):
        for age in (0.0, 64.0):
            ready, restore = find_latency_pair(age)
            assert restore > ready


class TestWaveforms:
    def test_bitline_rises_to_vdd(self):
        result = bitline_transient(0.0)
        assert result.bitline_v[0] == pytest.approx(0.75)  # Vdd/2
        assert result.bitline_v[-1] > 1.4

    def test_cell_restored(self):
        result = bitline_transient(64.0, t_end_ns=60.0)
        assert result.cell_v[-1] >= 0.97 * 1.5

    def test_waveform_monotone_after_offset(self):
        result = bitline_transient(0.0)
        tail = result.bitline_v[2:]
        assert all(b >= a - 1e-9 for a, b in zip(tail, tail[1:]))

    def test_voltage_at_lookup(self):
        result = bitline_transient(0.0)
        assert result.voltage_at(0.0) == pytest.approx(0.75, abs=0.05)


class TestDerivedTable:
    def test_margins_reproduce_baseline(self):
        margin_rcd, margin_ras = spec_margins()
        worst = find_latency_pair(WORST_CASE_AGE_MS)
        assert worst[0] + margin_rcd == pytest.approx(13.75)
        assert worst[1] + margin_ras == pytest.approx(35.0)

    def test_table_close_to_paper(self):
        """Model-derived Table 2 within ~4 ns of the published values."""
        from repro.circuit.latency_tables import DURATION_TABLE_NS
        table = derive_timing_table()
        for duration, (paper_trcd, paper_tras) in DURATION_TABLE_NS.items():
            model_trcd, model_tras = table[duration]
            assert model_trcd == pytest.approx(paper_trcd, abs=2.0)
            assert model_tras == pytest.approx(paper_tras, abs=4.0)

    def test_table_monotone_in_duration(self):
        table = derive_timing_table()
        durations = sorted(table)
        trcds = [table[d][0] for d in durations]
        trass = [table[d][1] for d in durations]
        assert trcds == sorted(trcds)
        assert trass == sorted(trass)

    def test_table_never_exceeds_baseline(self):
        table = derive_timing_table(durations_ms=(1.0, 64.0, 512.0))
        for trcd, tras in table.values():
            assert trcd <= 13.75
            assert tras <= 35.0


class TestCustomModels:
    def test_weaker_retention_slows_sensing(self):
        from repro.circuit.spice import make_model
        leaky = make_model(retention_tau_ms=50.0)
        normal = SenseAmpModel()
        r_leaky = leaky.simulate(32.0)
        r_normal = normal.simulate(32.0)
        assert r_leaky.ready_time_ns > r_normal.ready_time_ns

    def test_nonconvergent_model_raises(self):
        from repro.circuit.spice import find_latency_pair, make_model
        broken = make_model(tau_sa_ns=500.0)  # far too slow to converge
        with pytest.raises(RuntimeError):
            find_latency_pair(64.0, model=broken)
