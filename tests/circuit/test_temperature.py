"""Tests for the temperature model (paper Section 7.1)."""

import pytest

from repro.circuit.cell import CellParameters
from repro.circuit.temperature import (
    WORST_CASE_TEMPERATURE_C,
    cell_model_at,
    chargecache_margin_at,
    leakage_factor_at,
    retention_tau_at,
)


class TestLeakageScaling:
    def test_worst_case_is_unity(self):
        assert leakage_factor_at(85.0) == pytest.approx(1.0)

    def test_doubles_every_10c(self):
        assert leakage_factor_at(95.0) == pytest.approx(2.0)
        assert leakage_factor_at(75.0) == pytest.approx(0.5)
        assert leakage_factor_at(65.0) == pytest.approx(0.25)

    def test_retention_tau_scales_inversely(self):
        base = CellParameters()
        assert retention_tau_at(85.0) == pytest.approx(
            base.retention_tau_ms)
        assert retention_tau_at(75.0) == pytest.approx(
            2 * base.retention_tau_ms)


class TestTemperatureIndependence:
    """Paper Section 7.1: ChargeCache's reduced timings are validated
    at the worst-case temperature, so they hold below it."""

    def test_margin_non_negative_at_or_below_worst_case(self):
        for temp in (25.0, 45.0, 65.0, 85.0):
            assert chargecache_margin_at(temp) >= -1e-12

    def test_margin_grows_as_device_cools(self):
        margins = [chargecache_margin_at(t) for t in (85.0, 65.0, 45.0)]
        assert margins == sorted(margins)

    def test_hot_3d_stacked_device_loses_margin(self):
        """Above 85 C (HMC/HBM/WideIO stacking) the margin goes
        negative - ChargeCache would need re-validated timings there,
        matching the paper's discussion of 3D-stacked parts."""
        assert chargecache_margin_at(105.0) < 0

    def test_cool_device_senses_faster(self):
        cool = cell_model_at(45.0).simulate(32.0)
        hot = cell_model_at(WORST_CASE_TEMPERATURE_C).simulate(32.0)
        assert cool.ready_time_ns < hot.ready_time_ns

    def test_worst_case_model_matches_default(self):
        default = cell_model_at(WORST_CASE_TEMPERATURE_C)
        assert default.cell.retention_tau_ms == pytest.approx(
            CellParameters().retention_tau_ms)
