"""Tests for the caching-duration timing tables (paper Table 2)."""

import pytest

from repro.circuit.latency_tables import (
    BASELINE_TIMINGS_NS,
    DURATION_REDUCTIONS_CYCLES,
    DURATION_TABLE_NS,
    nuat_bin_reductions,
    reductions_for_duration_ms,
    timings_ns_for_duration_ms,
)
from repro.dram.timing import DDR3_1600


class TestPublishedTable:
    def test_baseline_matches_ddr3(self):
        trcd_ns, tras_ns = BASELINE_TIMINGS_NS
        assert DDR3_1600.ns_to_cycles(trcd_ns) == DDR3_1600.tRCD
        assert DDR3_1600.ns_to_cycles(tras_ns) == DDR3_1600.tRAS

    def test_exact_paper_rows(self):
        assert DURATION_TABLE_NS[1.0] == (8.0, 22.0)
        assert DURATION_TABLE_NS[4.0] == (9.0, 24.0)
        assert DURATION_TABLE_NS[16.0] == (11.0, 28.0)

    def test_headline_reduction_is_4_8_cycles(self):
        assert reductions_for_duration_ms(1.0) == (4, 8)


class TestConservativeLookup:
    def test_between_rows_rounds_up_to_slower(self):
        assert timings_ns_for_duration_ms(2.0) == DURATION_TABLE_NS[4.0]
        assert reductions_for_duration_ms(2.0) == \
            DURATION_REDUCTIONS_CYCLES[4.0]

    def test_beyond_table_is_baseline(self):
        assert timings_ns_for_duration_ms(64.0) == BASELINE_TIMINGS_NS
        assert reductions_for_duration_ms(64.0) == (0, 0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            timings_ns_for_duration_ms(0.0)
        with pytest.raises(ValueError):
            reductions_for_duration_ms(-1.0)

    def test_reductions_monotone_in_duration(self):
        durations = sorted(DURATION_REDUCTIONS_CYCLES)
        trcds = [DURATION_REDUCTIONS_CYCLES[d][0] for d in durations]
        trass = [DURATION_REDUCTIONS_CYCLES[d][1] for d in durations]
        assert trcds == sorted(trcds, reverse=True)
        assert trass == sorted(trass, reverse=True)


class TestNUATBins:
    def test_default_5pb_bins(self):
        table = nuat_bin_reductions((6.0, 16.0, 32.0, 48.0, 64.0))
        assert len(table) == 5
        assert table[-1] == (64.0, (0, 0))

    def test_bins_monotone(self):
        table = nuat_bin_reductions((6.0, 16.0, 32.0, 48.0, 64.0))
        reductions = [red for _, red in table]
        for earlier, later in zip(reductions, reductions[1:]):
            assert earlier[0] >= later[0]
            assert earlier[1] >= later[1]

    def test_nuat_never_beats_chargecache_1ms(self):
        """A refresh-based hit can never assume more charge than a
        1 ms-old ChargeCache row."""
        cc = reductions_for_duration_ms(1.0)
        for _, red in nuat_bin_reductions((6.0, 16.0, 32.0, 48.0, 64.0)):
            assert red[0] <= cc[0]
            assert red[1] <= cc[1]

    def test_custom_edges_fall_back_to_duration_rule(self):
        table = nuat_bin_reductions((4.0,))
        assert table[0] == (4.0, DURATION_REDUCTIONS_CYCLES[4.0])
