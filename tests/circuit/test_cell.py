"""Unit tests for the DRAM cell electrical model."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.cell import (
    CellParameters,
    cell_voltage_after,
    charge_sharing_voltage,
    initial_deviation,
)

P = CellParameters()


class TestLeakage:
    def test_fresh_cell_at_vdd(self):
        assert cell_voltage_after(0.0) == pytest.approx(P.vdd)

    def test_decay_is_monotone(self):
        ages = [0.0, 1.0, 8.0, 64.0, 256.0]
        voltages = [cell_voltage_after(a) for a in ages]
        assert voltages == sorted(voltages, reverse=True)

    def test_64ms_cell_still_senses(self):
        """A worst-case cell must stay above Vdd/2 at the refresh
        deadline, or the stored bit would flip."""
        assert cell_voltage_after(64.0) > P.precharge_voltage

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            cell_voltage_after(-1.0)

    @given(st.floats(min_value=0.0, max_value=500.0),
           st.floats(min_value=0.1, max_value=500.0))
    def test_decay_property(self, age, delta):
        assert cell_voltage_after(age + delta) <= cell_voltage_after(age)


class TestChargeSharing:
    def test_full_cell_raises_bitline(self):
        v = charge_sharing_voltage(P.vdd)
        assert v > P.precharge_voltage

    def test_discharged_cell_lowers_bitline(self):
        v = charge_sharing_voltage(0.0)
        assert v < P.precharge_voltage

    def test_half_charged_cell_is_neutral(self):
        v = charge_sharing_voltage(P.precharge_voltage)
        assert v == pytest.approx(P.precharge_voltage)

    def test_deviation_magnitude(self):
        """delta = (Vcell - Vdd/2) * Cc/(Cb+Cc), the capacitive divider."""
        expected = (P.vdd - P.precharge_voltage) * P.transfer_ratio
        assert initial_deviation(P.vdd) == pytest.approx(expected)

    def test_deviation_monotone_in_charge(self):
        deviations = [initial_deviation(cell_voltage_after(a))
                      for a in (0.0, 8.0, 64.0)]
        assert deviations == sorted(deviations, reverse=True)


class TestParameters:
    def test_ready_and_restore_levels(self):
        assert P.ready_voltage == pytest.approx(0.75 * P.vdd)
        assert P.restore_voltage < P.vdd

    def test_transfer_ratio_below_one(self):
        assert 0 < P.transfer_ratio < 1
