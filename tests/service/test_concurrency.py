"""Multi-process hammer test: one key, one DB row, many writers.

Satellite guarantee for the service's concurrency model: N processes
racing on the *same* spec must (a) run the simulation exactly once —
:meth:`ResultsDatabase.claim` admits one winner — (b) never observe a
corrupt envelope while hammering put/get on the shared cache key, and
(c) converge on one bit-identical result row with no lost updates.
"""

import hashlib
import json
import os
import subprocess
import sys
import time

from repro.harness.cache import RunCache, cache_key, result_to_json
from repro.harness.runner import Scale, workload_spec
from repro.service.database import ResultsDatabase

N_WORKERS = 4

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

WORKER = """
import hashlib, json, os, sys, time

cache_dir, db_path, out_dir, go_file = sys.argv[1:5]

from repro.harness import runner
from repro.harness.cache import RunCache, cache_key, result_to_json
from repro.harness.runner import Scale, run_spec_ex, workload_spec
from repro.service.database import ResultsDatabase

TINY = Scale(single_core_instructions=1500,
             multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

pid = os.getpid()
runner.configure_disk_cache(cache_dir)
cache = RunCache(cache_dir)
db = ResultsDatabase(db_path, lock_timeout_s=120.0)
spec = workload_spec("libquantum", "chargecache", TINY)
key = cache_key(spec)

# Line up on the barrier so the claim race is a real race.
open(os.path.join(out_dir, "ready-%d" % pid), "w").close()
while not os.path.exists(go_file):
    time.sleep(0.005)

if db.claim(spec, owner=str(pid), key=key):
    result, source = run_spec_ex(spec)   # read-through persists it
    assert source == "computed", source
    db.record(spec, result, key=key,
              envelope_path=cache.path_for(key), owner=str(pid))
    open(os.path.join(out_dir, "winner-%d" % pid), "w").close()
else:
    deadline = time.monotonic() + 240.0
    while not db.has_result(key):
        assert time.monotonic() < deadline, "timed out on the winner"
        time.sleep(0.02)
    result = cache.get(key)
    assert result is not None, "done row without readable envelope"

canonical = json.dumps(result_to_json(result), sort_keys=True)

# Hammer the shared key: concurrent re-puts must never expose a
# torn/corrupt envelope to any concurrent reader.
for _ in range(15):
    cache.put(key, spec, result)
    seen = cache.get(key)
    assert seen is not None, "reader observed a corrupt envelope"
    got = json.dumps(result_to_json(seen), sort_keys=True)
    assert got == canonical, "reader observed a torn write"

row = db.get(key)
assert row is not None and row["status"] == "done"
assert row["total_ipc"] == result.total_ipc, "lost row update"

digest = hashlib.sha256(canonical.encode("ascii")).hexdigest()
with open(os.path.join(out_dir, "ok-%d" % pid), "w") as fh:
    fh.write(digest)
"""


def test_n_processes_one_key_one_row_one_simulation(tmp_path):
    cache_dir = tmp_path / "cache"
    out_dir = tmp_path / "out"
    out_dir.mkdir()
    go_file = tmp_path / "go"
    script = tmp_path / "worker.py"
    script.write_text(WORKER)

    src = os.path.join(os.getcwd(), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, env.get("PYTHONPATH")]))

    workers = [
        subprocess.Popen(
            [sys.executable, str(script), str(cache_dir),
             str(tmp_path / "results.sqlite"), str(out_dir),
             str(go_file)],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        for _ in range(N_WORKERS)
    ]
    try:
        deadline = time.monotonic() + 120.0
        while len([f for f in os.listdir(out_dir)
                   if f.startswith("ready-")]) < N_WORKERS:
            assert time.monotonic() < deadline, "workers never lined up"
            time.sleep(0.02)
        go_file.touch()
        for worker in workers:
            output, _ = worker.communicate(timeout=300)
            assert worker.returncode == 0, output
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.kill()

    names = os.listdir(out_dir)
    winners = [f for f in names if f.startswith("winner-")]
    oks = [f for f in names if f.startswith("ok-")]
    assert len(winners) == 1, f"expected one winner, saw {winners}"
    assert len(oks) == N_WORKERS

    # Every process saw the same bits.
    digests = {(out_dir / f).read_text() for f in oks}
    assert len(digests) == 1

    # One row, done, matching the (single, intact) envelope.
    db = ResultsDatabase(str(tmp_path / "results.sqlite"))
    assert len(db) == 1
    spec = workload_spec("libquantum", "chargecache", TINY)
    key = cache_key(spec)
    row = db.get(key)
    assert row["status"] == "done"
    cache = RunCache(str(cache_dir))
    assert cache.keys() == [key]
    result = cache.get(key)
    assert result is not None
    assert row["total_ipc"] == result.total_ipc
    canonical = json.dumps(result_to_json(result), sort_keys=True)
    assert hashlib.sha256(
        canonical.encode("ascii")).hexdigest() == digests.pop()
