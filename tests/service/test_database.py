"""Tests for the locked SQLite results store."""

import json
import sqlite3

import pytest

from repro.harness import runner
from repro.harness.cache import (
    RunCache,
    cache_key,
    code_fingerprint,
    result_to_json,
)
from repro.harness.runner import Scale, run_spec_ex, workload_spec
from repro.service.database import (
    DB_SCHEMA_VERSION,
    METRIC_FIELDS,
    QUERY_FIELDS,
    ResultsDatabase,
    build_run_table,
    spec_standard,
)

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)


@pytest.fixture(scope="module")
def computed():
    """Two genuinely simulated (spec, result) pairs to index."""
    pairs = []
    for mechanism in ("none", "chargecache"):
        spec = workload_spec("libquantum", mechanism, TINY)
        result, _ = run_spec_ex(spec)
        pairs.append((spec, result))
    return pairs


@pytest.fixture
def db(tmp_path):
    return ResultsDatabase(str(tmp_path / "results.sqlite"))


class TestSchema:
    def test_fresh_store_is_stamped_and_empty(self, db):
        assert len(db) == 0
        conn = sqlite3.connect(db.path)
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
        finally:
            conn.close()
        assert version == DB_SCHEMA_VERSION

    def test_reopening_same_store_is_fine(self, db, computed):
        spec, result = computed[0]
        db.record(spec, result)
        again = ResultsDatabase(db.path)
        assert len(again) == 1

    def test_mismatched_schema_refuses_to_open(self, db):
        conn = sqlite3.connect(db.path)
        try:
            conn.execute("PRAGMA user_version = 99")
            conn.commit()
        finally:
            conn.close()
        with pytest.raises(ValueError, match="schema 99"):
            ResultsDatabase(db.path)


class TestClaimLifecycle:
    def test_exactly_one_claim_wins(self, db, computed):
        spec, _ = computed[0]
        assert db.claim(spec, owner="a") is True
        assert db.claim(spec, owner="b") is False
        assert db.status_of(cache_key(spec)) == "pending"
        assert not db.has_result(cache_key(spec))

    def test_release_reopens_the_claim(self, db, computed):
        spec, _ = computed[0]
        key = cache_key(spec)
        assert db.claim(spec)
        assert db.release(key) is True
        assert db.status_of(key) is None
        assert db.claim(spec) is True

    def test_release_never_touches_done_rows(self, db, computed):
        spec, result = computed[0]
        key = db.record(spec, result)
        assert db.release(key) is False
        assert db.has_result(key)

    def test_record_promotes_a_claim(self, db, computed):
        spec, result = computed[0]
        db.claim(spec, owner="job-1")
        key = db.record(spec, result, owner="job-1")
        row = db.get(key)
        assert row["status"] == "done"
        assert row["owner"] == "job-1"
        assert db.claim(spec) is False  # done rows are never re-claimed


class TestRecord:
    def test_row_carries_spec_fields_and_metrics(self, db, computed):
        spec, result = computed[1]
        key = db.record(spec, result, envelope_path="/x/y.json")
        row = db.get(key)
        assert row["cache_key"] == key == cache_key(spec)
        assert row["kind"] == "single"
        assert row["name"] == "libquantum"
        assert row["mechanism"] == "chargecache"
        assert row["standard"] == spec_standard(spec) == "DDR3-1600"
        assert row["fingerprint"] == code_fingerprint()
        assert row["envelope_path"] == "/x/y.json"
        assert row["total_ipc"] == pytest.approx(result.total_ipc)
        assert row["mem_cycles"] == result.mem_cycles
        assert json.loads(row["spec_json"]) == spec.key_payload()

    def test_record_is_idempotent(self, db, computed):
        spec, result = computed[0]
        key = db.record(spec, result)
        first = db.get(key)
        key2 = db.record(spec, result)
        assert key2 == key
        second = db.get(key)
        assert len(db) == 1
        assert second["total_ipc"] == first["total_ipc"]
        assert second["updated_at"] >= first["updated_at"]

    def test_spec_round_trips_through_the_row(self, db, computed):
        spec, result = computed[1]
        key = db.record(spec, result)
        assert db.spec_for(key) == spec
        assert db.spec_for("0" * 64) is None

    def test_forget_drops_the_row(self, db, computed):
        spec, result = computed[0]
        key = db.record(spec, result)
        assert db.forget(key) is True
        assert db.get(key) is None
        assert db.forget(key) is False


class TestQuery:
    @pytest.fixture
    def populated(self, db, computed):
        for spec, result in computed:
            db.record(spec, result)
        db.claim(workload_spec("mcf", "chargecache", TINY))
        return db

    def test_default_view_is_done_only(self, populated):
        rows = populated.query()
        assert len(rows) == 2
        assert {r["status"] for r in rows} == {"done"}

    def test_status_none_includes_pending(self, populated):
        rows = populated.query(status=None)
        assert len(rows) == 3
        assert sum(r["status"] == "pending" for r in rows) == 1

    def test_exact_match_filters_compose(self, populated):
        rows = populated.query(mechanism="chargecache",
                               name="libquantum", kind="single",
                               standard="DDR3-1600", engine="event")
        assert len(rows) == 1
        assert rows[0]["mechanism"] == "chargecache"
        assert populated.query(mechanism="lldram") == []

    def test_limit_and_stable_order(self, populated):
        rows = populated.query()
        assert [r["mechanism"] for r in rows] == \
            sorted(r["mechanism"] for r in rows)
        assert len(populated.query(limit=1)) == 1

    def test_counts(self, populated):
        assert populated.count() == 3
        assert populated.count("done") == 2
        assert populated.count("pending") == 1


class TestRunTable:
    def test_default_columns(self, db, computed):
        spec, result = computed[0]
        db.record(spec, result)
        columns, rows = build_run_table(db.query())
        ids = [c["id"] for c in columns]
        assert ids == list(QUERY_FIELDS) + ["status"] + \
            list(METRIC_FIELDS)
        assert len(rows) == 1
        assert set(rows[0]) == set(ids)
        assert rows[0]["name"] == "libquantum"

    def test_explicit_column_selection(self, db, computed):
        spec, result = computed[0]
        db.record(spec, result)
        columns, rows = build_run_table(db.query(),
                                        columns=["name", "total_ipc"])
        assert [c["id"] for c in columns] == ["name", "total_ipc"]
        assert set(rows[0]) == {"name", "total_ipc"}


class TestBackfill:
    def test_import_indexes_every_envelope(self, tmp_path, computed):
        root = tmp_path / "cache"
        prev = (runner._disk_enabled, runner._disk_dir)
        runner.configure_disk_cache(str(root))
        runner.clear_memo()
        try:
            specs = [spec for spec, _ in computed]
            for spec in specs:
                run_spec_ex(spec)
        finally:
            runner.clear_memo()
            runner.configure_disk_cache(prev[1], enabled=prev[0])

        cache = RunCache(str(root))
        # A corrupt envelope must be skipped, not imported or fatal.
        with open(cache.path_for("0" * 64), "w",
                  encoding="ascii") as fh:
            fh.write("{not json")

        db = ResultsDatabase(str(tmp_path / "results.sqlite"))
        imported, skipped = db.import_run_cache(cache)
        assert (imported, skipped) == (2, 1)
        assert db.count("done") == 2
        for spec, result in computed:
            row = db.get(cache_key(spec))
            assert row["owner"] == "import"
            assert row["envelope_path"] == \
                cache.path_for(cache_key(spec))
            assert row["total_ipc"] == pytest.approx(result.total_ipc)

        # Idempotent: re-import changes nothing.
        again = db.import_run_cache(cache)
        assert again == (2, 1)
        assert db.count("done") == 2

    def test_import_survives_every_corruption_shape(self, tmp_path,
                                                    computed):
        """A hostile cache directory must never poison the store:
        each malformed envelope is counted as skipped, the good one
        still lands."""
        root = tmp_path / "cache"
        cache = RunCache(str(root))
        spec, result = computed[0]
        good_key = cache_key(spec)
        cache.put(good_key, spec, result)
        with open(cache.path_for(good_key)) as fh:
            good = json.load(fh)

        def plant(key, envelope):
            with open(cache.path_for(key), "w",
                      encoding="ascii") as fh:
                if isinstance(envelope, str):
                    fh.write(envelope)
                else:
                    json.dump(envelope, fh)

        plant("1" * 64, "{truncated")                  # not JSON
        plant("2" * 64, [1, 2, 3])                     # not an object
        plant("3" * 64, {**good, "schema": 99})        # wrong schema
        plant("4" * 64, {**good,                       # unknown field
                         "spec": {**good["spec"], "bogus": 1}})
        plant("5" * 64, {**good,                       # bad trace sha
                         "spec": {**good["spec"], "kind": "trace",
                                  "trace_sha256": "nothex"}})
        missing = dict(good)
        del missing["result"]
        plant("6" * 64, missing)                       # no result

        db = ResultsDatabase(str(tmp_path / "results.sqlite"))
        assert db.import_run_cache(cache) == (1, 6)
        assert db.count("done") == 1
        assert db.get(good_key)["name"] == "libquantum"
