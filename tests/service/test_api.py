"""End-to-end tests for the HTTP API and its thin client.

A real ThreadingHTTPServer on an ephemeral port fronts a real
RunService; the ServiceClient talks to it over loopback exactly as a
remote harness would.
"""

import threading

import pytest

from repro.harness import runner
from repro.harness.runner import Scale, workload_spec
from repro.service.api import make_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import RunService

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

SPECS = [workload_spec("libquantum", mech, TINY)
         for mech in ("none", "chargecache")]


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path):
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "cache"))
    yield
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


@pytest.fixture
def client(tmp_path):
    service = RunService(str(tmp_path / "results.sqlite")).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        service.stop()


class TestRoundTrip:
    def test_submit_wait_query_over_http(self, client):
        job = client.submit(SPECS, wait=True, timeout_s=300)
        assert job["state"] == "done"
        assert job["counts"]["computed"] == 2

        table = client.query(mechanism="chargecache")
        assert table["count"] == 1
        (row,) = table["rows"]
        assert row["name"] == "libquantum"
        assert row["status"] == "done"
        assert row["total_ipc"] > 0
        assert {c["id"] for c in table["columns"]} >= \
            {"kind", "name", "mechanism", "standard", "total_ipc"}

        # Resubmitting the same specs does zero simulations.
        again = client.submit(SPECS, wait=True, timeout_s=300)
        assert again["counts"]["computed"] == 0
        assert again["counts"]["already_done"] == 2

    def test_raw_payload_dicts_are_accepted(self, client):
        payload = SPECS[0].key_payload()
        job = client.submit([payload], wait=True, timeout_s=300)
        assert job["state"] == "done"
        assert job["points"] == 1

    def test_status_and_jobs_listing(self, client):
        job = client.submit([SPECS[0]], wait=True, timeout_s=300)
        snapshot = client.status(job["job"])
        assert snapshot["state"] == "done"
        assert snapshot["elapsed_s"] >= 0
        listed = client.jobs()
        assert [j["job"] for j in listed] == [job["job"]]

    def test_client_side_wait_polls_to_done(self, client):
        job = client.submit([SPECS[0]])
        final = client.wait(job["job"], timeout_s=300)
        assert final["state"] == "done"

    def test_health(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["rows"] == 0


class TestErrorSurface:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("job-424242")
        assert err.value.status == 404

    def test_malformed_spec_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit([{"kind": "single"}])  # no name
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.submit([{"kind": "single", "name": "libquantum",
                            "bogus_field": 1}])
        assert err.value.status == 400
        assert "bogus_field" in str(err.value)

    def test_empty_specs_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit([])
        assert err.value.status == 400

    def test_unknown_query_param_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.query(flavour="strange")
        assert err.value.status == 400
        assert "flavour" in str(err.value)

    def test_bad_limit_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.query(limit="many")
        assert err.value.status == 400

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/nope")
        assert err.value.status == 404

    def test_unreachable_server_is_status_zero(self):
        dead = ServiceClient("http://127.0.0.1:1", timeout_s=0.5)
        with pytest.raises(ServiceError) as err:
            dead.health()
        assert err.value.status == 0
