"""Tests for the advisory cross-process file lock."""

import os
import subprocess
import sys
import time

import pytest

from repro.service import locking
from repro.service.locking import FileLock, LockTimeout


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        assert not lock.held
        lock.acquire()
        assert lock.held
        assert os.path.exists(lock.path)
        lock.release()
        assert not lock.held
        # Release is idempotent.
        lock.release()

    def test_context_manager(self, tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        with lock as held:
            assert held is lock
            assert lock.held
        assert not lock.held

    def test_reacquire_while_held_raises(self, tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        with lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()
        # Releasable and reusable afterwards.
        with lock:
            assert lock.held

    def test_second_instance_excluded_until_release(self, tmp_path):
        path = str(tmp_path / "db.lock")
        first = FileLock(path)
        second = FileLock(path, timeout_s=0.15, poll_s=0.01)
        with first:
            started = time.monotonic()
            with pytest.raises(LockTimeout):
                second.acquire()
            assert time.monotonic() - started >= 0.15
        with second:  # freed now
            assert second.held

    def test_negative_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FileLock(str(tmp_path / "db.lock"), timeout_s=-1)

    def test_excludes_across_processes(self, tmp_path):
        """A child process holding the lock blocks the parent; the
        parent gets in as soon as the child lets go."""
        path = str(tmp_path / "db.lock")
        release_flag = str(tmp_path / "release-me")
        script = (
            "import os, sys, time\n"
            "from repro.service.locking import FileLock\n"
            "lock = FileLock(sys.argv[1])\n"
            "with lock:\n"
            "    print('locked', flush=True)\n"
            "    while not os.path.exists(sys.argv[2]):\n"
            "        time.sleep(0.01)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.getcwd(), "src"),
                          env.get("PYTHONPATH")]))
        child = subprocess.Popen(
            [sys.executable, "-c", script, path, release_flag],
            stdout=subprocess.PIPE, env=env, text=True)
        try:
            assert child.stdout.readline().strip() == "locked"
            contender = FileLock(path, timeout_s=0.2, poll_s=0.01)
            with pytest.raises(LockTimeout):
                contender.acquire()
            open(release_flag, "w").close()
            assert child.wait(timeout=30) == 0
            with FileLock(path, timeout_s=10.0):
                pass
        finally:
            if child.poll() is None:
                child.kill()


class TestLockTimeout:
    def test_is_a_timeout_error(self):
        assert issubclass(LockTimeout, TimeoutError)

    def test_message_names_path_and_budget(self, tmp_path):
        path = str(tmp_path / "db.lock")
        holder = FileLock(path)
        contender = FileLock(path, timeout_s=0.05, poll_s=0.01)
        with holder:
            with pytest.raises(LockTimeout) as excinfo:
                contender.acquire()
        assert path in str(excinfo.value)
        assert "0.1s" in str(excinfo.value)

    def test_zero_timeout_fails_fast_when_contended(self, tmp_path):
        path = str(tmp_path / "db.lock")
        holder = FileLock(path)
        contender = FileLock(path, timeout_s=0.0, poll_s=0.01)
        with holder:
            started = time.monotonic()
            with pytest.raises(LockTimeout):
                contender.acquire()
            assert time.monotonic() - started < 1.0
        with contender:  # still usable once freed
            assert contender.held

    def test_loser_does_not_leak_the_lock(self, tmp_path):
        """A timed-out acquire leaves no half-held state behind."""
        path = str(tmp_path / "db.lock")
        holder = FileLock(path)
        contender = FileLock(path, timeout_s=0.05, poll_s=0.01)
        with holder:
            with pytest.raises(LockTimeout):
                contender.acquire()
            assert not contender.held
        # The loser's cleanup must not have unlinked or unlocked
        # anything out from under a future winner.
        with FileLock(path, timeout_s=1.0):
            pass


class TestExclusiveCreateFallback:
    """The O_EXCL spin-lock used where fcntl is unavailable.

    ``fcntl = None`` is the module's own non-POSIX degradation
    (locking.py's import guard); monkeypatching it exercises that
    exact branch on POSIX hosts.
    """

    @pytest.fixture()
    def no_fcntl(self, monkeypatch):
        monkeypatch.setattr(locking, "fcntl", None)

    def test_acquire_creates_release_unlinks(self, no_fcntl,
                                             tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        lock.acquire()
        assert lock.held
        assert os.path.exists(lock.path)
        # The lockfile records the owner for post-mortem debugging.
        assert open(lock.path).read() == str(os.getpid())
        lock.release()
        assert not lock.held
        assert not os.path.exists(lock.path)

    def test_reuse_after_release(self, no_fcntl, tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        for _ in range(3):
            with lock:
                assert lock.held
            assert not os.path.exists(lock.path)

    def test_contention_times_out(self, no_fcntl, tmp_path):
        path = str(tmp_path / "db.lock")
        first = FileLock(path)
        second = FileLock(path, timeout_s=0.1, poll_s=0.01)
        with first:
            started = time.monotonic()
            with pytest.raises(LockTimeout):
                second.acquire()
            assert time.monotonic() - started >= 0.1
        with second:
            assert second.held

    def test_reacquire_while_held_raises(self, no_fcntl, tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        with lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()

    def test_stale_file_from_flock_mode_blocks_until_removed(
            self, no_fcntl, tmp_path):
        """An existing lockfile (e.g. left by flock mode, which never
        unlinks) reads as held to the fallback — consistent, if
        conservative."""
        path = tmp_path / "db.lock"
        path.write_text("12345")
        lock = FileLock(str(path), timeout_s=0.05, poll_s=0.01)
        with pytest.raises(LockTimeout):
            lock.acquire()
        path.unlink()
        with lock:
            assert lock.held

    def test_excludes_across_processes(self, no_fcntl, tmp_path):
        """Same cross-process drill as flock, forced onto O_EXCL in
        both parent and child."""
        path = str(tmp_path / "db.lock")
        release_flag = str(tmp_path / "release-me")
        script = (
            "import os, sys, time\n"
            "from repro.service import locking\n"
            "locking.fcntl = None\n"
            "lock = locking.FileLock(sys.argv[1])\n"
            "with lock:\n"
            "    print('locked', flush=True)\n"
            "    while not os.path.exists(sys.argv[2]):\n"
            "        time.sleep(0.01)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.getcwd(), "src"),
                          env.get("PYTHONPATH")]))
        child = subprocess.Popen(
            [sys.executable, "-c", script, path, release_flag],
            stdout=subprocess.PIPE, env=env, text=True)
        try:
            assert child.stdout.readline().strip() == "locked"
            contender = FileLock(path, timeout_s=0.2, poll_s=0.01)
            with pytest.raises(LockTimeout):
                contender.acquire()
            open(release_flag, "w").close()
            assert child.wait(timeout=30) == 0
            with FileLock(path, timeout_s=10.0):
                pass
        finally:
            if child.poll() is None:
                child.kill()
