"""Tests for the advisory cross-process file lock."""

import os
import subprocess
import sys
import time

import pytest

from repro.service.locking import FileLock, LockTimeout


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        assert not lock.held
        lock.acquire()
        assert lock.held
        assert os.path.exists(lock.path)
        lock.release()
        assert not lock.held
        # Release is idempotent.
        lock.release()

    def test_context_manager(self, tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        with lock as held:
            assert held is lock
            assert lock.held
        assert not lock.held

    def test_reacquire_while_held_raises(self, tmp_path):
        lock = FileLock(str(tmp_path / "db.lock"))
        with lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()
        # Releasable and reusable afterwards.
        with lock:
            assert lock.held

    def test_second_instance_excluded_until_release(self, tmp_path):
        path = str(tmp_path / "db.lock")
        first = FileLock(path)
        second = FileLock(path, timeout_s=0.15, poll_s=0.01)
        with first:
            started = time.monotonic()
            with pytest.raises(LockTimeout):
                second.acquire()
            assert time.monotonic() - started >= 0.15
        with second:  # freed now
            assert second.held

    def test_negative_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FileLock(str(tmp_path / "db.lock"), timeout_s=-1)

    def test_excludes_across_processes(self, tmp_path):
        """A child process holding the lock blocks the parent; the
        parent gets in as soon as the child lets go."""
        path = str(tmp_path / "db.lock")
        release_flag = str(tmp_path / "release-me")
        script = (
            "import os, sys, time\n"
            "from repro.service.locking import FileLock\n"
            "lock = FileLock(sys.argv[1])\n"
            "with lock:\n"
            "    print('locked', flush=True)\n"
            "    while not os.path.exists(sys.argv[2]):\n"
            "        time.sleep(0.01)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.getcwd(), "src"),
                          env.get("PYTHONPATH")]))
        child = subprocess.Popen(
            [sys.executable, "-c", script, path, release_flag],
            stdout=subprocess.PIPE, env=env, text=True)
        try:
            assert child.stdout.readline().strip() == "locked"
            contender = FileLock(path, timeout_s=0.2, poll_s=0.01)
            with pytest.raises(LockTimeout):
                contender.acquire()
            open(release_flag, "w").close()
            assert child.wait(timeout=30) == 0
            with FileLock(path, timeout_s=10.0):
                pass
        finally:
            if child.poll() is None:
                child.kill()
