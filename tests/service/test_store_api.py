"""End-to-end tests for the HTTP store backend and client retries.

A live ThreadingHTTPServer fronts a real RunService;
``ServiceStore``/``LayeredStore`` and the sweep claim protocol talk to
it over loopback exactly as a fleet worker would.
"""

import threading

import pytest

from repro.harness import cache as run_cache
from repro.harness import runner
from repro.harness.runner import Scale, workload_spec
from repro.harness.store import LayeredStore, LocalDirStore, ServiceStore
from repro.service.api import make_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import RunService

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

SPEC = workload_spec("libquantum", "chargecache", TINY)


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path):
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "daemon-cache"))
    yield
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


@pytest.fixture
def client(tmp_path):
    service = RunService(str(tmp_path / "results.sqlite")).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        service.stop()


def _computed(spec):
    """A result computed out of band (separate store, memo cleared)."""
    result = runner.run_spec(spec)
    runner.clear_memo()
    return result


class TestStoreRoutes:
    def test_envelope_round_trip(self, client):
        key = run_cache.cache_key(SPEC)
        assert client.get_result(key) is None
        assert not client.store_contains(key)
        assert client.store_keys() == []

        result = _computed(SPEC)
        put = client.put_result(key, SPEC.key_payload(),
                                run_cache.result_to_json(result))
        assert put["recorded"] and put["key"] == key

        assert client.store_contains(key)
        assert client.store_keys() == [key]
        envelope = client.get_result(key)
        assert envelope["key"] == key
        decoded = run_cache.result_from_json(envelope["result"])
        assert decoded.ipcs == result.ipcs

    def test_key_mismatch_is_409(self, client):
        result = _computed(SPEC)
        with pytest.raises(ServiceError) as err:
            client.put_result("0" * 64, SPEC.key_payload(),
                              run_cache.result_to_json(result))
        assert err.value.status == 409
        assert "fingerprint" in str(err.value)

    def test_claim_release_and_gc(self, client):
        payload = SPEC.key_payload()
        key = run_cache.cache_key(SPEC)
        assert client.claim([payload], owner="w1") == [True]
        assert client.claim([payload], owner="w2") == [False]
        assert client.release(key)
        assert client.claim([payload], owner="w2") == [True]

        # gc sweeps the pending row (no envelope behind it).
        report = client.store_gc(dry_run=True)
        assert report["dry_run"] is True
        assert client.claim([payload], owner="w3") == [False]


class TestServiceStoreBackend:
    def test_service_store_round_trip(self, client):
        store = ServiceStore(client.base_url)
        key = run_cache.cache_key(SPEC)
        assert store.get(key) is None
        result = _computed(SPEC)
        store.put(key, SPEC, result)
        assert store.contains(key)
        assert store.keys() == [key]
        assert store.get(key).ipcs == result.ipcs
        assert store.misses == 1 and store.stores == 1

    def test_layered_write_back(self, client, tmp_path):
        local = LocalDirStore(str(tmp_path / "local"))
        layered = LayeredStore(local, ServiceStore(client.base_url))
        key = run_cache.cache_key(SPEC)
        result = _computed(SPEC)

        # Publish remotely only, then read through the layered store:
        # the envelope is replicated into the local layer.
        client.put_result(key, SPEC.key_payload(),
                          run_cache.result_to_json(result))
        assert not local.contains(key)
        assert layered.get(key).ipcs == result.ipcs
        assert local.contains(key)

        # The write-back is byte-identical to the daemon's envelope.
        daemon_store = LocalDirStore(str(tmp_path / "daemon-cache"))
        with open(local.path_for(key), "rb") as a, \
                open(daemon_store.path_for(key), "rb") as b:
            assert a.read() == b.read()

    def test_sweep_through_http_store(self, client, tmp_path):
        """A worker process sweeping against the daemon's store.

        Runs out of process: the worker binds ``layered:local,http``
        as its ambient store — in this test process that binding is
        the daemon's, and a daemon writing through an HTTP remote
        pointing at itself would recurse.
        """
        import json as json_mod
        import os
        import subprocess
        import sys

        worker = (
            "import json, sys\n"
            "from repro.harness import runner\n"
            "from repro.harness.pool import execute_sweep\n"
            "from repro.harness.runner import Scale, workload_spec\n"
            "from repro.harness.store import ServiceClaimer\n"
            "local, url = sys.argv[1:3]\n"
            "runner.configure_disk_cache('layered:%s,%s' % (local, url))\n"
            "TINY = Scale(single_core_instructions=1500,\n"
            "             multi_core_instructions=1000,\n"
            "             warmup_cpu_cycles=1000, max_mem_cycles=300000)\n"
            "specs = [workload_spec('libquantum', mech, TINY)\n"
            "         for mech in ('none', 'chargecache')]\n"
            "store = runner.active_disk_cache()\n"
            "sweep = execute_sweep(\n"
            "    specs, claimer=ServiceClaimer(store, owner='w1'),\n"
            "    batch=False)\n"
            "print(json.dumps(sweep.counts()))\n"
        )
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(
                       filter(None, [os.path.abspath("src"),
                                     os.environ.get("PYTHONPATH")])))
        out = subprocess.run(
            [sys.executable, "-c", worker,
             str(tmp_path / "worker-local"), client.base_url],
            capture_output=True, text=True, timeout=300, env=env)
        assert out.returncode == 0, out.stderr
        counts = json_mod.loads(out.stdout.strip().splitlines()[-1])
        assert counts["computed"] == 2

        # Both results landed daemon-side (envelope + row).
        specs = [workload_spec("libquantum", mech, TINY)
                 for mech in ("none", "chargecache")]
        for spec in specs:
            assert client.store_contains(run_cache.cache_key(spec))
        table = client.query(status="any")
        assert table["count"] == 2

        # And this process's daemon-side store can decode them.
        frame_keys = client.store_keys()
        assert len(frame_keys) == 2


class TestClientRetry:
    def _flaky(self, client, fail_statuses, monkeypatch):
        calls = []
        real = ServiceClient._request_once

        def flaky(self, method, path, body=None, timeout_s=None):
            calls.append(path)
            if len(calls) <= len(fail_statuses):
                status = fail_statuses[len(calls) - 1]
                raise ServiceError(status, f"injected {status}")
            return real(self, method, path, body, timeout_s)

        monkeypatch.setattr(ServiceClient, "_request_once", flaky)
        return calls

    def test_transient_5xx_is_retried(self, client, monkeypatch):
        client.backoff_s = 0.01
        calls = self._flaky(client, [503, 500], monkeypatch)
        assert client.health()["ok"] is True
        assert len(calls) == 3

    def test_connection_error_is_retried(self, client, monkeypatch):
        client.backoff_s = 0.01
        calls = self._flaky(client, [0], monkeypatch)
        assert client.health()["ok"] is True
        assert len(calls) == 2

    def test_4xx_is_not_retried(self, client, monkeypatch):
        calls = self._flaky(client, [404, 404, 404], monkeypatch)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 404
        assert len(calls) == 1

    def test_504_is_not_retried(self, client, monkeypatch):
        calls = self._flaky(client, [504], monkeypatch)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 504
        assert len(calls) == 1

    def test_exhausted_retries_surface_last_error(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:1", timeout_s=0.2,
                               retries=2, backoff_s=0.01)
        attempts = []
        real = ServiceClient._request_once

        def counting(self, method, path, body=None, timeout_s=None):
            attempts.append(path)
            return real(self, method, path, body, timeout_s)

        monkeypatch.setattr(ServiceClient, "_request_once", counting)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 0
        assert "cannot reach" in str(err.value)
        assert len(attempts) == 3
