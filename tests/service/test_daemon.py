"""Tests for the run-queue daemon (in-process RunService)."""

import pytest

from repro.harness import runner
from repro.harness.cache import cache_key
from repro.harness.runner import Scale, workload_spec
from repro.service.daemon import RunService
from repro.service.database import ResultsDatabase

TINY = Scale(single_core_instructions=1500, multi_core_instructions=1000,
             warmup_cpu_cycles=1000, max_mem_cycles=300_000)

SPECS = [workload_spec("libquantum", mech, TINY)
         for mech in ("none", "chargecache")]


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path):
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "cache"))
    yield
    runner.clear_memo()
    runner.configure_disk_cache(prev[1], enabled=prev[0])


@pytest.fixture
def service(tmp_path):
    with RunService(str(tmp_path / "results.sqlite")) as svc:
        yield svc


class TestSubmitAndRun:
    def test_job_runs_and_records_to_both_stores(self, service):
        snapshot = service.submit(SPECS)
        assert snapshot["state"] == "queued"
        assert snapshot["counts"] == {"already_done": 0, "inflight": 0,
                                      "scheduled": 2}
        final = service.wait(snapshot["job"], timeout_s=300)
        assert final["state"] == "done"
        assert final["counts"]["computed"] == 2
        # Both stores hold both points: the DB rows...
        rows = service.query()
        assert len(rows) == 2
        assert {r["owner"] for r in rows} == {snapshot["job"]}
        # ...and each row points at a readable envelope.
        disk = runner.active_disk_cache()
        for spec in SPECS:
            key = cache_key(spec)
            assert service.db.has_result(key)
            assert service.db.get(key)["envelope_path"] == \
                disk.path_for(key)
            assert disk.get(key) is not None

    def test_resubmit_is_served_without_simulating(self, service):
        first = service.wait(service.submit(SPECS)["job"],
                             timeout_s=300)
        assert first["counts"]["computed"] == 2
        runner.clear_memo()  # force the disk/db layers to answer
        second = service.wait(service.submit(SPECS)["job"],
                              timeout_s=300)
        assert second["counts"]["already_done"] == 2
        assert second["counts"]["scheduled"] == 0
        assert second["counts"]["computed"] == 0
        assert second["counts"]["served"] == 2

    def test_duplicate_specs_within_a_job_collapse(self, service):
        snapshot = service.submit([SPECS[0], SPECS[0], SPECS[1]])
        assert snapshot["points"] == 2
        final = service.wait(snapshot["job"], timeout_s=300)
        assert final["counts"]["computed"] == 2

    def test_empty_submission_rejected(self, service):
        with pytest.raises(ValueError):
            service.submit([])


class TestInflightDedupe:
    def test_queued_keys_are_not_rescheduled(self, tmp_path):
        # Submit twice before the worker starts: the second job must
        # see every key as in-flight, and FIFO execution then serves
        # it entirely from the first job's results.
        service = RunService(str(tmp_path / "results.sqlite"))
        a = service.submit(SPECS)
        b = service.submit(SPECS)
        assert a["counts"]["scheduled"] == 2
        assert b["counts"]["inflight"] == 2
        assert b["counts"]["scheduled"] == 0
        with service:
            final_a = service.wait(a["job"], timeout_s=300)
            final_b = service.wait(b["job"], timeout_s=300)
        assert final_a["counts"]["computed"] == 2
        assert final_b["counts"]["computed"] == 0
        assert final_b["counts"]["served"] == 2


class TestFailureIsolation:
    def test_failed_job_reports_and_daemon_survives(self, service):
        bad = workload_spec("no-such-workload", "none", TINY)
        failed = service.wait(service.submit([bad])["job"],
                              timeout_s=300)
        assert failed["state"] == "failed"
        assert "no-such-workload" in failed["error"]
        # The failed key is out of the in-flight set and nothing
        # landed in the database...
        assert service.health()["inflight_keys"] == 0
        assert len(service.db) == 0
        # ...and the worker keeps taking jobs.
        ok = service.wait(service.submit([SPECS[0]])["job"],
                          timeout_s=300)
        assert ok["state"] == "done"

    def test_wait_on_unknown_job_raises(self, service):
        with pytest.raises(KeyError):
            service.wait("job-999999")
        assert service.status("job-999999") is None


class TestHealth:
    def test_health_reflects_store_and_queue(self, service):
        before = service.health()
        assert before["ok"] and before["rows"] == 0
        service.wait(service.submit(SPECS)["job"], timeout_s=300)
        after = service.health()
        assert after["rows"] == after["done"] == 2
        assert after["pending"] == 0
        assert after["jobs"] == 1
        assert after["inflight_keys"] == 0
        assert len(service.jobs()) == 1
