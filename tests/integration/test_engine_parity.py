"""Golden parity: the event engine must be bit-identical to dense.

The event engine (``SimulationConfig.engine="event"``) skips cycles it
can prove are no-ops.  These tests assert that on representative
single-core and eight-core workloads, under every latency mechanism,
every counter field of the :class:`RunResult` matches the dense
tick-per-cycle reference exactly - not approximately.  Any divergence
means a wake-up bound overestimated (an action cycle was skipped) and
is a correctness bug, not noise.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cpu.system import RunResult, System
from repro.dram.organization import Organization
from repro.workloads.synthetic import random_trace, stream_trace, zipf_trace

from tests.conftest import tiny_config

#: Every RunResult field that must match bit-for-bit.
PARITY_FIELDS = (
    "mem_cycles", "cpu_cycles", "instructions", "core_cycles", "ipcs",
    "llc_hit_rate", "llc_load_misses", "activations", "act_reduced",
    "reads", "writes", "refreshes", "row_hit_rate",
    "average_read_latency_cycles", "mechanism_lookups", "mechanism_hits",
    "active_bank_cycles", "rank_active_cycles", "work_instructions",
    "truncated",
)

MECHANISMS = ("none", "chargecache", "nuat", "lldram")


def _traces(cfg, pattern: str):
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    traces = []
    for core in range(cfg.processor.num_cores):
        seed = core + 1
        if pattern == "stream":
            traces.append(stream_trace(org, 1 << 20, 10.0, seed=seed,
                                       num_streams=2))
        elif pattern == "zipf":
            traces.append(zipf_trace(org, 1 << 21, 6.0, seed=seed,
                                     write_fraction=0.2))
        else:
            traces.append(random_trace(org, 1 << 21, 8.0, seed=seed,
                                       write_fraction=0.25))
    return traces


def _run(cfg, pattern: str, max_mem_cycles: int = 600_000) -> RunResult:
    system = System(cfg, _traces(cfg, pattern))
    return system.run(max_mem_cycles=max_mem_cycles)


def assert_parity(cfg, pattern: str, max_mem_cycles: int = 600_000):
    dense = _run(cfg.with_engine("dense"), pattern, max_mem_cycles)
    event = _run(cfg.with_engine("event"), pattern, max_mem_cycles)
    for field in PARITY_FIELDS:
        assert getattr(event, field) == getattr(dense, field), (
            f"engine divergence on {field!r}: "
            f"event={getattr(event, field)!r} dense={getattr(dense, field)!r}")


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_single_core_parity(mechanism):
    cfg = tiny_config(mechanism=mechanism, instruction_limit=3000)
    assert_parity(cfg, "random")


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_eight_core_parity(mechanism):
    cfg = tiny_config(mechanism=mechanism, num_cores=8, channels=2,
                      row_policy="closed", instruction_limit=1200,
                      warmup=2000)
    assert_parity(cfg, "zipf")


def test_streaming_parity_with_writes_and_drains():
    cfg = tiny_config(mechanism="chargecache", instruction_limit=4000)
    assert_parity(cfg, "stream")


def test_truncated_run_parity():
    cfg = tiny_config(instruction_limit=10 ** 7)
    assert_parity(cfg, "random", max_mem_cycles=3_000)


def test_tiny_queue_retry_pressure_parity():
    """Tiny queues keep the LLC retry lists populated, exercising the
    dense-mirroring per-cycle stepping for parked requests (including
    the parked-read-forwards-from-new-store path)."""
    from repro.config import ControllerConfig

    cfg = tiny_config(instruction_limit=4000)
    cfg = replace(cfg, controller=ControllerConfig(read_queue_size=2,
                                                   write_queue_size=2))
    assert_parity(cfg, "random", max_mem_cycles=900_000)


def test_event_engine_is_default():
    cfg = tiny_config()
    assert cfg.engine == "event"


# ----------------------------------------------------------------------
# Scenario-matrix parity: the wake-up bounds must stay exact on every
# scale-out axis (multi-core, multi-rank, each non-DDR3 timing grade),
# not just the paper's base platforms.
# ----------------------------------------------------------------------

#: Sampled grid: >=2 cores, 2 ranks/channel, and every non-DDR3 preset.
SCENARIO_PARITY_GRID = (
    ("c2-r2", "chargecache"),       # 2 cores, 2 ranks on one channel
    ("c4-r1", "none"),              # 4 cores, 2 channels
    ("c1-r2", "nuat"),              # multi-rank refresh-age interplay
    ("ddr4-2400-c1", "chargecache"),
    ("lpddr3-1600-c1", "chargecache"),   # 2x refresh cadence
    ("gddr5-4000-c1", "chargecache"),    # fastest clock, deep timings
    ("ddr4-2400-c8", "none"),            # 8 cores on a non-DDR3 grade
)

def _scenario_parity_run(scenario_name, mechanism, engine):
    from repro.harness import scenarios
    from repro.harness.spec import Scale
    from repro.dram.organization import Organization

    scale = Scale(single_core_instructions=2500,
                  multi_core_instructions=900,
                  warmup_cpu_cycles=1000, max_mem_cycles=500_000)
    cfg = scenarios.scenario_config(scenario_name, mechanism, scale,
                                    engine=engine)
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    scen = scenarios.scenario(scenario_name)
    traces = scenarios.scenario_traces(scen, "w1", org)
    return System(cfg, traces).run(max_mem_cycles=scale.max_mem_cycles)


@pytest.mark.parametrize("scenario_name,mechanism", SCENARIO_PARITY_GRID)
def test_scenario_matrix_parity(scenario_name, mechanism):
    dense = _scenario_parity_run(scenario_name, mechanism, "dense")
    event = _scenario_parity_run(scenario_name, mechanism, "event")
    for field in PARITY_FIELDS:
        assert getattr(event, field) == getattr(dense, field), (
            f"engine divergence on {scenario_name}/{mechanism} "
            f"field {field!r}: event={getattr(event, field)!r} "
            f"dense={getattr(dense, field)!r}")
    # The run exercised DRAM (a vacuous parity proves nothing).
    assert dense.activations > 0


def test_run_cache_hit_is_bit_identical_per_engine(tmp_path):
    """A persistent-cache hit must be indistinguishable from a fresh
    run for *both* engines, so the cache can never mask (or fake) an
    engine divergence: if event and dense ever disagreed, their cached
    results would disagree identically."""
    from repro.harness import runner
    from repro.harness.spec import Scale

    scale = Scale(single_core_instructions=2500,
                  multi_core_instructions=1200,
                  warmup_cpu_cycles=1000, max_mem_cycles=400_000)
    prev = (runner._disk_enabled, runner._disk_dir)
    runner.clear_memo()
    runner.configure_disk_cache(str(tmp_path / "run-cache"))
    try:
        by_engine = {}
        for engine in ("dense", "event"):
            spec = runner.workload_spec("hmmer", "chargecache", scale,
                                        enable_rltl=True, engine=engine)
            fresh, source = runner.run_spec_ex(spec)
            assert source == "computed"
            runner.clear_memo()  # force the disk layer on the next call
            cached, source = runner.run_spec_ex(spec)
            assert source == "disk"
            for field in PARITY_FIELDS:
                assert getattr(cached, field) == getattr(fresh, field), (
                    f"cache round-trip changed {field!r} on {engine}")
            assert cached.config == fresh.config
            for interval in fresh.rltl.intervals_ms:
                assert cached.rltl.rltl(interval) == \
                    fresh.rltl.rltl(interval)
            by_engine[engine] = cached
        # And the cached artifacts themselves still satisfy parity.
        for field in PARITY_FIELDS:
            assert getattr(by_engine["event"], field) == \
                getattr(by_engine["dense"], field), (
                f"cached engine divergence on {field!r}")
    finally:
        runner.clear_memo()
        runner.configure_disk_cache(prev[1], enabled=prev[0])
