"""Integration: the paper's qualitative performance orderings.

* ChargeCache never degrades performance (Section 1: "As ChargeCache
  can only reduce the latency of certain accesses, it does not degrade
  performance").
* LL-DRAM is an upper bound on ChargeCache (it is ChargeCache with a
  100% hit rate).
* ChargeCache outperforms NUAT on high-RLTL workloads (Section 6.1).
* ChargeCache + NUAT is at least as good as NUAT alone.
"""

import pytest

from repro.harness.runner import Scale, clear_caches, run_workload

SCALE = Scale(single_core_instructions=12_000,
              multi_core_instructions=4000,
              warmup_cpu_cycles=4000, max_mem_cycles=2_000_000)

HIGH_RLTL = "libquantum"   # streaming with bank conflicts
LOW_RLTL = "mcf"           # large random footprint


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    clear_caches()
    yield


def ipc(workload, mechanism):
    return run_workload(workload, mechanism, SCALE).total_ipc


class TestNoDegradation:
    @pytest.mark.parametrize("workload", [HIGH_RLTL, LOW_RLTL, "hmmer"])
    def test_chargecache_never_hurts(self, workload):
        assert ipc(workload, "chargecache") >= \
            ipc(workload, "none") * 0.995


class TestUpperBound:
    @pytest.mark.parametrize("workload", [HIGH_RLTL, LOW_RLTL])
    def test_lldram_bounds_chargecache(self, workload):
        assert ipc(workload, "lldram") >= \
            ipc(workload, "chargecache") * 0.995


class TestChargeCacheVsNUAT:
    def test_cc_beats_nuat_on_high_rltl(self):
        base = ipc(HIGH_RLTL, "none")
        cc_gain = ipc(HIGH_RLTL, "chargecache") / base - 1
        nuat_gain = ipc(HIGH_RLTL, "nuat") / base - 1
        assert cc_gain > nuat_gain

    def test_combined_at_least_nuat(self):
        both = ipc(HIGH_RLTL, "chargecache+nuat")
        nuat = ipc(HIGH_RLTL, "nuat")
        assert both >= nuat * 0.995


class TestHitRates:
    def test_high_rltl_has_high_hit_rate(self):
        # Paper Figure 9: single-core 128-entry hit rate averages 38%;
        # a high-RLTL streaming workload should sit near or above that,
        # and far above the random-footprint one.
        high = run_workload(HIGH_RLTL, "chargecache", SCALE)
        low = run_workload(LOW_RLTL, "chargecache", SCALE)
        assert high.mechanism_hit_rate > low.mechanism_hit_rate
        assert high.mechanism_hit_rate > 0.25
        assert low.mechanism_hit_rate < 0.25

    def test_mcf_gap_to_lldram(self):
        """The paper singles out mcf: CC hit rate too low to approach
        LL-DRAM (Section 6.1)."""
        base = ipc(LOW_RLTL, "none")
        cc_gain = ipc(LOW_RLTL, "chargecache") / base - 1
        ll_gain = ipc(LOW_RLTL, "lldram") / base - 1
        assert ll_gain > 2 * max(cc_gain, 0.001)


class TestEnergyOrdering:
    def test_chargecache_saves_dram_energy(self):
        from repro.energy.drampower import energy_for_run
        base = run_workload(HIGH_RLTL, "none", SCALE)
        cc = run_workload(HIGH_RLTL, "chargecache", SCALE)
        # Timing/IDD resolve from each run's config (DDR3 here).
        e_base = energy_for_run(base).total_pj
        e_cc = energy_for_run(cc).total_pj
        assert e_cc <= e_base * 1.001
