"""Cross-configuration conformance suite for the scenario matrix.

Every axis the scaling/standards experiments sweep — core count,
ranks per channel, timing grade — is exercised end-to-end here:
the scenario's config must reach the engine (timing grade included),
the emitted command stream must satisfy the *scenario's own* standard
constraints (re-verified by the independent checker), and the
controller's event-engine wake-up bid must stay exact on multi-rank
channels.

``TestAxisConformance`` holds exactly one scenario per axis; CI runs
this subset (``-k TestAxisConformance``) on every push so matrix
shrinkage is visible in the reported test counts.

Multi-rank wake-bid audit (ISSUE 3 satellite): ``next_event_cycle``
was audited for ranks_per_channel > 1 — the refresh loop, the
scheduler bound and the pending-PRE scan all iterate every rank, and
dense/event parity holds on all sampled multi-rank platforms (see
test_engine_parity.SCENARIO_PARITY_GRID), so no fix was needed.
``test_multi_rank_wake_bid_is_exact`` pins the audit down directly:
it dense-steps a two-rank controller and asserts the bid is never
later than the next observable action.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import ControllerConfig
from repro.controller.controller import MemoryController
from repro.controller.request import Request, RequestType
from repro.controller.address_mapping import AddressMapper
from repro.core.timing_policy import DefaultTiming
from repro.cpu.system import System
from repro.dram.commands import Command
from repro.dram.organization import Organization
from repro.dram.timing import DDR3_1600
from repro.harness import runner, scenarios
from repro.harness.spec import Scale
from repro.workloads.synthetic import random_trace

from tests.conftest import tiny_config
from tests.helpers import check_command_log

TINY = Scale(single_core_instructions=2500, multi_core_instructions=700,
             warmup_cpu_cycles=1000, max_mem_cycles=500_000)

#: One scenario per previously-untested axis.  CI runs exactly this
#: subset; the rest of the module covers the axes more broadly.
CONFORMANCE_AXES = {
    "cores2": "c2-r1",
    "cores4": "c4-r1",
    "cores16": "c16-r1",
    "ranks2": "c1-r2",
    "ddr4": "ddr4-2400-c1",
    "lpddr3": "lpddr3-1600-c1",
    "gddr5": "gddr5-4000-c1",
}


def _run_scenario_logged(name: str, mechanism: str = "chargecache"):
    cfg = scenarios.scenario_config(name, mechanism, TINY)
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    scen = scenarios.scenario(name)
    traces = scenarios.scenario_traces(scen, "w1", org)
    system = System(cfg, traces, log_commands=True)
    result = system.run(max_mem_cycles=TINY.max_mem_cycles)
    return system, result


class TestAxisConformance:
    """One end-to-end run per axis (the CI subset)."""

    @pytest.mark.parametrize("axis", sorted(CONFORMANCE_AXES))
    def test_axis(self, axis):
        name = CONFORMANCE_AXES[axis]
        scen = scenarios.scenario(name)
        system, result = _run_scenario_logged(name)

        # The scenario's timing grade actually reached the engine: on
        # the pre-scenario code path System hard-wired DDR3-1600
        # regardless of configuration, so this guards the whole
        # standards axis.
        assert system.timing.name == scen.standard
        assert not result.truncated
        assert result.activations > 0
        assert result.mechanism_lookups > 0
        assert len(result.ipcs) == scen.num_cores
        assert all(ipc > 0 for ipc in result.ipcs)

        # Command stream legality under the scenario's own standard,
        # including its rescaled ChargeCache reductions.
        cc = result.config.chargecache
        timing = system.timing
        checked = 0
        for controller in system.controllers:
            log = controller.channel.command_log
            checked += check_command_log(
                log, timing,
                reduced_trcd=timing.tRCD - cc.trcd_reduction_cycles,
                reduced_tras=timing.tRAS - cc.tras_reduction_cycles)
            if scen.ranks_per_channel > 1:
                act_ranks = {c.rank for c in log
                             if c.command is Command.ACT}
                assert act_ranks == set(range(scen.ranks_per_channel))
        assert checked > 50  # the run genuinely exercised DRAM

        # Every channel saw traffic (the mapper interleaves channels
        # on low address bits, so a silent channel means mis-routing).
        for controller in system.controllers:
            assert controller.stats.activations > 0


class TestTimingGradeReachesEngine:
    def test_refresh_cadence_follows_the_standard(self):
        """LPDDR3 refreshes twice as often as DDR3 (tREFI 3125 vs
        6250): over an identical bus-cycle window the controller must
        issue ~2x the REFs.  Fails if the configured standard is
        silently replaced by DDR3 timing."""
        counts = {}
        for standard in ("DDR3-1600", "LPDDR3-1600"):
            cfg = tiny_config(standard=standard,
                              instruction_limit=10 ** 7, warmup=0)
            org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
            system = System(cfg, [random_trace(org, 1 << 22, 30.0, 1)])
            result = system.run(max_mem_cycles=40_000)
            assert result.truncated  # fixed window, not run length
            counts[standard] = result.refreshes
        assert counts["DDR3-1600"] >= 3
        assert counts["LPDDR3-1600"] >= 2 * counts["DDR3-1600"] - 2

    def test_read_latency_tracks_the_grade(self):
        """GDDR5's CL is 24 cycles vs DDR3's 11; identical traffic
        must report a visibly higher read latency in bus cycles."""
        lat = {}
        for name in ("c1-r1", "gddr5-4000-c1"):
            _, result = _run_scenario_logged(name, mechanism="none")
            lat[name] = result.average_read_latency_cycles
        assert lat["gddr5-4000-c1"] > lat["c1-r1"]


class TestScenarioCacheRoundTrip:
    def test_scenario_result_survives_the_disk_layer(self, tmp_path):
        """A scenario run recalled from the persistent cache must be
        bit-identical to the fresh computation (the codec round-trips
        the standard-bearing config)."""
        prev = (runner._disk_enabled, runner._disk_dir)
        runner.clear_memo()
        runner.configure_disk_cache(str(tmp_path / "run-cache"))
        try:
            spec = runner.scenario_spec("c2-r2", "w1", "chargecache",
                                        TINY)
            fresh, source = runner.run_spec_ex(spec)
            assert source == "computed"
            runner.clear_memo()
            cached, source = runner.run_spec_ex(spec)
            assert source == "disk"
            assert cached.config == fresh.config
            assert cached.config.dram.standard == "DDR3-1600"
            from tests.integration.test_engine_parity import PARITY_FIELDS
            for field in PARITY_FIELDS:
                assert getattr(cached, field) == getattr(fresh, field)
        finally:
            runner.clear_memo()
            runner.configure_disk_cache(prev[1], enabled=prev[0])


# ----------------------------------------------------------------------
# Multi-rank wake-bid audit
# ----------------------------------------------------------------------

def _random_request(rng, org) -> Request:
    kind = RequestType.READ if rng.random() < 0.7 else RequestType.WRITE
    return Request(int(rng.integers(0, org.total_lines)), kind)


def _drive_and_audit_bids(num_ranks: int, timing, seed: int,
                          row_policy: str, cycles: int) -> int:
    """Dense-step one controller; assert its wake-up bid never lands
    after an observable action.

    The event-engine contract: a bid computed at cycle ``c`` is a
    lower bound on the next cycle where :meth:`tick` does anything,
    valid until the controller's state changes (every change happens
    at a visited cycle, where the engine recomputes).  Here every
    cycle is visited, state changes are exactly (command issue, read
    completion pop, forward, enqueue), and the bid from the last
    state-change cycle must therefore never exceed the next action
    cycle.  Returns the number of actions audited.
    """
    org = Organization(channels=1, ranks=num_ranks, banks=4, rows=256,
                       columns=8)
    mapper = AddressMapper(org)
    controller = MemoryController(
        0, timing, num_ranks, org.banks, org.rows,
        ControllerConfig(row_policy=row_policy, read_queue_size=8,
                         write_queue_size=8),
        DefaultTiming(timing))
    rng = np.random.default_rng(seed)

    def observable_state():
        return (controller._issue_count, controller._forward_count,
                len(controller._read_events))

    bid = 1
    actions = 0
    for cycle in range(1, cycles):
        enqueued = False
        if rng.random() < 0.08:
            request = _random_request(rng, org)
            mapper.decode_into(request)
            if request.type is RequestType.READ:
                enqueued = controller.enqueue_read(request, cycle)
            else:
                enqueued = controller.enqueue_write(request, cycle)
        before = observable_state()
        controller.tick(cycle)
        acted = observable_state() != before
        if acted:
            actions += 1
            # An action at the cycle of an enqueue is enabled by the
            # enqueue itself; in the event engine that cycle is visited
            # anyway (the producing core/LLC woke it), so the stale bid
            # legitimately does not cover it.
            if not enqueued:
                assert cycle >= bid, (
                    f"wake bid {bid} overshot: action at cycle {cycle} "
                    f"(ranks={num_ranks}, seed={seed}, "
                    f"policy={row_policy})")
        if acted or enqueued or cycle >= bid:
            bid = controller.next_event_cycle(cycle)
            assert bid > cycle
    return actions


class TestMultiRankWakeBid:
    @pytest.mark.parametrize("seed", (1, 7, 2016))
    @pytest.mark.parametrize("row_policy", ("open", "closed"))
    def test_multi_rank_wake_bid_is_exact(self, seed, row_policy):
        actions = _drive_and_audit_bids(2, DDR3_1600, seed, row_policy,
                                        cycles=20_000)
        assert actions > 100

    def test_wake_bid_exact_under_refresh_pressure(self):
        """Short tREFI keeps both ranks' refreshes overlapping, the
        regime where a single-rank assumption in the bid would bite."""
        stress = replace(DDR3_1600, tREFI=300, tRFC=120)
        actions = _drive_and_audit_bids(2, stress, seed=3,
                                        row_policy="open", cycles=15_000)
        assert actions > 100
