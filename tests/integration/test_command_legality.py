"""Integration: every command stream the simulator emits must satisfy
the full DDR3 constraint set, re-checked by an independent verifier
(tests/helpers.py).
"""

import pytest

from repro.cpu.system import System
from repro.dram.organization import Organization
from repro.workloads.synthetic import random_trace, stream_trace, zipf_trace

from tests.conftest import tiny_config
from tests.helpers import check_command_log


def run_logged(mechanism, pattern, num_cores=1, row_policy="open",
               limit=4000, ranks=1, channels=1, seed_base=0):
    cfg = tiny_config(mechanism=mechanism, num_cores=num_cores,
                      channels=channels, ranks=ranks,
                      instruction_limit=limit, row_policy=row_policy)
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    traces = []
    for core in range(num_cores):
        seed = seed_base + core + 1
        if pattern == "stream":
            traces.append(stream_trace(org, 1 << 21, 8.0, seed,
                                       num_streams=2, write_fraction=0.3))
        elif pattern == "zipf":
            traces.append(zipf_trace(org, 1 << 22, 8.0, seed, alpha=1.3,
                                     write_fraction=0.2))
        else:
            traces.append(random_trace(org, 1 << 22, 8.0, seed,
                                       write_fraction=0.2))
    system = System(cfg, traces, log_commands=True)
    result = system.run(max_mem_cycles=600_000)
    return system, result


MECHANISMS = ("none", "chargecache", "nuat", "chargecache+nuat", "lldram")


@pytest.mark.parametrize("mechanism", MECHANISMS)
@pytest.mark.parametrize("pattern", ("stream", "random", "zipf"))
def test_single_core_command_stream_legal(mechanism, pattern):
    system, result = run_logged(mechanism, pattern)
    total = 0
    for controller in system.controllers:
        total += check_command_log(controller.channel.command_log,
                                   system.timing)
    assert total > 100  # the run actually exercised DRAM


@pytest.mark.parametrize("mechanism", ("none", "chargecache"))
def test_multi_core_closed_row_command_stream_legal(mechanism):
    system, result = run_logged(mechanism, "random", num_cores=2,
                                row_policy="closed", limit=2500)
    for controller in system.controllers:
        check_command_log(controller.channel.command_log, system.timing)


def test_refresh_commands_present_and_legal():
    cfg = tiny_config(instruction_limit=30_000)
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    system = System(cfg, [random_trace(org, 1 << 22, 30.0, 1)],
                    log_commands=True)
    result = system.run(max_mem_cycles=900_000)
    log = system.controllers[0].channel.command_log
    from repro.dram.commands import Command
    refs = [c for c in log if c.command is Command.REF]
    if result.mem_cycles > 2 * system.timing.tREFI:
        assert refs, "expected refreshes on a long run"
    check_command_log(log, system.timing)


class TestMultiRankLegality:
    """Per-rank tFAW/tRRD/tRFC and cross-rank interleaving on channels
    with ranks_per_channel > 1 (previously untested axis), driven by
    randomized synthetic workloads with fixed seeds."""

    @pytest.mark.parametrize("mechanism", ("none", "chargecache"))
    @pytest.mark.parametrize("seed_base", (0, 100, 2016))
    def test_two_rank_random_streams_legal(self, mechanism, seed_base):
        system, result = run_logged(mechanism, "random", num_cores=2,
                                    ranks=2, limit=3000,
                                    seed_base=seed_base)
        from repro.dram.commands import Command
        for controller in system.controllers:
            log = controller.channel.command_log
            check_command_log(log, system.timing)
            # Both ranks were genuinely exercised and interleaved.
            act_ranks = {c.rank for c in log if c.command is Command.ACT}
            assert act_ranks == {0, 1}, (
                f"expected ACTs on both ranks, saw {act_ranks}")

    @pytest.mark.parametrize("pattern", ("stream", "zipf"))
    def test_two_rank_two_channel_closed_row_legal(self, pattern):
        system, result = run_logged("chargecache", pattern, num_cores=4,
                                    ranks=2, channels=2,
                                    row_policy="closed", limit=2000)
        total = 0
        for controller in system.controllers:
            total += check_command_log(controller.channel.command_log,
                                       system.timing)
        assert total > 100

    def test_refreshes_cover_every_rank(self):
        """One REF stream per rank: the refresh scheduler must pace and
        the controller must issue refreshes for rank 1, not just rank
        0, on a multi-rank channel."""
        cfg = tiny_config(instruction_limit=30_000, ranks=2)
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        system = System(cfg, [random_trace(org, 1 << 22, 30.0, 1)],
                        log_commands=True)
        result = system.run(max_mem_cycles=900_000)
        from repro.dram.commands import Command
        log = system.controllers[0].channel.command_log
        check_command_log(log, system.timing)
        if result.mem_cycles > 2 * system.timing.tREFI:
            ref_ranks = {c.rank for c in log if c.command is Command.REF}
            assert ref_ranks == {0, 1}

    def test_checker_catches_cross_rank_gap_violation(self):
        """The extended checker itself must reject a column command
        that hops ranks without the tRTRS gap (meta-test: the new rule
        actually bites)."""
        from repro.dram.commands import Command, IssuedCommand
        from repro.dram.timing import DDR3_1600
        from tests.helpers import CommandLogViolation

        t = DDR3_1600
        log = [
            IssuedCommand(Command.ACT, 0, 0, 0, 0, 5),
            IssuedCommand(Command.ACT, t.tRRD, 0, 1, 0, 9),
            IssuedCommand(Command.RD, t.tRCD + t.tRRD, 0, 0, 0),
            # Same-rank spacing (tCCD) satisfied, but the rank hop
            # needs tCCD + tRTRS.
            IssuedCommand(Command.RD, t.tRCD + t.tRRD + t.tCCD,
                          0, 1, 0),
        ]
        with pytest.raises(CommandLogViolation, match="tRTRS"):
            check_command_log(log, t)


def test_reduced_acts_only_under_mechanisms():
    system, _ = run_logged("none", "stream")
    for controller in system.controllers:
        assert not any(c.reduced for c in controller.channel.command_log)
    system, _ = run_logged("lldram", "stream")
    from repro.dram.commands import Command
    acts = [c for c in system.controllers[0].channel.command_log
            if c.command is Command.ACT]
    assert acts and all(c.reduced for c in acts)
