"""Integration tests for system configuration variants: channel
counts, address mappings, queue pressure and probe combinations.
"""

from dataclasses import replace

import pytest

from repro.config import DRAMConfig
from repro.cpu.system import System
from repro.dram.organization import Organization
from repro.workloads.synthetic import random_trace, stream_trace

from tests.conftest import tiny_config
from tests.helpers import check_command_log


def build_system(cfg, pattern="random", seed=1, **system_kwargs):
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    traces = []
    for core in range(cfg.processor.num_cores):
        if pattern == "stream":
            traces.append(stream_trace(org, 1 << 21, 8.0, seed + core,
                                       num_streams=2, write_fraction=0.2))
        else:
            traces.append(random_trace(org, 1 << 22, 8.0, seed + core,
                                       write_fraction=0.2))
    return System(cfg, traces, **system_kwargs)


class TestMultiChannel:
    def test_two_channels_share_load(self):
        cfg = tiny_config(num_cores=2, channels=2, row_policy="closed",
                          instruction_limit=4000)
        system = build_system(cfg)
        result = system.run(max_mem_cycles=600_000)
        assert not result.truncated
        reads = [c.stats.reads for c in system.controllers]
        assert all(r > 0 for r in reads), "both channels used"
        # RoBaRaCoCh interleaves lines across channels: near balance.
        assert min(reads) > 0.3 * max(reads)

    def test_two_channel_command_streams_legal(self):
        cfg = tiny_config(num_cores=2, channels=2, row_policy="closed",
                          instruction_limit=3000)
        system = build_system(cfg, log_commands=True)
        system.run(max_mem_cycles=600_000)
        for controller in system.controllers:
            check_command_log(controller.channel.command_log,
                              system.timing)

    def test_chargecache_per_channel_tables(self):
        cfg = tiny_config(mechanism="chargecache", num_cores=2,
                          channels=2, row_policy="closed",
                          instruction_limit=3000)
        system = build_system(cfg, pattern="stream")
        result = system.run(max_mem_cycles=600_000)
        lookups = [c.mechanism.lookups for c in system.controllers]
        assert all(n > 0 for n in lookups)
        assert result.mechanism_lookups == sum(lookups)


class TestAddressMappings:
    @pytest.mark.parametrize("mapping", ["RoBaRaCoCh", "RoRaBaChCo",
                                         "ChRaBaRoCo"])
    def test_all_mappings_run_and_stay_legal(self, mapping):
        cfg = tiny_config(instruction_limit=2500)
        cfg = replace(cfg, dram=DRAMConfig(channels=1, rows_per_bank=4096,
                                           address_mapping=mapping))
        system = build_system(cfg, log_commands=True)
        result = system.run(max_mem_cycles=600_000)
        assert not result.truncated
        check_command_log(system.controllers[0].channel.command_log,
                          system.timing)

    def test_mapping_changes_row_locality(self):
        """Row-bits-high vs row-bits-low mappings shift the row hit
        rate for a streaming pattern.  (With one channel and one rank,
        RoBaRaCoCh and RoRaBaChCo collapse to the same layout, so the
        contrast case is ChRaBaRoCo, which walks rows before banks.)"""
        rates = {}
        for mapping in ("RoBaRaCoCh", "ChRaBaRoCo"):
            # 6000 instructions: at ~3000 the two mappings' hit counts
            # coincide exactly on this tiny footprint; the layouts only
            # separate once the streams wrap into new rows.
            cfg = tiny_config(instruction_limit=6000)
            cfg = replace(cfg, dram=DRAMConfig(
                channels=1, rows_per_bank=4096, address_mapping=mapping))
            system = build_system(cfg, pattern="stream")
            result = system.run(max_mem_cycles=600_000)
            rates[mapping] = result.row_hit_rate
        assert rates["RoBaRaCoCh"] != pytest.approx(
            rates["ChRaBaRoCo"], abs=1e-6)


class TestQueuePressure:
    def test_tiny_queues_still_drain(self):
        cfg = tiny_config(instruction_limit=2500)
        cfg = replace(cfg, controller=replace(cfg.controller,
                                              read_queue_size=4,
                                              write_queue_size=4))
        system = build_system(cfg)
        result = system.run(max_mem_cycles=900_000)
        assert not result.truncated
        assert result.reads > 0

    def test_heavy_write_stream_drains(self):
        cfg = tiny_config(instruction_limit=2500)
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        system = System(cfg, [stream_trace(org, 1 << 21, 4.0, seed=1,
                                           num_streams=2,
                                           write_fraction=0.9)])
        result = system.run(max_mem_cycles=900_000)
        assert not result.truncated
        assert result.writes > 0


class TestIdleFinishedMode:
    def test_fixed_work_mode_caps_instructions(self):
        cfg = tiny_config(num_cores=2, channels=1, row_policy="closed",
                          instruction_limit=2000)
        cfg = replace(cfg, idle_finished_cores=True)
        system = build_system(cfg)
        result = system.run(max_mem_cycles=900_000)
        # Nobody executes (much) past the limit; small overshoot is the
        # in-flight window at the finish instant.
        assert result.work_instructions <= 2 * 2000 + 2 * 128

    def test_loop_mode_exceeds_limit(self):
        cfg = tiny_config(num_cores=2, channels=1, row_policy="closed",
                          instruction_limit=2000)
        system = build_system(cfg)
        result = system.run(max_mem_cycles=900_000)
        assert result.work_instructions >= 2 * 2000
