"""Dense-stepping regression for the post-issue wake bid.

After a command issues, the event engine no longer bids a blanket
``cycle + 1``: :meth:`Controller._post_issue_bid` derives a cheap
lower bound from bank-state arrays alone (read-event heads, refresh
deadlines, mechanism wake, per-candidate-bank gates).  These tests pin
the two properties that bid must keep:

* **Soundness** — every counter of an event-engine run stays
  bit-identical to the dense tick-per-cycle reference, on workloads
  that alternate idle-heavy and memory-bound phases (exactly where a
  too-high bid would skip an action cycle and silently diverge).
* **Effectiveness** — the engine visits meaningfully fewer cycles
  than dense on mixed phases, and its visits-per-command stays under a
  budget; regressing the bid back to ``cycle + 1`` busts the budget.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest

from repro.cpu.system import System
from repro.cpu.trace import TraceRecord
from repro.dram.organization import Organization
from repro.workloads.synthetic import random_trace, zipf_trace

from tests.conftest import tiny_config
from tests.integration.test_engine_parity import PARITY_FIELDS


def _mixed_phase_trace(org, seed: int = 1):
    """Alternate idle-heavy stretches with memory-bound bursts.

    The phase boundary is where the post-issue bid matters most: a
    burst keeps the channel saturated (bid must not overshoot the next
    ready command), then a quiet phase makes the next event tens of
    cycles away (bid must not degenerate to cycle-stepping).
    """
    idle = list(itertools.islice(
        random_trace(org, 1 << 18, 300.0, seed=seed), 40))
    busy = list(itertools.islice(
        zipf_trace(org, 1 << 21, 2.0, seed=seed + 17,
                   write_fraction=0.3), 200))
    records = []
    for phase in range(6):
        records.extend(idle if phase % 2 == 0 else busy)
    return [TraceRecord(*rec) for rec in records]


@pytest.mark.parametrize("mechanism", ("none", "chargecache"))
def test_mixed_phase_parity(mechanism):
    cfg = tiny_config(mechanism, instruction_limit=20_000,
                      warmup=1_000)
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    results = {}
    for engine in ("dense", "event"):
        system = System(replace(cfg, engine=engine),
                        [iter(_mixed_phase_trace(org))])
        results[engine] = system.run(max_mem_cycles=600_000)
    for field in PARITY_FIELDS:
        assert getattr(results["event"], field) == \
            getattr(results["dense"], field), field


def test_mixed_phase_visit_budget():
    """The bid must keep skipping cycles on mixed idle/busy phases.

    ``System.visited_cycles`` counts engine loop iterations.  Dense
    visits every bus cycle by construction; the event engine with the
    bank-state bid lands well under both the dense count and a
    visits-per-command budget (measured ~3-4 with the bid, ~9 with the
    old blanket ``cycle + 1`` rebid on command-dense workloads).
    """
    cfg = tiny_config("chargecache", instruction_limit=20_000,
                      warmup=1_000)
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)

    dense_system = System(replace(cfg, engine="dense"),
                          [iter(_mixed_phase_trace(org))])
    dense = dense_system.run(max_mem_cycles=600_000)
    # Dense ticks every bus cycle (warmup included, so >= mem_cycles).
    assert dense_system.visited_cycles >= dense.mem_cycles

    event_system = System(replace(cfg, engine="event"),
                          [iter(_mixed_phase_trace(org))])
    event = event_system.run(max_mem_cycles=600_000)
    visited = event_system.visited_cycles

    assert event.mem_cycles == dense.mem_cycles
    assert visited < dense.mem_cycles / 2, \
        f"event engine visited {visited} of {dense.mem_cycles} cycles"
    commands = (event.reads + event.writes + event.activations
                + event.refreshes)
    assert commands > 0
    visits_per_command = visited / commands
    assert visits_per_command <= 6.0, (
        f"{visits_per_command:.2f} visits/command — post-issue bid "
        "regressed toward cycle stepping")
