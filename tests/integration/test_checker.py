"""Tests for the independent command-log checker itself.

The checker is load-bearing test infrastructure (the fuzzer and the
integration suite trust it), so each violation class is exercised with
a deliberately illegal hand-written stream.
"""

import pytest

from repro.dram.commands import Command, IssuedCommand
from repro.dram.timing import DDR3_1600

from tests.helpers import CommandLogViolation, check_command_log

T = DDR3_1600


def act(cycle, bank=0, row=0, reduced=False):
    return IssuedCommand(Command.ACT, cycle, 0, 0, bank, row,
                         reduced=reduced)


def pre(cycle, bank=0, row=0):
    return IssuedCommand(Command.PRE, cycle, 0, 0, bank, row)


def rd(cycle, bank=0):
    return IssuedCommand(Command.RD, cycle, 0, 0, bank)


def legal_open_read_close(start=0, bank=0, row=0):
    t_act = start
    t_rd = t_act + T.tRCD
    t_pre = max(t_act + T.tRAS, t_rd + T.read_to_pre)
    return [act(t_act, bank, row), rd(t_rd, bank), pre(t_pre, bank, row)]


class TestAcceptsLegalStreams:
    def test_basic_sequence(self):
        assert check_command_log(legal_open_read_close(), T) == 3

    def test_reduced_act_with_reduced_constraints(self):
        log = [act(0, reduced=True), rd(T.tRCD - 4),
               pre(T.tRAS - 8, row=0)]
        assert check_command_log(log, T) == 3

    def test_empty_log(self):
        assert check_command_log([], T) == 0


class TestCatchesViolations:
    def test_same_cycle_commands(self):
        log = [act(10, bank=0), act(10, bank=1)]
        with pytest.raises(CommandLogViolation, match="one bus cycle"):
            check_command_log(log, T)

    def test_out_of_order_log(self):
        log = [act(10), pre(5)]
        with pytest.raises(CommandLogViolation, match="cycle order"):
            check_command_log(log, T)

    def test_trcd_violation(self):
        log = [act(0), rd(T.tRCD - 1)]
        with pytest.raises(CommandLogViolation, match="tRCD"):
            check_command_log(log, T)

    def test_reduced_act_held_to_reduced_trcd(self):
        log = [act(0, reduced=True), rd(T.tRCD - 5)]
        with pytest.raises(CommandLogViolation, match="tRCD"):
            check_command_log(log, T)

    def test_tras_violation(self):
        log = [act(0), pre(T.tRAS - 1)]
        with pytest.raises(CommandLogViolation, match="tRAS"):
            check_command_log(log, T)

    def test_trp_violation(self):
        log = legal_open_read_close() + \
            [act(legal_open_read_close()[-1].cycle + T.tRP - 1)]
        with pytest.raises(CommandLogViolation, match="tRP"):
            check_command_log(log, T)

    def test_act_to_open_bank(self):
        log = [act(0, row=1), act(T.tRRD, row=2)]
        with pytest.raises(CommandLogViolation, match="open bank"):
            check_command_log(log, T)

    def test_pre_to_closed_bank(self):
        with pytest.raises(CommandLogViolation, match="closed bank"):
            check_command_log([pre(10)], T)

    def test_column_to_closed_bank(self):
        with pytest.raises(CommandLogViolation, match="closed bank"):
            check_command_log([rd(10)], T)

    def test_trrd_violation(self):
        log = [act(0, bank=0), act(T.tRRD - 1, bank=1)]
        with pytest.raises(CommandLogViolation, match="tRRD"):
            check_command_log(log, T)

    def test_tfaw_violation(self):
        cycles = [i * T.tRRD for i in range(4)]
        log = [act(c, bank=i) for i, c in enumerate(cycles)]
        log.append(act(T.tFAW - 1, bank=4))
        with pytest.raises(CommandLogViolation, match="tFAW"):
            check_command_log(log, T)

    def test_tccd_violation(self):
        log = [act(0, bank=0), act(T.tRRD, bank=1),
               rd(T.tRRD + T.tRCD, bank=1)]
        log.append(rd(T.tRRD + T.tRCD + T.tCCD - 1, bank=0))
        with pytest.raises(CommandLogViolation, match="tCCD"):
            check_command_log(log, T)

    def test_refresh_with_open_bank(self):
        log = [act(0), IssuedCommand(Command.REF, T.tRAS + 5, 0, 0)]
        with pytest.raises(CommandLogViolation, match="REF"):
            check_command_log(log, T)

    def test_trfc_violation(self):
        log = [IssuedCommand(Command.REF, 0, 0, 0),
               act(T.tRFC - 1)]
        with pytest.raises(CommandLogViolation, match="tRFC"):
            check_command_log(log, T)
