"""Tests for the mechanism registry and spec mini-language.

Canonical strings are cache-key material (DESIGN.md section 6), so the
round-trip and normalization behaviour here is golden: changing it
silently re-keys the persistent run cache.
"""

import pytest

from repro.config import (
    MECHANISMS,
    ChargeCacheConfig,
    SimulationConfig,
    single_core_config,
)
from repro.core import registry
from repro.core.chargecache import ChargeCache
from repro.core.nuat import NUAT
from repro.core.lldram import LowLatencyDRAM
from repro.core.aldram import ALDRAM
from repro.core.timing_policy import (
    CombinedMechanism,
    DefaultTiming,
    build_mechanism,
)
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DDR3_1600


@pytest.fixture
def refresh():
    return RefreshScheduler(DDR3_1600, 1, 64 * 1024)


@pytest.fixture
def ctx(refresh):
    return registry.MechanismContext(
        timing=DDR3_1600, num_cores=1, refresh_scheduler=refresh,
        config=None)


class TestParseNormalize:
    #: (input, canonical) golden pairs — canonical strings feed cache
    #: keys, so these are regression-pinned.
    GOLDEN = [
        ("none", "none"),
        ("chargecache", "chargecache"),
        (" chargecache ", "chargecache"),
        ("chargecache()", "chargecache"),
        ("chargecache(entries=128)", "chargecache"),       # default drops
        ("chargecache(duration_ms=1.0)", "chargecache"),   # default drops
        ("chargecache(entries=256)", "chargecache(entries=256)"),
        ("chargecache(duration_ms=0.5)",
         "chargecache(caching_duration_ms=0.5)"),          # alias resolves
        ("chargecache(entries=256, duration_ms=0.5)",
         "chargecache(caching_duration_ms=0.5,entries=256)"),
        ("chargecache+nuat", "chargecache+nuat"),
        ("nuat+chargecache", "chargecache+nuat"),          # order sorts
        ("chargecache+aldram", "chargecache+aldram"),
        ("aldram+chargecache", "chargecache+aldram"),
        ("aldram(temperature=55)+nuat+chargecache(entries=64)",
         "chargecache(entries=64)+nuat+aldram(temperature_c=55.0)"),
        ("chargecache(unbounded=true)", "chargecache(unbounded=true)"),
        ("chargecache(sharing=shared)", "chargecache(sharing=shared)"),
    ]

    @pytest.mark.parametrize("text,canonical", GOLDEN)
    def test_canonical_golden(self, text, canonical):
        assert registry.canonical_spec(text) == canonical

    @pytest.mark.parametrize("text,canonical", GOLDEN)
    def test_canonical_round_trips(self, text, canonical):
        """parse(canonical(s)) == parse(s), and canonical is a fixed
        point — the property that makes it safe cache-key material."""
        spec = registry.parse_mechanism_spec(text)
        again = registry.parse_mechanism_spec(spec.canonical())
        assert again == spec
        assert again.canonical() == canonical

    def test_caller_built_mechanismspec_is_renormalized(self):
        """A MechanismSpec assembled from the public dataclasses (not
        the grammar) must not bypass normalization: terms re-sort,
        default-valued params drop, values re-coerce, and the
        composition checks still apply — the object path may never
        leak non-canonical strings into cache keys."""
        spec = registry.MechanismSpec((
            registry.MechanismTerm("nuat"),
            registry.MechanismTerm("chargecache", (("entries", 128),))))
        assert registry.canonical_spec(spec) == "chargecache+nuat"
        assert registry.canonical_spec(registry.MechanismSpec((
            registry.MechanismTerm("chargecache", (("entries", 256),)),
        ))) == "chargecache(entries=256)"
        with pytest.raises(ValueError, match="twice"):
            registry.canonical_spec(registry.MechanismSpec((
                registry.MechanismTerm("nuat"),
                registry.MechanismTerm("nuat"))))
        with pytest.raises(ValueError, match="'none'"):
            registry.canonical_spec(registry.MechanismSpec((
                registry.MechanismTerm("none"),
                registry.MechanismTerm("nuat"))))
        with pytest.raises(ValueError):
            registry.canonical_spec(registry.MechanismSpec((
                registry.MechanismTerm("chargecache",
                                       (("entries", 0),)),)))

    def test_permutations_one_canonical(self):
        import itertools
        names = ("chargecache(entries=64)", "nuat", "aldram")
        forms = {registry.canonical_spec("+".join(p))
                 for p in itertools.permutations(names)}
        assert len(forms) == 1

    @pytest.mark.parametrize("bad", [
        "", "   ", "bogus", "chargecache(", "chargecache)",
        "chargecache(entries)", "chargecache(entries=)",
        "chargecache(entries=abc)", "chargecache(entries=1.5)",
        "chargecache(unbounded=maybe)", "chargecache(frobnicate=1)",
        "chargecache(entries=0)", "chargecache(entries=101)",  # assoc 2
        "none(x=1)", "none+chargecache", "chargecache+chargecache",
        "nuat(bin_edges_ms=3)",  # tuple params have no inline syntax
        "lldram(entries=64)",    # dead knob: lldram hits on every ACT
        "lldram(sharing=shared)",
        "+chargecache", "chargecache+",
    ])
    def test_invalid_specs_fail_eagerly(self, bad):
        with pytest.raises(ValueError):
            registry.parse_mechanism_spec(bad)

    def test_default_valued_param_yields_to_config_block(self, refresh):
        """Precedence contract (DESIGN.md section 6): an inline value
        equal to the registered default is an identity — it shares a
        cache key with the plain spelling, so it must also mean the
        same behaviour, i.e. a non-default config block wins over it.
        Non-default inline values beat the block."""
        import dataclasses
        cfg = single_core_config("chargecache")
        cfg = dataclasses.replace(
            cfg, chargecache=dataclasses.replace(cfg.chargecache,
                                                 entries=512))
        ctx = registry.MechanismContext(
            timing=DDR3_1600, num_cores=1, refresh_scheduler=refresh,
            config=cfg)
        assert registry.build("chargecache(entries=128)", ctx) \
            .config.entries == 512   # identity: block wins
        assert registry.build("chargecache(entries=64)", ctx) \
            .config.entries == 64    # deviation: inline wins

    def test_cross_field_validation_is_against_registered_defaults(self):
        """Documented limitation (DESIGN.md section 6): eager
        validation merges inline values into the registered defaults,
        so a spec only valid against a custom config block must spell
        the coupled parameters inline together."""
        with pytest.raises(ValueError, match="associativity"):
            # 3 is fine with associativity=3, but the registered
            # default is 2 and the parse has no config in hand.
            registry.parse_mechanism_spec("chargecache(entries=3)")
        spec = registry.parse_mechanism_spec(
            "chargecache(entries=3,associativity=3)")
        assert spec.canonical() == \
            "chargecache(associativity=3,entries=3)"

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            registry.parse_mechanism_spec(
                "chargecache(entries=64,entries=32)")
        with pytest.raises(ValueError, match="twice"):
            # Alias and canonical name collide.
            registry.parse_mechanism_spec(
                "chargecache(duration_ms=2,caching_duration_ms=4)")


class TestRegistryCompleteness:
    def test_every_registered_name_constructible_with_defaults(self):
        ctx = registry.default_context()
        for name in registry.mechanism_names():
            mech = registry.build(name, ctx)
            assert mech.name == name
            # The mechanism interface is usable out of the box.
            mech.on_activate(0, 0, 0, 0, 0)
            assert mech.lookups == 1

    def test_mechanisms_era_names_resolve_through_registry(self):
        """CI guard twin: every pre-registry plain name must parse,
        normalize to itself, and build — shim coverage cannot rot."""
        ctx = registry.default_context()
        for name in MECHANISMS:
            assert registry.canonical_spec(name) == name
            mech = registry.build(name, ctx)
            assert mech.name == name

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="registered"):
            registry.registered("warpdrive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @registry.register_mechanism("chargecache")
            def _dup(ctx, overrides):  # pragma: no cover
                raise AssertionError

    def test_bad_registration_name_rejected(self):
        with pytest.raises(ValueError, match="lowercase"):
            registry.register_mechanism("Bad Name")

    def test_alias_must_target_real_field(self):
        with pytest.raises(ValueError, match="unknown field"):
            registry.register_mechanism(
                "alias-check", params=ChargeCacheConfig,
                aliases={"nope": "missing_field"})


class TestBuild:
    def test_plain_types(self, ctx):
        assert isinstance(registry.build("none", ctx), DefaultTiming)
        assert isinstance(registry.build("chargecache", ctx), ChargeCache)
        assert isinstance(registry.build("nuat", ctx), NUAT)
        assert isinstance(registry.build("lldram", ctx), LowLatencyDRAM)
        assert isinstance(registry.build("aldram", ctx), ALDRAM)

    def test_inline_params_reach_the_mechanism(self, ctx):
        mech = registry.build("chargecache(entries=256,sharing=shared)",
                              ctx)
        assert mech.config.entries == 256
        assert mech.config.sharing == "shared"
        assert len(mech.tables) == 1  # shared mode: one table

    def test_config_blocks_supply_defaults(self, refresh):
        cfg = single_core_config(
            "chargecache",
            chargecache=ChargeCacheConfig(entries=512, associativity=2))
        ctx = registry.MechanismContext(
            timing=DDR3_1600, num_cores=1, refresh_scheduler=refresh,
            config=cfg)
        assert registry.build("chargecache", ctx).config.entries == 512
        # Inline overrides beat the config block.
        assert registry.build("chargecache(entries=64)",
                              ctx).config.entries == 64

    def test_inline_duration_rederives_reductions(self, ctx):
        """An inline duration re-derives the Table 2 timing reductions
        exactly like the harness's cc_duration_ms path does."""
        from repro.circuit.latency_tables import reductions_for_duration_ms
        mech = registry.build("chargecache(duration_ms=16)", ctx)
        assert (mech.config.trcd_reduction_cycles,
                mech.config.tras_reduction_cycles) == \
            reductions_for_duration_ms(16.0)

    def test_aldram_temperature_inline(self, ctx):
        cool = registry.build("aldram(temperature=55)", ctx)
        assert cool.temperature_c == 55.0
        assert cool.on_activate(0, 0, 0, 0, 0) is not None  # derated

    def test_nuat_requires_refresh_scheduler(self):
        ctx = registry.MechanismContext(timing=DDR3_1600)
        with pytest.raises(ValueError, match="refresh scheduler"):
            registry.build("nuat", ctx)

    def test_build_mechanism_shim_matches_registry(self, refresh):
        """The deprecated factory is a thin shim: same types, same
        composition order, same parameter blocks."""
        for name in MECHANISMS:
            cfg = SimulationConfig(mechanism=name)
            shim = build_mechanism(cfg, DDR3_1600, 1, refresh)
            direct = registry.build(name, registry.MechanismContext(
                timing=DDR3_1600, num_cores=1,
                refresh_scheduler=refresh, config=cfg))
            assert type(shim) is type(direct)
            assert shim.name == direct.name == name


def _stimulus(mech, rows=64, cycles_per_step=50):
    """Drive a mechanism through a deterministic ACT/PRE pattern and
    return every observable (offer sequence + stats)."""
    offers = []
    cycle = 0
    for step in range(400):
        row = (step * 7) % rows
        bank = step % 8
        cycle += cycles_per_step
        if step % 3 == 0:
            mech.on_precharge(0, bank, row, 0, cycle)
        else:
            offers.append(mech.on_activate(0, bank, row, 0, cycle))
        mech.maintain(cycle)
    return offers, mech.lookups, mech.hits


class TestNWayComposition:
    def test_two_way_parity_with_legacy_pairs(self, refresh):
        """Registry-built chargecache+nuat behaves bit-for-bit like a
        hand-assembled two-way CombinedMechanism."""
        cfg = SimulationConfig(mechanism="chargecache+nuat")
        legacy = CombinedMechanism(
            DDR3_1600,
            ChargeCache(DDR3_1600, cfg.chargecache, 1),
            NUAT(DDR3_1600, cfg.nuat, refresh))
        built = registry.build("nuat+chargecache", registry.MechanismContext(
            timing=DDR3_1600, num_cores=1, refresh_scheduler=refresh,
            config=cfg))
        assert _stimulus(legacy) == _stimulus(built)

    def test_three_way_equals_pairwise_min(self, refresh):
        """N-way composition == folding the same parts pairwise: same
        offers on every ACT (min is associative)."""
        def parts():
            cfg = SimulationConfig()
            return (ChargeCache(DDR3_1600, cfg.chargecache, 1),
                    NUAT(DDR3_1600, cfg.nuat, refresh),
                    LowLatencyDRAM(DDR3_1600, cfg.chargecache))

        flat = CombinedMechanism(DDR3_1600, *parts())
        a, b, c = parts()
        nested = CombinedMechanism(
            DDR3_1600, CombinedMechanism(DDR3_1600, a, b), c)
        flat_offers, flat_lookups, flat_hits = _stimulus(flat)
        nested_offers, _, _ = _stimulus(nested)
        assert flat_offers == nested_offers
        assert flat_lookups == 266 and flat_hits == 266  # lldram: all hit

    def test_three_way_next_wake_and_reset(self, refresh):
        cfg = SimulationConfig()
        mech = registry.build(
            "chargecache+nuat+aldram",
            registry.MechanismContext(timing=DDR3_1600, num_cores=1,
                                      refresh_scheduler=refresh,
                                      config=cfg))
        assert isinstance(mech, CombinedMechanism)
        assert len(mech.mechanisms) == 3
        mech.on_precharge(0, 0, 5, 0, 10)
        wake = mech.next_wake(10)
        assert wake == min(m.next_wake(10) for m in mech.mechanisms)
        mech.on_activate(0, 0, 5, 0, 20)
        mech.reset_stats()
        assert mech.lookups == 0
        assert all(m.lookups == 0 for m in mech.mechanisms)

    def test_combined_requires_two_parts(self):
        with pytest.raises(ValueError):
            CombinedMechanism(DDR3_1600, DefaultTiming(DDR3_1600))


class TestExtractRunParams:
    def test_folds_inline_chargecache_shorthand(self):
        assert registry.extract_run_params(
            "nuat+chargecache(entries=256,unbounded=true)") == \
            ("chargecache+nuat", 256, None, True)

    def test_defaults_normalize_to_none(self):
        assert registry.extract_run_params(
            "chargecache(entries=128,duration_ms=1.0)") == \
            ("chargecache", None, None, False)
        assert registry.extract_run_params(
            "chargecache", cc_entries=128, cc_duration_ms=1.0) == \
            ("chargecache", None, None, False)

    def test_kwargs_and_inline_merge(self):
        assert registry.extract_run_params(
            "chargecache(entries=256)", cc_duration_ms=0.5) == \
            ("chargecache", 256, 0.5, False)
        # Agreeing duplicates are fine.
        assert registry.extract_run_params(
            "chargecache(entries=256)", cc_entries=256)[1] == 256

    def test_conflicting_values_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            registry.extract_run_params("chargecache(entries=256)",
                                        cc_entries=64)

    def test_default_valued_inline_yields_to_shorthand(self):
        """An inline value at the registered default is an identity
        (dropped at parse time), so it is NOT a conflict with a
        shorthand value — the shorthand wins, matching the
        config-block precedence at build time (DESIGN.md section 6)."""
        assert registry.extract_run_params(
            "chargecache(entries=128)", cc_entries=256) == \
            ("chargecache", 256, None, False)

    def test_non_shorthand_params_keep_the_whole_term_inline(self):
        """A term with any non-shorthand parameter is not split:
        cross-field constraints (entries % associativity) couple the
        values, so the term stays inline as one validated unit and
        the shorthand fields come back empty."""
        assert registry.extract_run_params(
            "chargecache(entries=256,sharing=shared)") == \
            ("chargecache(entries=256,sharing=shared)", None, None, False)
        # Shorthand kwargs merge INTO the inline term in that case.
        assert registry.extract_run_params(
            "chargecache(sharing=shared)", cc_entries=256) == \
            ("chargecache(entries=256,sharing=shared)", None, None, False)
        # The DESIGN.md workaround spec flows through the harness fold.
        assert registry.extract_run_params(
            "chargecache(entries=3,associativity=3)") == \
            ("chargecache(associativity=3,entries=3)", None, None, False)

    def test_without_chargecache_term_passthrough(self):
        assert registry.extract_run_params("lldram", cc_duration_ms=16.0) \
            == ("lldram", None, 16.0, False)

    def test_shorthand_values_coerced_to_grammar_types(self):
        """cc_duration_ms=4 (int) and duration_ms=4.0 inline are one
        run and must fold identically (cache keys hash the values)."""
        assert registry.extract_run_params(
            "chargecache", cc_duration_ms=4) == \
            registry.extract_run_params("chargecache(duration_ms=4.0)")
        assert registry.extract_run_params(
            "chargecache(duration_ms=4)", cc_duration_ms=4)[2] == 4.0

    def test_lldram_duration_folds_to_the_shorthand_home(self):
        """Both spellings of an LL-DRAM duration are one run and must
        land on one cache key; conflicts raise like chargecache's."""
        assert registry.extract_run_params("lldram(duration_ms=4)") == \
            ("lldram", None, 4.0, False)
        assert registry.extract_run_params("lldram(duration_ms=4)") == \
            registry.extract_run_params("lldram", cc_duration_ms=4.0)
        with pytest.raises(ValueError, match="conflicting"):
            registry.extract_run_params("lldram(duration_ms=4)",
                                        cc_duration_ms=8.0)
        # Explicit reduction overrides couple with the duration via
        # the factory's re-derivation: the term then stays inline.
        assert registry.extract_run_params(
            "lldram(duration_ms=4,trcd_reduction_cycles=2)") == \
            ("lldram(caching_duration_ms=4.0,trcd_reduction_cycles=2)",
             None, None, False)


class TestConfigIntegration:
    def test_simulation_config_accepts_parameterized_specs(self):
        SimulationConfig(
            mechanism="chargecache(entries=256)+nuat").validate()

    def test_simulation_config_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            SimulationConfig(mechanism="chargecache(entries=-1)").validate()
        with pytest.raises(ValueError):
            SimulationConfig(mechanism="turbo").validate()

    def test_with_mechanism_revalidates(self):
        base = single_core_config("none")
        with pytest.raises(ValueError):
            base.with_mechanism("not-a-mechanism")
        with pytest.raises(ValueError):
            base.with_mechanism("chargecache(entries=3)")  # assoc 2

    def test_with_engine_revalidates(self):
        with pytest.raises(ValueError):
            single_core_config("none").with_engine("warp")
