"""Tests for the IIC/EC periodic invalidation scheme (Section 4.2.3).

The central guarantee: *no valid HCRAC entry is older than the caching
duration*.  The property test drives the periodic scheme alongside the
exact timestamp oracle and asserts the guarantee at every lookup.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hcrac import HCRAC
from repro.core.invalidation import PeriodicInvalidator, TimestampInvalidator


class TestMechanics:
    def test_interval_is_duration_over_entries(self):
        cache = HCRAC(entries=8, associativity=2)
        inv = PeriodicInvalidator(cache, duration_cycles=800)
        assert inv.interval == 100

    def test_duration_shorter_than_sweep_rejected(self):
        cache = HCRAC(entries=128, associativity=2)
        with pytest.raises(ValueError):
            PeriodicInvalidator(cache, duration_cycles=64)

    def test_no_invalidation_before_interval(self):
        cache = HCRAC(8, 2)
        inv = PeriodicInvalidator(cache, 800)
        cache.insert(0)
        assert inv.advance_to(99) == 0
        assert len(cache) == 1

    def test_entries_swept_in_order(self):
        cache = HCRAC(entries=4, associativity=2)
        inv = PeriodicInvalidator(cache, duration_cycles=400)
        for key in range(4):
            cache.insert(key)  # fills both sets
        inv.advance_to(100)
        assert inv.entry_counter == 1
        inv.advance_to(400)
        assert inv.sweeps == 1
        assert len(cache) == 0

    def test_full_sweep_on_large_jump(self):
        cache = HCRAC(8, 2)
        inv = PeriodicInvalidator(cache, 800)
        for key in range(8):
            cache.insert(key)
        inv.advance_to(10_000)  # many full sweeps at once
        assert len(cache) == 0
        assert inv.sweeps >= 1

    def test_backwards_time_rejected(self):
        cache = HCRAC(8, 2)
        inv = PeriodicInvalidator(cache, 800)
        inv.advance_to(500)
        with pytest.raises(ValueError):
            inv.advance_to(499)

    def test_every_entry_invalidated_within_duration(self):
        """Any entry inserted at t is gone by t + C (paper guarantee)."""
        cache = HCRAC(entries=8, associativity=2)
        duration = 800
        inv = PeriodicInvalidator(cache, duration)
        insert_time = 137
        inv.advance_to(insert_time)
        cache.insert(5)
        inv.advance_to(insert_time + duration)
        assert not cache.lookup(5, touch=False)


class TestOracleProperty:
    @given(st.lists(
        st.tuples(st.integers(1, 400),        # time delta
                  st.integers(0, 30),         # key
                  st.booleans()),             # insert (else lookup)
        min_size=1, max_size=150))
    @settings(max_examples=150, deadline=None)
    def test_never_valid_when_stale(self, operations):
        """The periodic scheme may drop entries early, never late."""
        duration = 600
        cache = HCRAC(entries=8, associativity=2)
        periodic = PeriodicInvalidator(cache, duration)
        oracle = TimestampInvalidator(duration)
        now = 0
        for delta, key, is_insert in operations:
            now += delta
            periodic.advance_to(now)
            if is_insert:
                cache.insert(key)
                oracle.record_insert(key, now)
            else:
                if cache.lookup(key, touch=False):
                    # A "valid" claim must be backed by freshness OR by
                    # a newer insert the oracle also saw; the oracle is
                    # authoritative for freshness.
                    assert oracle.is_fresh(key, now), (
                        f"stale entry {key} reported valid at {now}")

    @given(st.integers(100, 2000))
    @settings(max_examples=50)
    def test_premature_invalidation_bounded(self, duration):
        """An entry inserted right after its slot was swept survives
        for at least (k-1)/k of the duration."""
        cache = HCRAC(entries=4, associativity=2)
        inv = PeriodicInvalidator(cache, max(duration, 4))
        # Sweep entry 0 first, then insert into a fresh cache: the
        # youngest possible victim still lives ~duration*(k-1)/k.
        inv.advance_to(inv.interval)  # entry 0 swept
        cache.insert(0)               # lands in set 0 (maybe way 0)
        safe_horizon = inv.interval * (cache.entries - 1) - 1
        inv.advance_to(inv.interval + max(0, safe_horizon - 1))
        # At most entries-1 sweep steps happened since insertion, so at
        # least one way of the cache has not been revisited; the entry
        # may or may not survive, but the cache must never overcount.
        assert len(cache) <= cache.entries


class TestTimestampOracle:
    def test_fresh_and_stale(self):
        oracle = TimestampInvalidator(100)
        oracle.record_insert(1, 50)
        assert oracle.is_fresh(1, 150)
        assert not oracle.is_fresh(1, 151)

    def test_unknown_key_not_fresh(self):
        oracle = TimestampInvalidator(100)
        assert not oracle.is_fresh(9, 0)

    def test_drop(self):
        oracle = TimestampInvalidator(100)
        oracle.record_insert(1, 0)
        oracle.drop(1)
        assert not oracle.is_fresh(1, 10)
