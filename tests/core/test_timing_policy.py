"""Tests for the mechanism interface, LL-DRAM and composition."""

import pytest

from repro.config import (
    ChargeCacheConfig,
    NUATConfig,
    SimulationConfig,
)
from repro.core.chargecache import ChargeCache
from repro.core.lldram import LowLatencyDRAM
from repro.core.nuat import NUAT
from repro.core.timing_policy import (
    CombinedMechanism,
    DefaultTiming,
    build_mechanism,
)
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DDR3_1600


@pytest.fixture
def refresh():
    return RefreshScheduler(DDR3_1600, 1, 64 * 1024)


class TestDefaultTiming:
    def test_always_misses(self):
        mech = DefaultTiming(DDR3_1600)
        for cycle in range(5):
            assert mech.on_activate(0, 0, cycle, 0, cycle) is None
        assert mech.lookups == 5
        assert mech.hit_rate == 0.0


class TestLLDRAM:
    def test_always_hits(self):
        mech = LowLatencyDRAM(DDR3_1600)
        timings = mech.on_activate(0, 0, 123, 0, 0)
        assert (timings.trcd, timings.tras) == (7, 20)
        assert mech.hit_rate == 1.0

    def test_equivalent_to_chargecache_hit(self):
        cc = ChargeCache(DDR3_1600, ChargeCacheConfig(), 1)
        ll = LowLatencyDRAM(DDR3_1600, ChargeCacheConfig())
        cc.on_precharge(0, 0, 9, 0, 0)
        assert cc.on_activate(0, 0, 9, 0, 1) == ll.on_activate(0, 0, 9, 0, 1)


class TestCombined:
    def test_cc_hit_only(self, refresh):
        mech = CombinedMechanism(
            DDR3_1600,
            ChargeCache(DDR3_1600, ChargeCacheConfig(), 1),
            NUAT(DDR3_1600, NUATConfig(), refresh))
        mech.on_precharge(0, 0, 100, 0, 0)
        old_row = max(range(0, 1024, 8),
                      key=lambda r: refresh.row_refresh_age_cycles(0, r, 0))
        if old_row == 100:
            old_row += 8
        mech.on_precharge(0, 0, old_row, 0, 0)
        timings = mech.on_activate(0, 0, old_row, 0, 1)
        assert timings is not None  # CC covers what NUAT cannot

    def test_takes_min_of_both(self, refresh):
        cc = ChargeCache(DDR3_1600, ChargeCacheConfig(), 1)
        nuat = NUAT(DDR3_1600, NUATConfig(), refresh)
        mech = CombinedMechanism(DDR3_1600, cc, nuat)
        refresh.on_refresh_issued(0, 0)  # rows 0-7 freshly refreshed
        mech.on_precharge(0, 0, 0, 0, 10)
        combined = mech.on_activate(0, 0, 0, 0, 20)
        cc_only = cc.hit_timings
        assert combined.trcd <= cc_only.trcd
        assert combined.tras <= cc_only.tras

    def test_miss_when_both_miss(self, refresh):
        mech = CombinedMechanism(
            DDR3_1600,
            ChargeCache(DDR3_1600, ChargeCacheConfig(), 1),
            NUAT(DDR3_1600, NUATConfig(), refresh))
        old_row = max(range(0, 1024, 8),
                      key=lambda r: refresh.row_refresh_age_cycles(0, r, 0))
        assert mech.on_activate(0, 0, old_row, 0, 0) is None

    def test_reset_propagates(self, refresh):
        cc = ChargeCache(DDR3_1600, ChargeCacheConfig(), 1)
        nuat = NUAT(DDR3_1600, NUATConfig(), refresh)
        mech = CombinedMechanism(DDR3_1600, cc, nuat)
        mech.on_activate(0, 0, 0, 0, 0)
        mech.reset_stats()
        assert cc.lookups == 0 and nuat.lookups == 0 and mech.lookups == 0


class TestFactory:
    @pytest.mark.parametrize("name,expected", [
        ("none", DefaultTiming),
        ("chargecache", ChargeCache),
        ("nuat", NUAT),
        ("chargecache+nuat", CombinedMechanism),
        ("lldram", LowLatencyDRAM),
    ])
    def test_build_each_mechanism(self, refresh, name, expected):
        cfg = SimulationConfig(mechanism=name)
        mech = build_mechanism(cfg, DDR3_1600, num_cores=1,
                               refresh_scheduler=refresh)
        assert isinstance(mech, expected)

    def test_unknown_mechanism(self, refresh):
        cfg = SimulationConfig()
        object.__setattr__(cfg, "mechanism", "bogus")
        with pytest.raises(ValueError):
            build_mechanism(cfg, DDR3_1600, 1, refresh)
