"""Unit and property tests for the HCRAC tag store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hcrac import HCRAC, UnboundedHCRAC


class TestConstruction:
    def test_paper_configuration(self):
        cache = HCRAC(entries=128, associativity=2)
        assert cache.num_sets == 64

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            HCRAC(entries=0)
        with pytest.raises(ValueError):
            HCRAC(entries=10, associativity=4)  # not divisible
        with pytest.raises(ValueError):
            HCRAC(entries=24, associativity=2)  # sets not power of two


class TestBasicOperations:
    def test_miss_then_hit(self):
        cache = HCRAC(8, 2)
        assert not cache.lookup(42)
        cache.insert(42)
        assert cache.lookup(42)
        assert 42 in cache

    def test_len_counts_valid(self):
        cache = HCRAC(8, 2)
        for key in range(5):
            cache.insert(key)
        assert len(cache) == 5

    def test_reinsert_does_not_duplicate(self):
        cache = HCRAC(8, 2)
        cache.insert(1)
        cache.insert(1)
        assert len(cache) == 1

    def test_clear(self):
        cache = HCRAC(8, 2)
        for key in range(8):
            cache.insert(key)
        cache.clear()
        assert len(cache) == 0


class TestLRU:
    def test_lru_eviction_within_set(self):
        cache = HCRAC(entries=4, associativity=2)  # 2 sets
        # Keys 0, 2, 4 share set 0 (key & 1 == 0).
        cache.insert(0)
        cache.insert(2)
        cache.insert(4)  # evicts key 0 (LRU)
        assert not cache.lookup(0, touch=False)
        assert cache.lookup(2, touch=False)
        assert cache.lookup(4, touch=False)

    def test_lookup_refreshes_lru(self):
        cache = HCRAC(entries=4, associativity=2)
        cache.insert(0)
        cache.insert(2)
        cache.lookup(0)      # 0 becomes MRU
        cache.insert(4)      # evicts 2, not 0
        assert cache.lookup(0, touch=False)
        assert not cache.lookup(2, touch=False)

    def test_eviction_counter(self):
        cache = HCRAC(entries=2, associativity=2)
        for key in range(3):
            cache.insert(key * 2)  # all map to set 0
        assert cache.evictions == 1


class TestInvalidation:
    def test_invalidate_entry(self):
        cache = HCRAC(entries=4, associativity=2)
        cache.insert(0)
        # Key 0 -> set 0; find which way holds it by sweeping both.
        cleared = any(cache.invalidate_entry(e) for e in (0, 1))
        assert cleared
        assert not cache.lookup(0, touch=False)

    def test_invalidate_empty_entry_returns_false(self):
        cache = HCRAC(4, 2)
        assert not cache.invalidate_entry(0)

    def test_invalidate_out_of_range(self):
        cache = HCRAC(4, 2)
        with pytest.raises(IndexError):
            cache.invalidate_entry(4)

    def test_invalidate_key(self):
        cache = HCRAC(4, 2)
        cache.insert(3)
        assert cache.invalidate_key(3)
        assert not cache.invalidate_key(3)


class TestProperties:
    @given(st.lists(st.integers(0, 1000), max_size=200))
    @settings(max_examples=100)
    def test_capacity_never_exceeded(self, keys):
        cache = HCRAC(entries=16, associativity=4)
        for key in keys:
            cache.insert(key)
            assert len(cache) <= 16

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_most_recent_insert_always_present(self, keys):
        cache = HCRAC(entries=8, associativity=2)
        for key in keys:
            cache.insert(key)
            assert cache.lookup(key, touch=False)

    @given(st.lists(st.integers(0, 100), max_size=100),
           st.integers(0, 100))
    @settings(max_examples=100)
    def test_lookup_matches_reference_model(self, keys, probe):
        """HCRAC agrees with a brute-force per-set LRU model."""
        assoc = 2
        cache = HCRAC(entries=8, associativity=assoc)
        sets = {}
        for key in keys:
            set_idx = key & (cache.num_sets - 1)
            lru = sets.setdefault(set_idx, [])
            if key in lru:
                lru.remove(key)
            elif len(lru) == assoc:
                lru.pop(0)
            lru.append(key)
            cache.insert(key)
        probe_set = probe & (cache.num_sets - 1)
        expected = probe in sets.get(probe_set, [])
        assert cache.lookup(probe, touch=False) == expected


class TestUnbounded:
    def test_expiry_by_age(self):
        cache = UnboundedHCRAC(duration_cycles=100)
        cache.insert(1, cycle=0)
        assert cache.lookup(1, cycle=100)
        assert not cache.lookup(1, cycle=101)

    def test_lazy_expiry_drops_entry(self):
        cache = UnboundedHCRAC(100)
        cache.insert(1, 0)
        cache.lookup(1, 500)
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_no_capacity_evictions(self):
        cache = UnboundedHCRAC(10 ** 9)
        for key in range(10_000):
            cache.insert(key, 0)
        assert len(cache) == 10_000
        assert cache.evictions == 0

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            UnboundedHCRAC(0)
