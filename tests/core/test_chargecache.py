"""Unit tests for the ChargeCache mechanism."""

import pytest

from repro.config import ChargeCacheConfig
from repro.core.chargecache import ChargeCache, row_key
from repro.dram.timing import DDR3_1600


def make_cc(num_cores=1, **kwargs) -> ChargeCache:
    return ChargeCache(DDR3_1600, ChargeCacheConfig(**kwargs), num_cores)


class TestRowKey:
    def test_distinct_rows_distinct_keys(self):
        keys = {row_key(r, b, row)
                for r in range(2) for b in range(8) for row in range(16)}
        assert len(keys) == 2 * 8 * 16

    def test_row_in_low_bits(self):
        assert row_key(0, 0, 5) & 0xFFFF == 5


class TestInsertLookup:
    def test_miss_without_prior_precharge(self):
        cc = make_cc()
        assert cc.on_activate(0, 0, 100, 0, 10) is None
        assert cc.lookups == 1
        assert cc.hits == 0

    def test_hit_after_precharge(self):
        cc = make_cc()
        cc.on_precharge(0, 0, 100, 0, 10)
        timings = cc.on_activate(0, 0, 100, 0, 20)
        assert timings is not None
        assert cc.hits == 1

    def test_hit_timings_are_paper_reduction(self):
        cc = make_cc()
        cc.on_precharge(0, 0, 100, 0, 10)
        timings = cc.on_activate(0, 0, 100, 0, 20)
        assert timings.trcd == DDR3_1600.tRCD - 4
        assert timings.tras == DDR3_1600.tRAS - 8

    def test_different_row_misses(self):
        cc = make_cc()
        cc.on_precharge(0, 0, 100, 0, 10)
        assert cc.on_activate(0, 0, 101, 0, 20) is None

    def test_different_bank_misses(self):
        cc = make_cc()
        cc.on_precharge(0, 0, 100, 0, 10)
        assert cc.on_activate(0, 1, 100, 0, 20) is None

    def test_hit_rate(self):
        cc = make_cc()
        cc.on_precharge(0, 0, 1, 0, 0)
        cc.on_activate(0, 0, 1, 0, 1)
        cc.on_activate(0, 0, 2, 0, 2)
        assert cc.hit_rate == pytest.approx(0.5)


class TestInvalidation:
    def test_entry_expires_after_duration(self):
        cc = make_cc(caching_duration_ms=1.0)
        duration = cc.duration_cycles
        cc.on_precharge(0, 0, 100, 0, 0)
        assert cc.on_activate(0, 0, 100, 0, duration + duration // 128 + 2) \
            is None

    def test_time_scale_shrinks_duration(self):
        plain = make_cc(caching_duration_ms=1.0)
        scaled = make_cc(caching_duration_ms=1.0, time_scale=64.0)
        assert scaled.duration_cycles * 64 == pytest.approx(
            plain.duration_cycles, rel=0.01)

    def test_maintain_idempotent(self):
        cc = make_cc()
        cc.on_precharge(0, 0, 100, 0, 0)
        cc.maintain(10)
        cc.maintain(10)
        assert cc.on_activate(0, 0, 100, 0, 11) is not None


class TestCapacity:
    def test_eviction_loses_oldest(self):
        cc = make_cc(entries=4, associativity=2)
        # Five distinct rows mapping across 2 sets: overflow evicts.
        for row in range(5):
            cc.on_precharge(0, 0, row, 0, row)
        hits = sum(cc.on_activate(0, 0, row, 0, 10) is not None
                   for row in range(5))
        assert hits == 4  # one victim fell out


class TestSharing:
    def test_per_core_tables_are_private(self):
        cc = make_cc(num_cores=2, sharing="per-core")
        cc.on_precharge(0, 0, 100, core_id=0, cycle=0)
        assert cc.on_activate(0, 0, 100, core_id=1, cycle=5) is None
        assert cc.on_activate(0, 0, 100, core_id=0, cycle=6) is not None

    def test_shared_table_is_visible_to_all(self):
        cc = make_cc(num_cores=2, sharing="shared")
        cc.on_precharge(0, 0, 100, core_id=0, cycle=0)
        assert cc.on_activate(0, 0, 100, core_id=1, cycle=5) is not None

    def test_negative_core_id_routes_to_table_zero(self):
        cc = make_cc(num_cores=2, sharing="per-core")
        cc.on_precharge(0, 0, 7, core_id=-1, cycle=0)
        assert cc.on_activate(0, 0, 7, core_id=0, cycle=1) is not None


class TestUnbounded:
    def test_unbounded_never_capacity_evicts(self):
        cc = make_cc(unbounded=True, caching_duration_ms=1.0)
        for row in range(1000):
            cc.on_precharge(0, 0, row, 0, row)
        hits = sum(cc.on_activate(0, 0, row, 0, 1001) is not None
                   for row in range(1000))
        assert hits == 1000

    def test_unbounded_still_expires(self):
        cc = make_cc(unbounded=True, caching_duration_ms=1.0)
        cc.on_precharge(0, 0, 1, 0, 0)
        late = cc.duration_cycles + 1
        assert cc.on_activate(0, 0, 1, 0, late) is None


class TestStats:
    def test_reset_stats(self):
        cc = make_cc()
        cc.on_precharge(0, 0, 1, 0, 0)
        cc.on_activate(0, 0, 1, 0, 1)
        cc.reset_stats()
        assert cc.lookups == 0
        assert cc.hits == 0
        assert cc.insertions == 0

    def test_valid_entries(self):
        cc = make_cc()
        cc.on_precharge(0, 0, 1, 0, 0)
        cc.on_precharge(0, 0, 2, 0, 1)
        assert cc.valid_entries() == 2
