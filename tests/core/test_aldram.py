"""Tests for the AL-DRAM extension mechanism (paper Section 7.1)."""

from repro.config import SimulationConfig
from repro.core.aldram import ALDRAM, aldram_timings_at
from repro.core.timing_policy import build_mechanism
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DDR3_1600


class TestDeratedTimings:
    def test_worst_case_is_baseline(self):
        t = aldram_timings_at(85.0, DDR3_1600)
        assert (t.trcd, t.tras) == (DDR3_1600.tRCD, DDR3_1600.tRAS)

    def test_above_worst_case_is_baseline(self):
        t = aldram_timings_at(95.0, DDR3_1600)
        assert (t.trcd, t.tras) == (DDR3_1600.tRCD, DDR3_1600.tRAS)

    def test_cooler_is_faster(self):
        t55 = aldram_timings_at(55.0, DDR3_1600)
        t85 = aldram_timings_at(85.0, DDR3_1600)
        assert t55.trcd < t85.trcd
        assert t55.tras < t85.tras

    def test_monotone_in_temperature(self):
        temps = (45.0, 55.0, 65.0, 75.0, 85.0)
        trcds = [aldram_timings_at(t, DDR3_1600).trcd for t in temps]
        trass = [aldram_timings_at(t, DDR3_1600).tras for t in temps]
        assert trcds == sorted(trcds)
        assert trass == sorted(trass)

    def test_never_below_one_cycle(self):
        t = aldram_timings_at(-40.0, DDR3_1600)
        assert t.trcd >= 1 and t.tras >= 1


class TestMechanism:
    def test_hot_device_never_hits(self):
        mech = ALDRAM(DDR3_1600, temperature_c=85.0)
        assert mech.on_activate(0, 0, 1, 0, 0) is None
        assert mech.hit_rate == 0.0

    def test_cool_device_always_hits(self):
        mech = ALDRAM(DDR3_1600, temperature_c=55.0)
        timings = mech.on_activate(0, 0, 1, 0, 0)
        assert timings is not None
        assert mech.hit_rate == 1.0

    def test_aldram_weaker_than_chargecache_hit(self):
        """A ChargeCache hit row (1 ms old) is always at least as
        charged as AL-DRAM's worst-case cell, at any temperature
        at or above ~45 C."""
        cc_hit = DDR3_1600.reduced_by(4, 8)
        for temp in (45.0, 65.0, 85.0):
            al = aldram_timings_at(temp, DDR3_1600)
            assert al.trcd >= cc_hit.trcd
            assert al.tras >= cc_hit.tras


class TestFactory:
    def _build(self, mechanism, temperature):
        from dataclasses import replace
        cfg = replace(SimulationConfig(), mechanism=mechanism,
                      temperature_c=temperature)
        refresh = RefreshScheduler(DDR3_1600, 1, 64 * 1024)
        return build_mechanism(cfg, DDR3_1600, 1, refresh)

    def test_aldram_from_config(self):
        mech = self._build("aldram", 55.0)
        assert isinstance(mech, ALDRAM)
        assert mech.temperature_c == 55.0

    def test_combined_with_chargecache(self):
        mech = self._build("chargecache+aldram", 55.0)
        # Cool device: even a cold row hits (AL-DRAM side).
        assert mech.on_activate(0, 0, 1, 0, 0) is not None
        # A recently-precharged row gets the stronger of the two.
        mech.on_precharge(0, 0, 2, 0, 10)
        timings = mech.on_activate(0, 0, 2, 0, 20)
        cc_hit = DDR3_1600.reduced_by(4, 8)
        assert timings.trcd <= cc_hit.trcd
        assert timings.tras <= cc_hit.tras
