"""Unit tests for the NUAT baseline mechanism."""

import pytest

from repro.config import NUATConfig
from repro.core.nuat import NUAT
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DDR3_1600


@pytest.fixture
def refresh():
    return RefreshScheduler(DDR3_1600, num_ranks=1, rows_per_bank=64 * 1024)


@pytest.fixture
def nuat(refresh):
    return NUAT(DDR3_1600, NUATConfig(), refresh)


class TestBins:
    def test_five_bins(self, nuat):
        assert nuat.num_bins == 5

    def test_bin_reductions_monotone(self, nuat):
        """Younger bins get equal-or-more aggressive timings."""
        previous = None
        for edge, timings in nuat.bin_timings():
            if timings is None:
                continue
            if previous is not None:
                assert timings.trcd >= previous.trcd
                assert timings.tras >= previous.tras
            previous = timings

    def test_last_bin_is_default(self, nuat):
        edge, timings = nuat.bin_timings()[-1]
        assert timings is None
        assert edge == DDR3_1600.ms_to_cycles(64.0)


class TestActivation:
    def test_recently_refreshed_row_hits(self, nuat, refresh):
        refresh.on_refresh_issued(0, 1000)  # stamps group 0 (rows 0-7)
        timings = nuat.on_activate(0, 0, row=0, core_id=0, cycle=2000)
        assert timings is not None
        assert timings.trcd < DDR3_1600.tRCD
        assert nuat.hits == 1

    def test_old_row_misses(self, nuat, refresh):
        # Pre-seeded steady state: find a row with age near 64 ms.
        old_row = max(range(0, 1024, 8),
                      key=lambda r: refresh.row_refresh_age_cycles(0, r, 0))
        assert nuat.on_activate(0, 0, old_row, 0, 0) is None

    def test_hit_rate_near_bin_coverage(self, nuat, refresh):
        """With uniform refresh ages, the hit rate approximates the
        covered fraction of the 64 ms window (bins up to 48 ms)."""
        hits = 0
        total = 0
        for row in range(0, 64 * 1024, 32):
            total += 1
            if nuat.on_activate(0, 0, row, 0, 0) is not None:
                hits += 1
        assert hits / total == pytest.approx(48.0 / 64.0, abs=0.05)

    def test_bin_hit_histogram(self, nuat, refresh):
        for row in range(0, 64 * 1024, 64):
            nuat.on_activate(0, 0, row, 0, 0)
        # Bins (0-6, 6-16, 16-32, 32-48] should all be populated.
        assert all(count > 0 for count in nuat.bin_hits[:4])

    def test_activation_does_not_recharge(self, nuat, refresh):
        """NUAT tracks refresh only: activating a row does not make a
        later activation fast (that is ChargeCache's contribution)."""
        old_row = max(range(0, 1024, 8),
                      key=lambda r: refresh.row_refresh_age_cycles(0, r, 0))
        assert nuat.on_activate(0, 0, old_row, 0, 0) is None
        # "Activate" again shortly after: still a miss under NUAT.
        assert nuat.on_activate(0, 0, old_row, 0, 100) is None


class TestStats:
    def test_reset(self, nuat, refresh):
        refresh.on_refresh_issued(0, 0)
        nuat.on_activate(0, 0, 0, 0, 100)
        nuat.reset_stats()
        assert nuat.hits == 0
        assert all(c == 0 for c in nuat.bin_hits)
