"""Unit tests for the batch evaluator's building blocks.

Covers the decision-replay layer (:mod:`repro.core.replay`), the
``fork_state`` protocol on every registered mechanism, the record-once
:class:`~repro.cpu.trace.TraceTape`, and ``System.run_batch``'s
bit-identity and collapse telemetry.
"""

from __future__ import annotations

import dataclasses
import itertools

import pytest

from repro.core.chargecache import ChargeCache
from repro.core.nuat import NUAT
from repro.core.replay import (
    MechanismEventLog,
    RecordingMechanism,
    fork_for_replay,
    replay_decisions_match,
)
from repro.core.timing_policy import CombinedMechanism, DefaultTiming
from repro.cpu.system import System, mechanism_invariant_config
from repro.cpu.trace import TraceRecord, TraceTape
from repro.dram.organization import Organization
from repro.dram.standards import preset
from repro.workloads.synthetic import zipf_trace

from tests.conftest import tiny_config

TIMING = preset("DDR3-1600")


# ----------------------------------------------------------------------
# TraceTape
# ----------------------------------------------------------------------

class TestTraceTape:
    RECORDS = [TraceRecord(3, 0x10, False), TraceRecord(0, 0x20, True),
               TraceRecord(9, 0x30, False)]

    def test_readers_are_independent_and_identical(self):
        tape = TraceTape([iter(self.RECORDS)])
        a, b = tape.reader(0), tape.reader(0)
        assert next(a) == self.RECORDS[0]
        assert list(b) == self.RECORDS  # b catches up and passes a
        assert list(a) == self.RECORDS[1:]

    def test_source_consumed_once(self):
        calls = []

        def source():
            for rec in self.RECORDS:
                calls.append(rec)
                yield rec

        tape = TraceTape([source()])
        assert list(tape.reader(0)) == self.RECORDS
        assert list(tape.reader(0)) == self.RECORDS
        assert calls == self.RECORDS  # memoized, not regenerated

    def test_readers_matches_core_count(self):
        tape = TraceTape([iter(self.RECORDS), iter(self.RECORDS[:1])])
        readers = tape.readers()
        assert len(readers) == len(tape) == 2
        assert list(readers[1]) == self.RECORDS[:1]


# ----------------------------------------------------------------------
# RecordingMechanism + replay
# ----------------------------------------------------------------------

def _drive(mechanism, events):
    """Feed (kind, rank, bank, row, cycle) tuples; returns decisions."""
    decisions = []
    for kind, rank, bank, row, cycle in events:
        if kind == "A":
            decisions.append(
                mechanism.on_activate(rank, bank, row, 0, cycle))
        else:
            mechanism.on_precharge(rank, bank, row, 0, cycle)
    return decisions


EVENTS = [
    ("A", 0, 0, 5, 100), ("P", 0, 0, 5, 300),
    ("A", 0, 0, 5, 400),            # hit: precharged 100 cycles ago
    ("A", 0, 1, 7, 450), ("P", 0, 1, 7, 600),
]


class TestRecordingAndReplay:
    def _chargecache(self):
        cfg = tiny_config("chargecache").chargecache
        return ChargeCache(TIMING, cfg, num_cores=1)

    def test_recording_is_transparent(self):
        plain = _drive(self._chargecache(), EVENTS)
        log = MechanismEventLog()
        recorded = _drive(RecordingMechanism(self._chargecache(), log),
                          EVENTS)
        assert recorded == plain
        assert len(log) == len(EVENTS)
        kinds = [event[0] for event in log.events]
        assert kinds == [e[0] for e in EVENTS]

    def test_stats_resolve_through_wrapper(self):
        log = MechanismEventLog()
        wrapper = RecordingMechanism(self._chargecache(), log)
        _drive(wrapper, EVENTS)
        assert wrapper.lookups == 3
        assert wrapper.hits == 1

    def test_identical_variant_matches(self):
        log = MechanismEventLog()
        _drive(RecordingMechanism(self._chargecache(), log), EVENTS)
        assert replay_decisions_match([log], [self._chargecache()])

    def test_diverging_variant_mismatches(self):
        log = MechanismEventLog()
        _drive(RecordingMechanism(self._chargecache(), log), EVENTS)
        # A no-op mechanism never offers reduced timings, so the hit
        # decision recorded at cycle 400 cannot be reproduced.
        assert not replay_decisions_match([log], [DefaultTiming(TIMING)])

    def test_channel_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            replay_decisions_match([MechanismEventLog()], [])


# ----------------------------------------------------------------------
# fork_state / supports_decision_replay protocol
# ----------------------------------------------------------------------

class TestForkProtocol:
    def test_chargecache_forks_fresh_state(self):
        mech = ChargeCache(TIMING, tiny_config("chargecache").chargecache,
                           num_cores=1)
        _drive(mech, EVENTS)
        fork = mech.fork_state()
        assert fork.config == mech.config
        assert fork.lookups == 0 and fork.hits == 0
        assert all(t.valid_count == 0 for t in fork.tables)

    def test_combined_forks_parts(self):
        cc = ChargeCache(TIMING, tiny_config("chargecache").chargecache,
                         num_cores=1)
        combined = CombinedMechanism(TIMING, cc, DefaultTiming(TIMING))
        fork = combined.fork_state()
        assert isinstance(fork, CombinedMechanism)
        assert len(fork.mechanisms) == 2
        assert fork.mechanisms[0] is not cc

    def test_nuat_opts_out(self):
        nuat = NUAT(TIMING, tiny_config("nuat").nuat, refresh=None)
        assert not nuat.supports_decision_replay
        assert fork_for_replay(nuat, channels=1) is None
        with pytest.raises(NotImplementedError):
            nuat.fork_state()

    def test_fork_for_replay_yields_per_channel_instances(self):
        mech = DefaultTiming(TIMING)
        forks = fork_for_replay(mech, channels=2)
        assert len(forks) == 2
        assert forks[0] is not forks[1]


# ----------------------------------------------------------------------
# System.run_batch
# ----------------------------------------------------------------------

def _result_payload(result):
    """Everything but config/probes, for bit-identity comparison."""
    return dataclasses.asdict(dataclasses.replace(
        result, config=None, rltl=None, reuse=None))


def _variant(mechanism, **cc_kwargs):
    cfg = tiny_config(mechanism, instruction_limit=4_000, **cc_kwargs)
    cc = dataclasses.replace(cfg.chargecache, caching_duration_ms=100.0,
                             time_scale=1.0)
    return dataclasses.replace(cfg, chargecache=cc)


def _trace(cfg, seed=3):
    org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
    return zipf_trace(org, 128 * 1024, 6.0, seed, alpha=1.8,
                      write_fraction=0.2)


class TestRunBatch:
    def test_bit_identical_to_serial_with_collapse(self):
        configs = [_variant("none"),
                   _variant("chargecache", entries=64),
                   _variant("chargecache", entries=256),
                   _variant("chargecache", unbounded=True),
                   _variant("lldram")]
        serial = [System(cfg, [_trace(cfg)]).run(max_mem_cycles=300_000)
                  for cfg in configs]
        telemetry = {}
        batch = System.run_batch(configs, [_trace(configs[0])],
                                 max_mem_cycles=300_000,
                                 telemetry=telemetry)
        assert len(batch) == len(configs)
        for expect, got in zip(serial, batch):
            assert _result_payload(got) == _result_payload(expect)
            assert got.config == expect.config
        # The capacity variants share one decision stream on this
        # hot-row-set workload, so at least one run must collapse.
        assert telemetry["full_runs"] + telemetry["collapsed"] \
            == len(configs)
        assert telemetry["collapsed"] >= 1

    def test_nuat_variants_never_collapse(self):
        configs = [_variant("nuat"), _variant("nuat")]
        telemetry = {}
        batch = System.run_batch(configs, [_trace(configs[0])],
                                 max_mem_cycles=300_000,
                                 telemetry=telemetry)
        assert telemetry == {"full_runs": 2, "collapsed": 0}
        assert _result_payload(batch[0]) == _result_payload(batch[1])

    def test_collapsed_results_own_their_containers(self):
        configs = [_variant("chargecache", entries=64),
                   _variant("chargecache", entries=256)]
        telemetry = {}
        batch = System.run_batch(configs, [_trace(configs[0])],
                                 max_mem_cycles=300_000,
                                 telemetry=telemetry)
        assert telemetry["collapsed"] == 1
        witness, clone = batch
        assert clone.ipcs == witness.ipcs
        assert clone.ipcs is not witness.ipcs
        assert clone.extra is not witness.extra

    def test_rejects_platform_divergence(self):
        base = _variant("none")
        other = dataclasses.replace(_variant("chargecache"), seed=99)
        with pytest.raises(ValueError):
            System.run_batch([base, other], [_trace(base)])

    def test_empty_batch(self):
        assert System.run_batch([], []) == []


class TestMechanismInvariantConfig:
    def test_strips_only_mechanism_fields(self):
        a = mechanism_invariant_config(_variant("chargecache", entries=64))
        b = mechanism_invariant_config(
            _variant("chargecache", unbounded=True))
        c = mechanism_invariant_config(_variant("none"))
        assert a == b == c

    def test_platform_fields_survive(self):
        a = mechanism_invariant_config(_variant("none"))
        b = mechanism_invariant_config(
            dataclasses.replace(_variant("none"), seed=7))
        assert a != b
