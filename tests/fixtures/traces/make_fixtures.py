"""Regenerate the bundled golden trace fixtures (committed files).

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/traces/make_fixtures.py

The fixtures are small external traces in the ingestion line format
(``<cycle> <byte-address> <R|W>``), deterministic by construction (no
RNG seeds to drift), each exercising one locality regime the
fingerprint pass and the simulator distinguish.  Note the semantics:
an ingested trace is a **core-level access stream** - the repro
replays it through its own LLC, so lines with short-term reuse
(hotrow) are absorbed before DRAM while distinct-line patterns
(streaming, scattered) reach the memory controller:

* ``streaming.trace`` - one sequential stream over distinct lines:
  high row-hit rate at trace level and in DRAM (walks each open row's
  columns end to end), high RLTL.
* ``pingpong.trace``  - two interleaved streams whose rows alias into
  the same banks: every access is a row conflict on a just-precharged
  row - near-zero row-hit rate but very high RLTL (ChargeCache's
  best case).
* ``hotrow.trace``    - bursts over a few hot rows with cold
  excursions: high trace-level row-hit rate, but the reused lines are
  LLC-resident, so little of it reaches DRAM (hmmer-like).
* ``scattered.trace`` - an LCG walk over a wide footprint: low RLTL,
  low row-hit rate (mcf/omnetpp-like).

Addresses are 64 B-aligned byte addresses inside the paper's
single-channel organization (8 banks x 64K rows x 128-line rows).
Cycles advance by a fixed per-pattern gap, so every fixture is
monotonic.
"""

import os

HERE = os.path.dirname(os.path.abspath(__file__))
LINE = 64            # bytes per cache line
ROW_LINES = 128      # lines per row in the default organization


def _write(name, rows):
    path = os.path.join(HERE, name)
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"# golden fixture: {name} (see make_fixtures.py)\n")
        for cycle, line_addr, op in rows:
            fh.write(f"{cycle} {line_addr * LINE:#x} {op}\n")
    print(f"wrote {path} ({len(rows)} records)")


def _line(row, bank, col):
    """Cache-line address for (row, bank, col) under the default
    RoBaRaCoCh mapping (1 channel, 1 rank: [row][bank:3][col:7])."""
    return (row << 10) | (bank << 7) | col


def streaming(n=720):
    # Consecutive line addresses: cols 0..127 of bank 0, then bank 1,
    # ... - every line distinct (LLC-cold), 127 row hits per row.
    rows, cycle = [], 0
    for i in range(n):
        cycle += 8
        op = "W" if i % 8 == 7 else "R"
        rows.append((cycle, i, op))
    return rows


def pingpong(n=720):
    # Two streams whose base rows alias into the same bank sequence;
    # alternating accesses re-activate a row precharged moments ago.
    rows, cycle = [], 0
    for i in range(n):
        cycle += 8
        stream, pos = i % 2, i // 2
        base = _line(64 * stream, 0, 0)
        op = "W" if stream == 1 and pos % 4 == 3 else "R"
        rows.append((cycle, base + pos * 4, op))
    return rows


def hotrow(n=640, burst=16):
    # Bursts of `burst` accesses walk one hot row's columns (burst-1
    # trace-level row hits each), rotating over 4 hot (row, bank)
    # pairs; every 4th burst ends with a cold excursion to a far row.
    hot = [(3, 0), (5, 2), (9, 4), (12, 6)]
    rows, cycle = [], 0
    for i in range(n):
        cycle += 12
        b = i // burst            # burst index
        row, bank = hot[b % 4]
        if i % (4 * burst) == 4 * burst - 1:
            rows.append((cycle, _line(1000 + b, 7, 0), "R"))
        else:
            op = "W" if i % 10 == 9 else "R"
            rows.append((cycle, _line(row, bank, (i * 3) % ROW_LINES), op))
    return rows


def scattered(n=560):
    rows, cycle, x = [], 0, 12345
    for i in range(n):
        cycle += 20
        x = (1103515245 * x + 12345) % (1 << 31)  # C89 rand() LCG
        op = "W" if x % 8 == 0 else "R"
        rows.append((cycle, x % (1 << 20), op))
    return rows


if __name__ == "__main__":
    _write("streaming.trace", streaming())
    _write("pingpong.trace", pingpong())
    _write("hotrow.trace", hotrow())
    _write("scattered.trace", scattered())
