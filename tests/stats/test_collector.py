"""Unit tests for the stats collector."""

import pytest

from repro.stats.collector import StatsCollector


class TestCounters:
    def test_add_accumulates(self):
        s = StatsCollector()
        s.add("reads")
        s.add("reads", 4)
        assert s.get("reads") == 5

    def test_set_overwrites(self):
        s = StatsCollector()
        s.add("x", 10)
        s.set("x", 3)
        assert s.get("x") == 3

    def test_missing_default(self):
        s = StatsCollector()
        assert s.get("nope", -1) == -1

    def test_update_with_prefix(self):
        s = StatsCollector()
        s.update({"a": 1, "b": 2}, prefix="core0.")
        assert s.get("core0.a") == 1
        assert s.with_prefix("core0.") == {"core0.a": 1, "core0.b": 2}

    def test_ratio(self):
        s = StatsCollector()
        s.set("hits", 3)
        s.set("lookups", 4)
        assert s.ratio("hits", "lookups") == pytest.approx(0.75)
        assert s.ratio("hits", "missing") == 0.0

    def test_contains_and_len(self):
        s = StatsCollector()
        s.add("x")
        assert "x" in s and "y" not in s
        assert len(s) == 1

    def test_as_dict_is_copy(self):
        s = StatsCollector()
        s.add("x")
        d = s.as_dict()
        d["x"] = 99
        assert s.get("x") == 1
