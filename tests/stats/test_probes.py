"""Tests for probe composition and system-level probe wiring."""

import pytest

from repro.cpu.system import System
from repro.dram.organization import Organization
from repro.stats.probes import CompositeProbe
from repro.stats.reuse import RowReuseProfiler
from repro.workloads.synthetic import zipf_trace

from tests.conftest import tiny_config


class Recorder:
    def __init__(self):
        self.events = []

    def on_activate(self, *args):
        self.events.append(("act", args))

    def on_precharge(self, *args):
        self.events.append(("pre", args))

    def reset(self):
        self.events.clear()


class TestCompositeProbe:
    def test_broadcasts_to_all(self):
        a, b = Recorder(), Recorder()
        probe = CompositeProbe([a, b])
        probe.on_activate(0, 0, 1, 42, 100)
        probe.on_precharge(0, 0, 1, 42, 200)
        assert len(a.events) == len(b.events) == 2

    def test_reset_propagates(self):
        a = Recorder()
        probe = CompositeProbe([a])
        probe.on_activate(0, 0, 0, 0, 0)
        probe.reset()
        assert not a.events

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeProbe([])

    def test_iterable(self):
        a, b = Recorder(), RowReuseProfiler()
        assert list(CompositeProbe([a, b])) == [a, b]


class TestSystemWiring:
    def _run(self, **kwargs):
        cfg = tiny_config(instruction_limit=2500)
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        system = System(cfg, [zipf_trace(org, 1 << 21, 8.0, seed=2)],
                        **kwargs)
        return system.run(max_mem_cycles=400_000)

    def test_reuse_probe_attached(self):
        result = self._run(enable_reuse=True)
        assert result.reuse is not None
        assert result.reuse.activations == result.activations

    def test_both_probes_see_same_stream(self):
        result = self._run(enable_rltl=True, enable_reuse=True,
                           rltl_time_scale=512.0)
        assert result.rltl.activations == result.reuse.activations

    def test_probes_off_by_default(self):
        result = self._run()
        assert result.rltl is None
        assert result.reuse is None

    def test_reuse_prediction_bounds_measured_hit_rate(self):
        """Fully-associative LRU prediction upper-bounds the measured
        2-way, periodically-invalidated HCRAC at equal capacity."""
        cfg = tiny_config(mechanism="chargecache", instruction_limit=4000)
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        system = System(cfg, [zipf_trace(org, 1 << 21, 8.0, seed=2)],
                        enable_reuse=True)
        result = system.run(max_mem_cycles=400_000)
        predicted = result.reuse.predicted_hit_rate(
            cfg.chargecache.entries)
        assert result.mechanism_hit_rate <= predicted + 0.08
