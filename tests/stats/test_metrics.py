"""Unit tests for evaluation metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.stats.metrics import (
    geometric_mean,
    ipc,
    rmpkc,
    speedup,
    weighted_speedup,
)


class TestIPC:
    def test_basic(self):
        assert ipc(300, 100) == 3.0

    def test_zero_cycles(self):
        assert ipc(100, 0) == 0.0


class TestWeightedSpeedup:
    def test_equal_ipcs_give_core_count(self):
        assert weighted_speedup([1.0] * 8, [1.0] * 8) == pytest.approx(8.0)

    def test_slowdown_reduces_ws(self):
        ws = weighted_speedup([0.5, 0.5], [1.0, 1.0])
        assert ws == pytest.approx(1.0)

    def test_zero_alone_contributes_zero(self):
        assert weighted_speedup([1.0], [0.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    @given(st.lists(st.floats(0.01, 3.0), min_size=1, max_size=8))
    def test_shared_equals_alone_gives_n(self, ipcs):
        assert weighted_speedup(ipcs, ipcs) == pytest.approx(len(ipcs))


class TestSpeedup:
    def test_improvement(self):
        assert speedup(1.1, 1.0) == pytest.approx(0.1)

    def test_regression(self):
        assert speedup(0.9, 1.0) == pytest.approx(-0.1)

    def test_zero_base(self):
        assert speedup(1.0, 0.0) == 0.0


class TestRMPKC:
    def test_basic(self):
        assert rmpkc(50, 10_000) == pytest.approx(5.0)

    def test_zero_cycles(self):
        assert rmpkc(50, 0) == 0.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_non_positive(self):
        assert geometric_mean([1.0, 0.0]) == 0.0

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=10))
    def test_bounded_by_min_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
