"""Unit tests for the RLTL profiler."""

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DDR3_1600
from repro.stats.rltl import RLTLProbe


@pytest.fixture
def probe():
    return RLTLProbe(DDR3_1600)


class TestDefinition:
    def test_cold_activation_not_rltl(self, probe):
        probe.on_activate(0, 0, 0, row=5, cycle=100)
        assert probe.activations == 1
        assert probe.cold_activations == 1
        assert probe.rltl(8.0) == 0.0

    def test_activation_after_precharge_counts(self, probe):
        probe.on_precharge(0, 0, 0, row=5, cycle=100)
        probe.on_activate(0, 0, 0, row=5, cycle=200)
        assert probe.rltl(0.125) == 1.0

    def test_gap_binned_into_all_covering_intervals(self, probe):
        gap_cycles = DDR3_1600.ms_to_cycles(0.2)  # between 0.125 and 0.25
        probe.on_precharge(0, 0, 0, 5, cycle=0)
        probe.on_activate(0, 0, 0, 5, cycle=gap_cycles)
        assert probe.rltl(0.125) == 0.0
        assert probe.rltl(0.25) == 1.0
        assert probe.rltl(32.0) == 1.0

    def test_different_rows_tracked_separately(self, probe):
        probe.on_precharge(0, 0, 0, 5, cycle=0)
        probe.on_activate(0, 0, 0, 6, cycle=10)
        assert probe.cold_activations == 1

    def test_interval_series(self, probe):
        probe.on_precharge(0, 0, 0, 5, 0)
        probe.on_activate(0, 0, 0, 5, 10)
        series = probe.rltl_series()
        assert [ms for ms, _ in series] == sorted(probe.intervals_ms)
        assert all(frac == 1.0 for _, frac in series)

    def test_unknown_interval_rejected(self, probe):
        with pytest.raises(KeyError):
            probe.rltl(7.0)


class TestRefreshFraction:
    def test_refresh_ages_counted(self):
        refresh = RefreshScheduler(DDR3_1600, 1, 64 * 1024)
        probe = RLTLProbe(DDR3_1600, refresh_schedulers={0: refresh})
        refresh.on_refresh_issued(0, 1000)  # group 0 (rows 0-7)
        probe.on_activate(0, 0, 0, row=0, cycle=2000)
        assert probe.refresh_fraction(8.0) == 1.0

    def test_old_refresh_not_counted(self):
        refresh = RefreshScheduler(DDR3_1600, 1, 64 * 1024)
        probe = RLTLProbe(DDR3_1600, refresh_schedulers={0: refresh})
        old_row = max(range(0, 1024, 8),
                      key=lambda r: refresh.row_refresh_age_cycles(0, r, 0))
        probe.on_activate(0, 0, 0, old_row, cycle=0)
        assert probe.refresh_fraction(8.0) == 0.0


class TestTimeScale:
    def test_scaled_intervals_shrink(self):
        plain = RLTLProbe(DDR3_1600)
        scaled = RLTLProbe(DDR3_1600, time_scale=64.0)
        gap = DDR3_1600.ms_to_cycles(0.125)  # exactly 0.125 ms
        for probe in (plain, scaled):
            probe.on_precharge(0, 0, 0, 5, 0)
            probe.on_activate(0, 0, 0, 5, gap)
        assert plain.rltl(0.125) == 1.0
        assert scaled.rltl(0.125) == 0.0  # 0.125/64 ms edge

    def test_refresh_intervals_never_scaled(self):
        refresh = RefreshScheduler(DDR3_1600, 1, 64 * 1024)
        probe = RLTLProbe(DDR3_1600, refresh_schedulers={0: refresh},
                          time_scale=64.0)
        refresh.on_refresh_issued(0, 0)
        gap = DDR3_1600.ms_to_cycles(4.0)  # 4 ms later (within 8 ms)
        probe.on_activate(0, 0, 0, row=0, cycle=gap)
        assert probe.refresh_fraction(8.0) == 1.0

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            RLTLProbe(DDR3_1600, time_scale=0.0)


class TestBookkeeping:
    def test_mean_gap(self, probe):
        probe.on_precharge(0, 0, 0, 5, 0)
        probe.on_activate(0, 0, 0, 5, 800)  # 1 us
        assert probe.mean_gap_ms == pytest.approx(1e-3)

    def test_mean_gap_none_when_all_cold(self, probe):
        probe.on_activate(0, 0, 0, 5, 0)
        assert probe.mean_gap_ms is None

    def test_reset_keeps_precharge_history(self, probe):
        probe.on_precharge(0, 0, 0, 5, 0)
        probe.reset()
        probe.on_activate(0, 0, 0, 5, 10)
        assert probe.cold_activations == 0
        assert probe.rltl(0.125) == 1.0
