"""Tests for the row-reuse-distance profiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.reuse import RowReuseProfiler


def activate_rows(profiler, rows):
    distances = []
    for row in rows:
        distances.append(profiler.on_activate(0, 0, 0, row))
    return distances


class TestStackDistance:
    def test_cold_activations(self):
        p = RowReuseProfiler()
        assert activate_rows(p, [1, 2, 3]) == [None, None, None]
        assert p.cold == 3
        assert p.distinct_rows() == 3

    def test_immediate_reuse_is_distance_zero(self):
        p = RowReuseProfiler()
        assert activate_rows(p, [5, 5]) == [None, 0]

    def test_interleaved_distance(self):
        p = RowReuseProfiler()
        # 1, 2, 3, then 1 again: two distinct rows in between.
        assert activate_rows(p, [1, 2, 3, 1]) == [None, None, None, 2]

    def test_banks_are_distinct_rows(self):
        p = RowReuseProfiler()
        p.on_activate(0, 0, 0, 7)
        assert p.on_activate(0, 0, 1, 7) is None  # other bank

    def test_histogram(self):
        p = RowReuseProfiler()
        activate_rows(p, [1, 2, 1, 2, 1])
        assert p.histogram == {1: 3}


class TestHitRatePrediction:
    def test_lru_inclusion(self):
        """Bigger capacity never predicts a lower hit rate."""
        p = RowReuseProfiler()
        activate_rows(p, [1, 2, 3, 1, 4, 2, 5, 1, 2, 3])
        curve = p.hit_rate_curve((1, 2, 4, 8))
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates)

    def test_prediction_matches_direct_lru(self):
        """Prediction equals an actual fully-associative LRU table."""
        import numpy as np
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 30, size=500)
        p = RowReuseProfiler()
        capacity = 8
        # Direct simulation of an LRU table of `capacity` rows.
        from collections import OrderedDict
        table = OrderedDict()
        hits = 0
        for row in rows:
            key = int(row)
            p.on_activate(0, 0, 0, key)
            if key in table:
                hits += 1
                table.move_to_end(key)
            else:
                if len(table) >= capacity:
                    table.popitem(last=False)
                table[key] = None
        assert p.predicted_hit_rate(capacity) == \
            pytest.approx(hits / len(rows))

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RowReuseProfiler().predicted_hit_rate(0)

    def test_empty_profiler(self):
        assert RowReuseProfiler().predicted_hit_rate(8) == 0.0


class TestStatistics:
    def test_median(self):
        p = RowReuseProfiler()
        activate_rows(p, [1, 2, 1, 2, 3, 1])
        # Distances: 1 (row1), 1 (row2), 2 (row1) -> median 1.
        assert p.median_reuse_distance() == 1

    def test_median_none_when_cold_only(self):
        p = RowReuseProfiler()
        activate_rows(p, [1, 2, 3])
        assert p.median_reuse_distance() is None

    def test_reset(self):
        p = RowReuseProfiler()
        activate_rows(p, [1, 1])
        p.reset()
        assert p.activations == 0
        assert p.predicted_hit_rate(4) == 0.0

    @given(st.lists(st.integers(0, 20), max_size=300))
    @settings(max_examples=60)
    def test_accounting_consistent(self, rows):
        p = RowReuseProfiler()
        activate_rows(p, rows)
        assert p.activations == len(rows)
        assert p.cold == p.distinct_rows()
        assert p.cold + sum(p.histogram.values()) == p.activations
