"""Unit tests for request queues."""

import pytest

from repro.controller.queues import RequestQueue
from repro.controller.request import read_request, write_request


class TestCapacity:
    def test_push_until_full(self):
        q = RequestQueue(2)
        assert q.push(read_request(1), 0)
        assert q.push(read_request(2), 0)
        assert q.is_full
        assert not q.push(read_request(3), 0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RequestQueue(0)


class TestOrdering:
    def test_iteration_is_arrival_order(self):
        q = RequestQueue(8)
        for line in (5, 3, 9):
            q.push(read_request(line), 0)
        assert [r.line_address for r in q] == [5, 3, 9]

    def test_remove_preserves_order(self):
        q = RequestQueue(8)
        reqs = [read_request(i) for i in range(3)]
        for r in reqs:
            q.push(r, 0)
        q.remove(reqs[1])
        assert [r.line_address for r in q] == [0, 2]


class TestIndexing:
    def test_find_line(self):
        q = RequestQueue(8)
        req = write_request(7)
        q.push(req, 0)
        assert q.find_line(7) is req
        assert q.find_line(8) is None

    def test_coalesce_write(self):
        q = RequestQueue(8)
        q.push(write_request(7), 0)
        assert q.coalesce_write(7)
        assert q.coalesced == 1
        assert not q.coalesce_write(8)

    def test_read_does_not_coalesce(self):
        q = RequestQueue(8)
        q.push(read_request(7), 0)
        assert not q.coalesce_write(7)

    def test_requests_for_row(self):
        q = RequestQueue(8)
        a, b = read_request(1), read_request(2)
        a.rank, a.bank, a.row = 0, 1, 42
        b.rank, b.bank, b.row = 0, 1, 42
        q.push(a, 0)
        q.push(b, 0)
        assert q.requests_for_row(0, 1, 42) == 2
        assert q.requests_for_row(0, 1, 43) == 0


class TestStats:
    def test_enqueue_cycle_recorded(self):
        q = RequestQueue(4)
        req = read_request(1)
        q.push(req, 77)
        assert req.enqueue_cycle == 77

    def test_occupancy_sampling(self):
        q = RequestQueue(4)
        q.push(read_request(1), 0)
        q.sample_occupancy()
        q.push(read_request(2), 0)
        q.sample_occupancy()
        assert q.average_occupancy == pytest.approx(1.5)
        assert q.occupancy_fraction() == pytest.approx(0.5)
