"""Unit tests for FR-FCFS and FCFS scheduling."""

import pytest

from repro.controller.queues import RequestQueue
from repro.controller.request import read_request, write_request
from repro.controller.scheduler import (
    FCFSScheduler,
    FRFCFSScheduler,
    make_scheduler,
)
from repro.dram.channel import Channel
from repro.dram.commands import Command
from repro.dram.timing import DDR3_1600


@pytest.fixture
def channel():
    return Channel(DDR3_1600, num_ranks=1, num_banks=8)


def queued(*coords):
    """Build a queue of read requests at (rank, bank, row) coords."""
    q = RequestQueue(16)
    for i, (rank, bank, row) in enumerate(coords):
        req = read_request(i)
        req.rank, req.bank, req.row = rank, bank, row
        req.channel = 0
        q.push(req, 0)
    return q


class TestFRFCFS:
    def test_closed_bank_gets_act(self, channel):
        q = queued((0, 0, 5))
        decision = FRFCFSScheduler().choose(q, channel, 0)
        assert decision.command is Command.ACT
        assert decision.request.row == 5

    def test_row_hit_prioritised_over_older_conflict(self, channel):
        channel.issue_activate(0, 0, 5, 0)
        ready = DDR3_1600.tRCD
        # Oldest request conflicts (row 9); younger hits row 5.
        q = queued((0, 0, 9), (0, 0, 5))
        decision = FRFCFSScheduler().choose(q, channel, ready)
        assert decision.command is Command.RD
        assert decision.request.row == 5

    def test_conflict_triggers_precharge(self, channel):
        channel.issue_activate(0, 0, 5, 0)
        q = queued((0, 0, 9))
        at = DDR3_1600.tRAS
        decision = FRFCFSScheduler().choose(q, channel, at)
        assert decision.command is Command.PRE

    def test_nothing_ready_returns_none(self, channel):
        channel.issue_activate(0, 0, 5, 0)
        q = queued((0, 0, 9))  # conflict, but tRAS not yet satisfied
        assert FRFCFSScheduler().choose(q, channel, 1) is None

    def test_blocked_rank_skipped(self, channel):
        q = queued((0, 0, 5))
        decision = FRFCFSScheduler().choose(q, channel, 0,
                                            blocked_ranks={0})
        assert decision is None

    def test_oldest_ready_wins_among_misses(self, channel):
        q = queued((0, 1, 7), (0, 2, 8))
        decision = FRFCFSScheduler().choose(q, channel, 0)
        assert decision.request.bank == 1  # arrival order

    def test_write_request_gets_wr(self, channel):
        channel.issue_activate(0, 0, 5, 0)
        q = RequestQueue(4)
        req = write_request(0)
        req.rank, req.bank, req.row, req.channel = 0, 0, 5, 0
        q.push(req, 0)
        decision = FRFCFSScheduler().choose(q, channel, DDR3_1600.tRCD)
        assert decision.command is Command.WR


class TestFCFS:
    def test_head_of_line_blocking(self, channel):
        channel.issue_activate(0, 0, 5, 0)
        # Head conflicts (can't PRE yet); a younger row hit exists but
        # FCFS refuses to reorder.
        q = queued((0, 0, 9), (0, 0, 5))
        assert FCFSScheduler().choose(q, channel, DDR3_1600.tRCD) is None

    def test_serves_head_when_ready(self, channel):
        q = queued((0, 3, 2))
        decision = FCFSScheduler().choose(q, channel, 0)
        assert decision.command is Command.ACT
        assert decision.request.bank == 3


class TestFactory:
    def test_make(self):
        assert isinstance(make_scheduler("frfcfs"), FRFCFSScheduler)
        assert isinstance(make_scheduler("fcfs"), FCFSScheduler)
        with pytest.raises(ValueError):
            make_scheduler("lottery")
