"""Property-based fuzzing of the memory controller.

Hypothesis generates arbitrary request streams (banks, rows, columns,
read/write mixes, arrival gaps); for every stream we assert:

* **liveness** - every accepted read eventually completes;
* **legality** - the issued command stream passes the independent
  DDR3 constraint checker (tests/helpers.py);
* **conservation** - counts of issued column commands match the
  accepted requests (writes may coalesce).

This complements the directed tests in test_controller.py with breadth.
"""

from hypothesis import given, settings, strategies as st

from repro.config import ChargeCacheConfig, ControllerConfig
from repro.controller.controller import MemoryController
from repro.controller.request import Request, RequestType
from repro.core.chargecache import ChargeCache
from repro.core.timing_policy import DefaultTiming
from repro.dram.timing import DDR3_1600

from tests.helpers import check_command_log

T = DDR3_1600

op_strategy = st.tuples(
    st.integers(0, 30),       # arrival gap (cycles)
    st.integers(0, 7),        # bank
    st.integers(0, 15),       # row
    st.integers(0, 7),        # column
    st.booleans(),            # is_write
)


def _build(mechanism, row_policy="open"):
    cfg = ControllerConfig(row_policy=row_policy)
    return MemoryController(0, T, num_ranks=1, num_banks=8,
                            rows_per_bank=4096, controller_config=cfg,
                            mechanism=mechanism, refresh_enabled=False,
                            log_commands=True)


def _drive(mc, ops):
    """Feed ops at their arrival times; run until drained."""
    completed = []
    cycle = 0
    accepted_reads = 0
    accepted_writes = 0
    for gap, bank, row, col, is_write in ops:
        target = cycle + gap
        while cycle < target:
            cycle += 1
            mc.tick(cycle)
        line = (row * 8 + bank) * 8 + col
        if is_write:
            req = Request(line, RequestType.WRITE, 0)
        else:
            req = Request(line, RequestType.READ, 0,
                          callback=completed.append)
        req.channel, req.rank, req.bank, req.row, req.column = \
            0, 0, bank, row, col
        if is_write:
            if mc.enqueue_write(req, cycle):
                accepted_writes += 1
        else:
            if mc.enqueue_read(req, cycle):
                accepted_reads += 1
    deadline = cycle + 20_000
    while mc.has_work and cycle < deadline:
        cycle += 1
        mc.tick(cycle)
    return completed, accepted_reads, accepted_writes, cycle


class TestFuzzedStreams:
    @given(st.lists(op_strategy, min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_baseline_liveness_and_legality(self, ops):
        mc = _build(DefaultTiming(T))
        completed, reads, writes, _ = _drive(mc, ops)
        assert len(completed) == reads, "every accepted read completes"
        check_command_log(mc.channel.command_log, T)

    @given(st.lists(op_strategy, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_chargecache_liveness_and_legality(self, ops):
        cc = ChargeCache(T, ChargeCacheConfig(time_scale=1024.0),
                         num_cores=1)
        mc = _build(cc)
        completed, reads, writes, _ = _drive(mc, ops)
        assert len(completed) == reads
        check_command_log(mc.channel.command_log, T)

    @given(st.lists(op_strategy, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_closed_row_policy_legality(self, ops):
        mc = _build(DefaultTiming(T), row_policy="closed")
        completed, reads, writes, _ = _drive(mc, ops)
        assert len(completed) == reads
        check_command_log(mc.channel.command_log, T)

    @given(st.lists(op_strategy, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_column_command_conservation(self, ops):
        mc = _build(DefaultTiming(T))
        completed, reads, writes, _ = _drive(mc, ops)
        # Forwarded reads never issue a DRAM RD.
        assert mc.channel.num_rds + mc.stats.forwards == reads
        # Writes may coalesce, never multiply.
        assert mc.channel.num_wrs <= writes

    @given(st.lists(op_strategy, min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_latency_ordering_base_vs_chargecache(self, ops):
        """ChargeCache never increases a stream's drain time by more
        than scheduling noise (it only relaxes constraints).

        The noise bound is one write-to-read turnaround plus a few
        command slots: an earlier PRE (reduced tRAS) can reshuffle
        which requests win FR-FCFS arbitration and insert one extra
        read/write turnaround into the tail of the stream.
        """
        mc_base = _build(DefaultTiming(T))
        _, _, _, end_base = _drive(mc_base, ops)
        cc = ChargeCache(T, ChargeCacheConfig(time_scale=1024.0), 1)
        mc_cc = _build(cc)
        _, _, _, end_cc = _drive(mc_cc, ops)
        assert end_cc <= end_base + 100
