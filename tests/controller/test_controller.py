"""Integration-style tests for the memory controller.

These drive a :class:`MemoryController` directly (no CPU) with a
baseline or ChargeCache mechanism and verify latencies, write
handling, row policies and refresh against first-principles cycle
counts.
"""

import pytest

from repro.config import ChargeCacheConfig, ControllerConfig
from repro.controller.controller import MemoryController
from repro.controller.request import Request, RequestType
from repro.core.chargecache import ChargeCache
from repro.core.timing_policy import DefaultTiming
from repro.dram.timing import DDR3_1600

T = DDR3_1600


def make_controller(row_policy="open", mechanism=None, refresh=False,
                    scheduler="frfcfs"):
    cfg = ControllerConfig(row_policy=row_policy, scheduler=scheduler)
    mech = mechanism or DefaultTiming(T)
    return MemoryController(0, T, num_ranks=1, num_banks=8,
                            rows_per_bank=4096, controller_config=cfg,
                            mechanism=mech, refresh_enabled=refresh,
                            log_commands=True)


def read_at(mc, line, rank=0, bank=0, row=0, col=0, cycle=0, core=0):
    done = []
    req = Request(line, RequestType.READ, core,
                  callback=lambda r: done.append(r))
    req.channel, req.rank, req.bank, req.row, req.column = \
        0, rank, bank, row, col
    assert mc.enqueue_read(req, cycle)
    return req, done


def write_at(mc, line, rank=0, bank=0, row=0, col=0, cycle=0, core=0):
    req = Request(line, RequestType.WRITE, core)
    req.channel, req.rank, req.bank, req.row, req.column = \
        0, rank, bank, row, col
    assert mc.enqueue_write(req, cycle)
    return req

def run_until(mc, predicate, start=1, limit=5000):
    cycle = start
    while cycle < limit:
        mc.tick(cycle)
        if predicate():
            return cycle
        cycle += 1
    raise AssertionError("condition not reached within limit")


class TestReadLatency:
    def test_row_miss_latency(self):
        """Closed bank: ACT + tRCD + tCL + tBL."""
        mc = make_controller()
        req, done = read_at(mc, line=1)
        run_until(mc, lambda: done)
        # ACT at cycle 1, RD at 1+tRCD, data at RD+tCL+tBL, callback
        # fires on the following tick.
        expected_done = 1 + T.tRCD + T.tCL + T.tBL
        assert req.done_cycle == expected_done
        assert req.needed_act

    def test_row_hit_latency(self):
        """Second read to the same row skips the activation."""
        mc = make_controller()
        req1, done1 = read_at(mc, line=1, row=7)
        run_until(mc, lambda: done1)
        req2, done2 = read_at(mc, line=2, row=7, col=1,
                              cycle=req1.done_cycle)
        run_until(mc, lambda: done2, start=req1.done_cycle)
        assert not req2.needed_act
        service = req2.done_cycle - req2.enqueue_cycle
        assert service <= T.tCL + T.tBL + 2
        assert mc.stats.read_row_hits == 1

    def test_row_conflict_latency(self):
        """Conflict: PRE + tRP + ACT + tRCD + data."""
        mc = make_controller()
        req1, done1 = read_at(mc, line=1, row=7)
        run_until(mc, lambda: done1)
        start = req1.done_cycle
        req2, done2 = read_at(mc, line=2, row=8, cycle=start)
        run_until(mc, lambda: done2, start=start)
        # The PRE cannot issue before tRAS from the first ACT (cycle 1).
        pre_cycle = max(start + 1, 1 + T.tRAS)
        expected = pre_cycle + T.tRP + T.tRCD + T.tCL + T.tBL
        assert req2.done_cycle == expected

    def test_chargecache_hit_shortens_conflict(self):
        """Re-activating a recently precharged row saves 4 tRCD cycles."""
        def conflict_latency(mech):
            mc = make_controller(mechanism=mech)
            # Open row 7, then conflict with row 8, then return to 7.
            r1, d1 = read_at(mc, 1, row=7)
            run_until(mc, lambda: d1)
            r2, d2 = read_at(mc, 2, row=8, cycle=r1.done_cycle)
            run_until(mc, lambda: d2, start=r1.done_cycle)
            r3, d3 = read_at(mc, 3, row=7, cycle=r2.done_cycle)
            run_until(mc, lambda: d3, start=r2.done_cycle)
            return r3.done_cycle - r3.enqueue_cycle, r3

        base_latency, base_req = conflict_latency(DefaultTiming(T))
        cc = ChargeCache(T, ChargeCacheConfig(), num_cores=1)
        cc_latency, cc_req = conflict_latency(cc)
        assert cc_req.act_was_hit
        assert not base_req.act_was_hit
        assert base_latency - cc_latency == 4  # tRCD reduction


class TestWrites:
    def test_write_drains_when_read_queue_empty(self):
        mc = make_controller()
        write_at(mc, line=1)
        run_until(mc, lambda: mc.stats.writes == 1)

    def test_write_coalescing(self):
        mc = make_controller()
        write_at(mc, line=1)
        w2 = Request(1, RequestType.WRITE, 0)
        w2.channel, w2.rank, w2.bank, w2.row, w2.column = 0, 0, 0, 0, 0
        mc.enqueue_write(w2, 0)
        assert len(mc.write_q) == 1
        assert mc.write_q.coalesced == 1

    def test_read_forwarded_from_write_queue(self):
        mc = make_controller()
        write_at(mc, line=9)
        req, done = read_at(mc, line=9)
        run_until(mc, lambda: done)
        assert req.done_cycle - req.enqueue_cycle == 1
        assert mc.stats.forwards == 1
        assert mc.stats.reads == 0  # never touched DRAM

    def test_high_watermark_triggers_drain(self):
        mc = make_controller()
        # Keep the read queue busy while writes pile past the mark.
        for i in range(52):  # high watermark = 0.8 * 64 = 51
            write_at(mc, line=100 + i, row=i % 4, bank=i % 8)
        read_at(mc, line=1, row=2000 % 4096)
        run_until(mc, lambda: mc.stats.writes > 0)


class TestRowPolicies:
    def test_open_policy_leaves_row_open(self):
        mc = make_controller(row_policy="open")
        req, done = read_at(mc, 1, row=5)
        run_until(mc, lambda: done)
        mc.tick(req.done_cycle + 1)
        assert mc.channel.bank(0, 0).is_open(5)
        assert mc.stats.precharges == 0

    def test_closed_policy_precharges_idle_row(self):
        mc = make_controller(row_policy="closed")
        req, done = read_at(mc, 1, row=5)
        run_until(mc, lambda: mc.stats.precharges == 1)
        assert not mc.channel.bank(0, 0).is_open()

    def test_closed_policy_waits_for_queued_hits(self):
        mc = make_controller(row_policy="closed")
        read_at(mc, 1, row=5, col=0)
        read_at(mc, 2, row=5, col=1)
        run_until(mc, lambda: mc.stats.reads == 2)
        # Both hits serviced from one activation.
        assert mc.stats.activations == 1


class TestRefresh:
    def test_refresh_issues_at_trefi(self):
        mc = make_controller(refresh=True)
        run_until(mc, lambda: mc.stats.refreshes == 1, limit=T.tREFI + 200)

    def test_refresh_closes_open_rows_first(self):
        mc = make_controller(refresh=True)
        req, done = read_at(mc, 1, row=5)
        run_until(mc, lambda: done)
        run_until(mc, lambda: mc.stats.refreshes == 1,
                  start=req.done_cycle, limit=T.tREFI + 500)
        assert mc.stats.precharges >= 1

    def test_reads_resume_after_refresh(self):
        mc = make_controller(refresh=True)
        run_until(mc, lambda: mc.stats.refreshes == 1, limit=T.tREFI + 200)
        req, done = read_at(mc, 1, cycle=T.tREFI + 300)
        run_until(mc, lambda: done, start=T.tREFI + 300,
                  limit=T.tREFI + 1000)


class TestMechanismWiring:
    def test_insert_on_pre_lookup_on_act(self):
        cc = ChargeCache(T, ChargeCacheConfig(), num_cores=1)
        mc = make_controller(mechanism=cc)
        r1, d1 = read_at(mc, 1, row=7)
        run_until(mc, lambda: d1)
        r2, d2 = read_at(mc, 2, row=8, cycle=r1.done_cycle)
        run_until(mc, lambda: d2, start=r1.done_cycle)
        assert cc.insertions == 1  # row 7 inserted when precharged
        r3, d3 = read_at(mc, 3, row=7, cycle=r2.done_cycle)
        run_until(mc, lambda: d3, start=r2.done_cycle)
        assert cc.hits == 1

    def test_stats_reset(self):
        mc = make_controller()
        req, done = read_at(mc, 1)
        run_until(mc, lambda: done)
        mc.reset_stats(req.done_cycle)
        assert mc.stats.reads == 0
        assert mc.active_cycles(req.done_cycle) == 0


class TestErrors:
    def test_wrong_channel_rejected(self):
        mc = make_controller()
        req = Request(1, RequestType.READ, 0)
        req.channel = 3
        with pytest.raises(ValueError):
            mc.enqueue_read(req, 0)

    def test_full_read_queue_rejects(self):
        mc = make_controller()
        for i in range(64):
            req = Request(i, RequestType.READ, 0)
            req.channel, req.rank, req.bank, req.row, req.column = \
                0, 0, i % 8, i, 0
            assert mc.enqueue_read(req, 0)
        req = Request(999, RequestType.READ, 0)
        req.channel, req.rank, req.bank, req.row, req.column = 0, 0, 0, 9, 0
        assert not mc.enqueue_read(req, 0)
