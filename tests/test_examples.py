"""Sanity checks on the example scripts.

Full example runs take seconds to minutes, so the test suite verifies
that each script compiles, has a docstring and a main() entry, and
that its imports resolve (executing only the module top level would
trigger simulations for none of them - all work happens in main()).
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
class TestExampleScripts:
    def test_compiles(self, path):
        source = path.read_text()
        compile(source, str(path), "exec")

    def test_has_docstring_and_main(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} needs a docstring"
        names = {node.name for node in tree.body
                 if isinstance(node, ast.FunctionDef)}
        assert "main" in names, f"{path.name} needs a main()"

    def test_guarded_entry_point(self, path):
        assert 'if __name__ == "__main__":' in path.read_text()

    def test_imports_resolve(self, path):
        """Top-level imports must point at real modules."""
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    assert importlib.util.find_spec(alias.name) is not None
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                assert importlib.util.find_spec(node.module) is not None, \
                    f"{path.name}: cannot import {node.module}"
