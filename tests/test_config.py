"""Unit tests for configuration validation and paper defaults."""

import pytest

from repro.config import (
    CacheConfig,
    ChargeCacheConfig,
    ControllerConfig,
    DRAMConfig,
    MECHANISMS,
    ProcessorConfig,
    SimulationConfig,
    eight_core_config,
    single_core_config,
)


class TestPaperDefaults:
    def test_single_core_matches_table1(self):
        cfg = single_core_config()
        assert cfg.processor.num_cores == 1
        assert cfg.dram.channels == 1
        assert cfg.controller.row_policy == "open"

    def test_eight_core_matches_table1(self):
        cfg = eight_core_config()
        assert cfg.processor.num_cores == 8
        assert cfg.dram.channels == 2
        assert cfg.controller.row_policy == "closed"

    def test_processor_row(self):
        p = ProcessorConfig()
        assert (p.freq_ghz, p.issue_width, p.mshrs_per_core,
                p.window_size) == (4.0, 3, 8, 128)

    def test_llc_row(self):
        c = CacheConfig()
        assert c.size_bytes == 4 * 1024 * 1024
        assert c.associativity == 16
        assert c.line_bytes == 64
        assert c.num_sets == 4096

    def test_dram_row(self):
        d = DRAMConfig()
        assert d.banks_per_rank == 8
        assert d.rows_per_bank == 64 * 1024
        assert d.row_buffer_bytes == 8 * 1024
        assert d.columns_per_row == 128

    def test_chargecache_row(self):
        cc = ChargeCacheConfig()
        assert cc.entries == 128
        assert cc.associativity == 2
        assert cc.caching_duration_ms == 1.0
        assert (cc.trcd_reduction_cycles, cc.tras_reduction_cycles) == (4, 8)

    def test_clock_ratio(self):
        assert SimulationConfig().cpu_cycles_per_mem_cycle == 5


class TestValidation:
    def test_all_mechanisms_accepted(self):
        for mech in MECHANISMS:
            single_core_config(mech).validate()

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            single_core_config("turbo")

    def test_bad_processor(self):
        with pytest.raises(ValueError):
            ProcessorConfig(num_cores=0).validate()
        with pytest.raises(ValueError):
            ProcessorConfig(window_size=0).validate()

    def test_bad_cache(self):
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=48).validate()
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000).validate()

    def test_bad_controller(self):
        with pytest.raises(ValueError):
            ControllerConfig(scheduler="magic").validate()
        with pytest.raises(ValueError):
            ControllerConfig(write_low_watermark=0.9,
                             write_high_watermark=0.5).validate()

    def test_bad_chargecache(self):
        with pytest.raises(ValueError):
            ChargeCacheConfig(entries=100, associativity=3).validate()
        with pytest.raises(ValueError):
            ChargeCacheConfig(caching_duration_ms=0).validate()
        with pytest.raises(ValueError):
            ChargeCacheConfig(sharing="global").validate()
        with pytest.raises(ValueError):
            ChargeCacheConfig(time_scale=0).validate()

    def test_bad_row_policy(self):
        with pytest.raises(ValueError):
            ControllerConfig(row_policy="adaptive").validate()


class TestMutation:
    def test_with_mechanism_copy(self):
        base = single_core_config("none")
        cc = base.with_mechanism("chargecache")
        assert base.mechanism == "none"
        assert cc.mechanism == "chargecache"
        assert cc.dram == base.dram

    def test_overrides_via_kwargs(self):
        cfg = single_core_config(instruction_limit=123, seed=9)
        assert cfg.instruction_limit == 123
        assert cfg.seed == 9
