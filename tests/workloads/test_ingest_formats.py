"""External-trace and gem5-stats parsers: format contract tests.

The malformed-input sweep pins the *exact* error text: ingestion
failures must point at the offending file and line, so a corrupted
multi-gigabyte trace fails with a grep-able location instead of a
generic ValueError deep in normalization.
"""

import math
import os

import pytest

from repro.workloads.ingest import (
    MemTraceRecord,
    TraceFormatError,
    iter_mem_trace,
    read_gem5_stats,
    read_mem_trace,
    write_mem_trace,
)
from repro.workloads.ingest.formats import stats_sanity

from tests.helpers import tiny_trace, write_trace

FIXTURES = os.path.join(os.path.dirname(__file__), os.pardir,
                        "fixtures", "traces")


class TestMemTraceParsing:
    def test_reads_what_write_wrote(self, tmp_path):
        records = tiny_trace(16)
        path = write_trace(tmp_path / "t.trace", records)
        assert read_mem_trace(path) == records

    def test_decimal_and_hex_addresses(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("5 4096 R\n6 0x1040 W\n")
        assert read_mem_trace(str(path)) == [
            MemTraceRecord(5, 4096, False),
            MemTraceRecord(6, 0x1040, True),
        ]

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\n  \n1 0x40 R\n# tail\n")
        assert len(read_mem_trace(str(path))) == 1

    def test_equal_cycles_are_legal(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("7 0x0 R\n7 0x40 W\n")
        assert [r.cycle for r in read_mem_trace(str(path))] == [7, 7]

    def test_streaming_iterator_is_lazy(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 0x0 R\n0 0x40 R\n")  # line 2 is bad
        it = iter_mem_trace(str(path))
        assert next(it) == MemTraceRecord(1, 0, False)
        with pytest.raises(TraceFormatError):
            next(it)

    def test_bundled_fixtures_parse(self):
        for name in ("streaming", "pingpong", "hotrow", "scattered"):
            records = read_mem_trace(f"{FIXTURES}/{name}.trace")
            assert len(records) >= 500
            cycles = [r.cycle for r in records]
            assert cycles == sorted(cycles)


class TestMalformedTraces:
    """Every rejection names the file, the line, and the precise
    reason."""

    def _err(self, tmp_path, text):
        path = tmp_path / "bad.trace"
        path.write_text(text)
        with pytest.raises(TraceFormatError) as info:
            read_mem_trace(str(path))
        return path, info.value

    def test_truncated_line(self, tmp_path):
        path, err = self._err(tmp_path, "1 0x40 R\n2 0x80\n")
        assert str(err) == (f"{path}:2: expected '<cycle> <address> "
                            f"<R|W>', got 2 field(s): '2 0x80'")
        assert (err.path, err.line_no) == (str(path), 2)

    def test_too_many_fields(self, tmp_path):
        _, err = self._err(tmp_path, "1 0x40 R W\n")
        assert "got 4 field(s)" in str(err)

    def test_bad_cycle(self, tmp_path):
        path, err = self._err(tmp_path, "one 0x40 R\n")
        assert str(err) == f"{path}:1: bad cycle 'one'"

    def test_negative_cycle(self, tmp_path):
        _, err = self._err(tmp_path, "-3 0x40 R\n")
        assert "bad cycle '-3' (must be non-negative)" in str(err)

    def test_bad_hex_address(self, tmp_path):
        path, err = self._err(tmp_path, "1 0xZZ R\n")
        assert str(err) == f"{path}:1: bad address '0xZZ'"

    def test_bad_op(self, tmp_path):
        path, err = self._err(tmp_path, "1 0x40 X\n")
        assert str(err) == f"{path}:1: bad op 'X' (expected R or W)"

    def test_lowercase_op_rejected(self, tmp_path):
        _, err = self._err(tmp_path, "1 0x40 r\n")
        assert "bad op 'r'" in str(err)

    def test_non_monotonic_cycles(self, tmp_path):
        path, err = self._err(tmp_path, "9 0x0 R\n8 0x40 R\n")
        assert str(err) == f"{path}:2: non-monotonic cycle 8 after 9"

    def test_empty_file(self, tmp_path):
        path, err = self._err(tmp_path, "")
        assert str(err) == f"{path}: no records"
        assert err.line_no is None

    def test_comments_only_is_empty(self, tmp_path):
        _, err = self._err(tmp_path, "# nothing here\n\n")
        assert err.reason == "no records"

    def test_error_is_a_value_error(self, tmp_path):
        # Callers that guard with ValueError keep working.
        path = tmp_path / "bad.trace"
        path.write_text("x\n")
        with pytest.raises(ValueError):
            read_mem_trace(str(path))


class TestGem5Stats:
    def test_bundled_fixture_first_snapshot(self):
        stats = read_gem5_stats(f"{FIXTURES}/gem5_stats.txt")
        assert stats["system.cpu.numCycles"] == 4_000_000
        assert stats["system.mem_ctrls.readBursts"] == 90_000
        # Percent values come back as fractions.
        assert stats["system.mem_ctrls.readRowHitRate"] == \
            pytest.approx(0.70)

    def test_snapshot_selection(self):
        last = read_gem5_stats(f"{FIXTURES}/gem5_stats.txt", snapshot=-1)
        assert last["system.cpu.numCycles"] == 8_000_000

    def test_sanity_extraction(self):
        stats = read_gem5_stats(f"{FIXTURES}/gem5_stats.txt")
        sane = stats_sanity(stats)
        assert sane["row_hit_rate"] == pytest.approx(0.70)
        assert sane["activations"] == pytest.approx(30_000)
        assert sane["cpu_cycles"] == pytest.approx(4_000_000)

    def test_markerless_dump_is_one_snapshot(self, tmp_path):
        path = tmp_path / "stats.txt"
        path.write_text("sim_ticks 100\nnumCycles 50\n")
        assert read_gem5_stats(str(path)) == \
            {"sim_ticks": 100.0, "numCycles": 50.0}

    def test_nan_value(self, tmp_path):
        path = tmp_path / "stats.txt"
        path.write_text("a nan\nb 1\n")
        stats = read_gem5_stats(str(path))
        assert math.isnan(stats["a"])

    def test_bad_value(self, tmp_path):
        path = tmp_path / "stats.txt"
        path.write_text("sim_ticks banana\n")
        with pytest.raises(TraceFormatError) as info:
            read_gem5_stats(str(path))
        assert str(info.value) == \
            f"{path}:1: bad stat value 'banana' for 'sim_ticks'"

    def test_snapshot_out_of_range(self):
        with pytest.raises(TraceFormatError,
                           match=r"snapshot 5 out of range "
                                 r"\(2 snapshot\(s\) in file\)"):
            read_gem5_stats(f"{FIXTURES}/gem5_stats.txt", snapshot=5)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "stats.txt"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="no statistics"):
            read_gem5_stats(str(path))

    def test_empty_snapshot(self, tmp_path):
        path = tmp_path / "stats.txt"
        path.write_text("---------- Begin Simulation Statistics ----\n"
                        "---------- End Simulation Statistics   ----\n")
        with pytest.raises(TraceFormatError,
                           match="empty statistics snapshot"):
            read_gem5_stats(str(path))


class TestWriter:
    def test_write_returns_count_and_hex(self, tmp_path):
        path = tmp_path / "w.trace"
        n = write_mem_trace(str(path),
                            [MemTraceRecord(3, 4096, True)])
        assert n == 1
        assert path.read_text() == "3 0x1000 W\n"
