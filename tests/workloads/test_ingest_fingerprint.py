"""Normalization and fingerprint math: golden values, round-trips,
property-based codec tests, and the reference-table contract."""

import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import TraceRecord
from repro.dram.organization import Organization
from repro.workloads.ingest import (
    MemTraceRecord,
    TraceFormatError,
    WorkloadFingerprint,
    denormalize_records,
    fingerprint_file,
    fingerprint_records,
    fingerprint_workload,
    ingest_trace_file,
    normalize_records,
    read_mem_trace,
    trace_file_sha256,
    write_mem_trace,
)
from repro.workloads.ingest.reference import (
    PAPER_AVG_RLTL_1MS,
    REFERENCE_FINGERPRINTS,
    REFERENCE_INTERVAL_MS,
    fingerprint_delta,
    reference_for,
)
from repro.workloads.spec_like import WORKLOAD_NAMES

from tests.helpers import tiny_trace, write_trace

FIXTURES = os.path.join(os.path.dirname(__file__), os.pardir,
                        "fixtures", "traces")

#: One bank, so the golden-value bank model is trivial to hand-walk:
#: line = row * 4 + column.
ONE_BANK = Organization(channels=1, ranks=1, banks=1, rows=8, columns=4)


class TestNormalization:
    def test_gap_to_bubbles(self):
        records = [MemTraceRecord(4, 0x40, False),
                   MemTraceRecord(5, 0x80, True),
                   MemTraceRecord(25, 0x00, False)]
        internal = normalize_records(records, ONE_BANK)
        # Gaps 4, 1, 20 -> bubbles max(0, gap-1) = 3, 0, 19.
        assert internal == [TraceRecord(3, 1, False),
                            TraceRecord(0, 2, True),
                            TraceRecord(19, 0, False)]

    def test_addresses_wrap_to_modelled_capacity(self):
        capacity_bytes = ONE_BANK.total_lines * ONE_BANK.line_bytes
        records = [MemTraceRecord(1, capacity_bytes + 0x40, False)]
        internal = normalize_records(records, ONE_BANK)
        assert internal[0].line_address == 1

    def test_cpi_scales_time(self):
        records = [MemTraceRecord(8, 0x0, False)]
        assert normalize_records(records, ONE_BANK)[0].bubbles == 7
        assert normalize_records(
            records, ONE_BANK,
            cycles_per_instruction=4.0)[0].bubbles == 1

    def test_bad_cpi(self):
        with pytest.raises(ValueError, match="cycles_per_instruction"):
            normalize_records([], ONE_BANK, cycles_per_instruction=0)

    def test_denormalize_inverts_at_cpi_1(self):
        records = tiny_trace(20, gap=3, stride=64)
        internal = normalize_records(records, Organization())
        assert denormalize_records(internal, Organization()) == records


class TestIngestFile:
    def test_ingest_matches_manual_pipeline(self, tmp_path):
        path = write_trace(tmp_path / "t.trace", n=24)
        org = Organization()
        assert ingest_trace_file(path, org) == \
            normalize_records(read_mem_trace(path), org)

    def test_hash_verification(self, tmp_path):
        path = write_trace(tmp_path / "t.trace", n=8)
        good = trace_file_sha256(path)
        assert ingest_trace_file(path, Organization(),
                                 expected_sha256=good)
        with open(path, "a") as fh:
            fh.write("999 0x40 R\n")
        with pytest.raises(TraceFormatError,
                           match="content hash mismatch"):
            ingest_trace_file(path, Organization(), expected_sha256=good)


class TestFingerprintGoldenValues:
    """Hand-walked bank model on the one-bank organization."""

    def test_basic_counters(self):
        # line 0 (row0)  -> cold ACT;  line 1 (row0) -> row hit;
        # line 4 (row1)  -> precharge row0 @now=3, cold ACT;
        # line 0 (row0)  -> precharge row1 @now=4, ACT with
        #                   prev-precharge gap 4-3 = 1 cycle.
        records = [TraceRecord(0, 0, False), TraceRecord(0, 1, False),
                   TraceRecord(0, 4, True), TraceRecord(0, 0, False)]
        fp = fingerprint_records(records, ONE_BANK, name="golden")
        assert fp.records == 4
        assert fp.instructions == 4        # IPC=1: bubbles+1 each
        assert fp.activations == 3
        assert fp.cold_activations == 2
        assert fp.row_hits == 1
        assert fp.writes == 1
        assert fp.footprint_lines == 3
        assert fp.row_hit_rate == pytest.approx(0.25)
        assert fp.rmpkc == pytest.approx(3 * 1000 / 4)
        assert fp.write_fraction == pytest.approx(0.25)
        # Gap 1 cycle is inside every tracked interval; cold ACTs stay
        # in the denominator.
        for ms, value in fp.rltl_series():
            assert value == pytest.approx(1 / 3), ms

    def test_interval_edges_exclude_long_gaps(self):
        # time_scale 125000 at 4 GHz puts the 0.125 ms edge at exactly
        # round(0.125/125000 * 1e6 * 4) = 4 CPU cycles.
        records = [TraceRecord(0, 0, False),   # now=1 cold ACT row0
                   TraceRecord(0, 4, False),   # now=2 pre row0, cold ACT
                   TraceRecord(0, 0, False),   # now=3 pre row1, gap 1 ok
                   TraceRecord(5, 4, False)]   # now=9 pre row0, gap 6 > 4
        fp = fingerprint_records(records, ONE_BANK,
                                 intervals_ms=(0.125,),
                                 time_scale=125000.0, cpu_freq_ghz=4.0)
        assert fp.activations == 4
        assert fp.cold_activations == 2
        assert fp.rltl_counts == (1,)
        assert fp.rltl(0.125) == pytest.approx(0.25)

    def test_untracked_interval_is_an_error(self):
        fp = fingerprint_records([TraceRecord(0, 0, False)], ONE_BANK)
        with pytest.raises(KeyError, match="not tracked"):
            fp.rltl(7.0)

    def test_empty_stream(self):
        fp = fingerprint_records([], ONE_BANK)
        assert fp.records == 0
        assert fp.row_hit_rate == 0.0
        assert fp.rmpkc == 0.0
        assert fp.rltl(REFERENCE_INTERVAL_MS) == 0.0

    def test_json_roundtrip(self):
        fp = fingerprint_workload("mcf", num_records=500)
        data = fp.to_json()
        assert data["rmpkc"] == pytest.approx(fp.rmpkc)
        assert WorkloadFingerprint.from_json(data) == fp


class TestFingerprintDeterminism:
    def test_workload_fingerprint_is_reproducible(self):
        a = fingerprint_workload("libquantum", num_records=2000)
        b = fingerprint_workload("libquantum", num_records=2000)
        assert a == b

    def test_limit_truncates(self):
        a = fingerprint_workload("mcf", num_records=500)
        assert a.records == 500

    def test_file_fingerprint_named_after_stem(self):
        fp = fingerprint_file(os.path.join(FIXTURES, "pingpong.trace"))
        assert fp.name == "pingpong"
        assert fp.rltl(1.0) > 0.9          # ChargeCache's best case
        assert fp.row_hit_rate < 0.05


class TestReferenceTable:
    def test_covers_every_workload(self):
        assert set(REFERENCE_FINGERPRINTS) == set(WORKLOAD_NAMES)

    def test_every_workload_calibrates_against_its_reference(self):
        # The regression anchor itself: measured fingerprints at the
        # provenance point must sit inside the tolerances.
        for name in WORKLOAD_NAMES:
            fp = fingerprint_workload(name)
            delta = fingerprint_delta(fp, reference_for(name))
            assert delta["status"] == "ok", (name, delta)

    def test_average_rltl_tracks_paper_figure_4a(self):
        avg = sum(ref["rltl_1ms"]
                  for ref in REFERENCE_FINGERPRINTS.values()) \
            / len(REFERENCE_FINGERPRINTS)
        assert abs(avg - PAPER_AVG_RLTL_1MS) < 0.15

    def test_mcf_and_omnetpp_have_weakest_locality(self):
        # Paper Section 6.1: mcf/omnetpp benefit least from
        # ChargeCache because their RLTL is lowest.  mcf is the
        # weakest outright; omnetpp lands in the bottom three (sjeng's
        # generator sits marginally below it).
        ordered = sorted(REFERENCE_FINGERPRINTS,
                         key=lambda n:
                         REFERENCE_FINGERPRINTS[n]["rltl_1ms"])
        assert ordered[0] == "mcf"
        assert "omnetpp" in ordered[:3]

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="no reference fingerprint"):
            reference_for("nosuch")

    def test_delta_flags_drift(self):
        fp = fingerprint_workload("hmmer")
        ref = dict(reference_for("hmmer"))
        ref["rltl_1ms"] = max(0.0, ref["rltl_1ms"] - 0.5)
        assert fingerprint_delta(fp, ref)["status"] == "drift"


# ----------------------------------------------------------------------
# Property-based codec round-trips
# ----------------------------------------------------------------------

_orgs = st.sampled_from([
    Organization(),                                     # paper default
    Organization(banks=4, rows=256, columns=16),
    Organization(channels=2, ranks=2, banks=8, rows=128, columns=32,
                 mapping="RoRaBaChCo"),
    Organization(channels=2, ranks=1, banks=4, rows=64, columns=16,
                 mapping="ChRaBaRoCo"),
])


@st.composite
def _mem_traces(draw):
    """Non-empty record lists with non-decreasing cycles."""
    gaps = draw(st.lists(st.integers(min_value=0, max_value=500),
                         min_size=1, max_size=60))
    cycle = 0
    records = []
    for gap in gaps:
        cycle += gap
        records.append(MemTraceRecord(
            cycle,
            draw(st.integers(min_value=0, max_value=(1 << 36) - 1)),
            draw(st.booleans())))
    return records


class TestCodecProperties:
    @settings(max_examples=60, deadline=None)
    @given(records=_mem_traces())
    def test_write_read_is_identity(self, tmp_path_factory, records):
        path = str(tmp_path_factory.mktemp("rt") / "t.trace")
        write_mem_trace(path, records)
        assert read_mem_trace(path) == records
        # Re-writing what was read reproduces the file byte for byte.
        path2 = str(tmp_path_factory.mktemp("rt") / "u.trace")
        write_mem_trace(path2, read_mem_trace(path))
        with open(path, "rb") as a, open(path2, "rb") as b:
            assert a.read() == b.read()

    @settings(max_examples=40, deadline=None)
    @given(records=_mem_traces(), org=_orgs)
    def test_reingest_preserves_fingerprint(self, tmp_path_factory,
                                            records, org):
        """write -> ingest -> denormalize -> write -> ingest must give
        the identical internal stream and fingerprint on any mapping."""
        tmp = tmp_path_factory.mktemp("fp")
        path = str(tmp / "t.trace")
        write_mem_trace(path, records)
        internal = ingest_trace_file(path, org)
        path2 = str(tmp / "u.trace")
        write_mem_trace(path2, denormalize_records(internal, org))
        internal2 = ingest_trace_file(path2, org)
        assert internal2 == internal
        fp1 = fingerprint_records(internal, org)
        fp2 = fingerprint_records(internal2, org)
        assert fp1 == fp2

    @settings(max_examples=40, deadline=None)
    @given(records=_mem_traces(), org=_orgs)
    def test_normalized_stream_is_in_range(self, records, org):
        for rec in normalize_records(records, org):
            assert 0 <= rec.line_address < org.total_lines
            assert rec.bubbles >= 0
            assert not rec.dependent

    @settings(max_examples=30, deadline=None)
    @given(records=_mem_traces())
    def test_fingerprint_counters_are_consistent(self, records):
        org = Organization(banks=4, rows=256, columns=16)
        fp = fingerprint_records(normalize_records(records, org), org)
        assert fp.records == len(records)
        assert fp.activations + fp.row_hits == fp.records
        assert fp.cold_activations <= fp.activations
        assert all(c <= fp.activations - fp.cold_activations
                   for c in fp.rltl_counts)
        # Larger intervals can only admit more activations.
        assert list(fp.rltl_counts) == sorted(fp.rltl_counts)
        assert fp.instructions == sum(r.bubbles + 1 for r in
                                      normalize_records(records, org))
        assert not math.isnan(fp.rmpkc)
