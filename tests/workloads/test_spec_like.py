"""Tests for the 22 named workload profiles."""

import itertools

import pytest

from repro.dram.organization import Organization
from repro.workloads.spec_like import (
    WORKLOAD_NAMES,
    get_profile,
    make_trace,
)


@pytest.fixture
def org():
    return Organization(channels=1, ranks=1, banks=8, rows=64 * 1024,
                        columns=128)


class TestCatalogue:
    def test_twenty_two_workloads(self):
        assert len(WORKLOAD_NAMES) == 22

    def test_paper_names_present(self):
        for name in ("mcf", "omnetpp", "hmmer", "libquantum",
                     "STREAMcopy", "tpch6", "tpcc64", "sphinx3"):
            assert name in WORKLOAD_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_profile("quake3")

    def test_hmmer_is_cache_resident(self):
        # Paper footnote 1: hmmer produces ~no main-memory traffic.
        profile = get_profile("hmmer")
        assert profile.footprint_bytes <= 1024 * 1024

    def test_mcf_has_large_random_footprint(self):
        profile = get_profile("mcf")
        assert profile.pattern == "random"
        assert profile.footprint_bytes >= 32 * 1024 * 1024

    def test_intensity_ordering_sanity(self):
        """Heavy workloads access memory more often than light ones."""
        assert get_profile("STREAMcopy").mean_bubbles \
            < get_profile("tpch6").mean_bubbles
        assert get_profile("libquantum").mean_bubbles \
            < get_profile("apache20").mean_bubbles


class TestTraces:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_every_profile_builds_and_generates(self, org, name):
        trace = make_trace(name, org, seed=1)
        records = list(itertools.islice(trace, 500))
        assert len(records) == 500
        for r in records:
            assert 0 <= r.line_address < org.total_lines

    def test_seeding_is_stable(self, org):
        a = list(itertools.islice(make_trace("mcf", org, seed=5), 50))
        b = list(itertools.islice(make_trace("mcf", org, seed=5), 50))
        assert a == b

    def test_workloads_have_distinct_streams(self, org):
        a = list(itertools.islice(make_trace("mcf", org, seed=1), 50))
        b = list(itertools.islice(make_trace("omnetpp", org, seed=1), 50))
        assert a != b
