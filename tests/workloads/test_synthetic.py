"""Unit and property tests for the synthetic trace generators."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.organization import Organization
from repro.workloads.synthetic import (
    bounded_footprint_lines,
    chase_trace,
    constant_trace,
    mixed_trace,
    random_trace,
    stream_trace,
    zipf_trace,
)


@pytest.fixture
def org():
    return Organization(channels=1, ranks=1, banks=8, rows=4096,
                        columns=128)


def take(trace, n):
    return list(itertools.islice(trace, n))


class TestStream:
    def test_single_stream_is_sequential(self, org):
        records = take(stream_trace(org, 1 << 20, 0.0, seed=1,
                                    num_streams=1), 10)
        lines = [r.line_address for r in records]
        assert lines == list(range(lines[0], lines[0] + 10))

    def test_two_streams_share_banks(self, org):
        records = take(stream_trace(org, 1 << 22, 0.0, seed=1,
                                    num_streams=2), 4)
        a, b = org.decode(records[0].line_address), \
            org.decode(records[1].line_address)
        assert (a.bank, a.rank) == (b.bank, b.rank)
        assert a.row != b.row  # conflicting rows: the RLTL generator

    def test_stride(self, org):
        records = take(stream_trace(org, 1 << 20, 0.0, seed=1,
                                    num_streams=1, stride_lines=4), 3)
        lines = [r.line_address for r in records]
        assert lines[1] - lines[0] == 4

    def test_write_fraction(self, org):
        records = take(stream_trace(org, 1 << 20, 0.0, seed=1,
                                    write_fraction=0.5), 2000)
        writes = sum(r.is_write for r in records)
        assert 0.4 < writes / len(records) < 0.6

    def test_bad_params(self, org):
        with pytest.raises(ValueError):
            stream_trace(org, 1 << 20, 0.0, 1, num_streams=0)
        with pytest.raises(ValueError):
            next(stream_trace(org, 1 << 20, 0.0, 1, stride_lines=0))


class TestRandom:
    def test_footprint_respected(self, org):
        footprint = 1 << 16  # 1024 lines
        records = take(random_trace(org, footprint, 0.0, seed=1), 5000)
        max_line = max(r.line_address for r in records)
        assert max_line < footprint // 64

    def test_reproducible(self, org):
        a = take(random_trace(org, 1 << 20, 5.0, seed=9), 100)
        b = take(random_trace(org, 1 << 20, 5.0, seed=9), 100)
        assert a == b

    def test_different_seeds_differ(self, org):
        a = take(random_trace(org, 1 << 20, 5.0, seed=1), 100)
        b = take(random_trace(org, 1 << 20, 5.0, seed=2), 100)
        assert a != b

    def test_mean_bubbles(self, org):
        records = take(random_trace(org, 1 << 20, 20.0, seed=1), 5000)
        mean = np.mean([r.bubbles for r in records])
        assert mean == pytest.approx(20.0, rel=0.15)

    def test_zero_bubbles(self, org):
        records = take(random_trace(org, 1 << 20, 0.0, seed=1), 100)
        assert all(r.bubbles == 0 for r in records)


class TestChase:
    def test_all_dependent(self, org):
        records = take(chase_trace(org, 1 << 20, 5.0, seed=1), 100)
        assert all(r.dependent for r in records)
        assert not any(r.is_write for r in records)


class TestZipf:
    def test_skewed_row_popularity(self, org):
        records = take(zipf_trace(org, 1 << 24, 0.0, seed=1, alpha=1.5),
                       5000)
        rows = [org.decode(r.line_address).row for r in records]
        _, counts = np.unique(rows, return_counts=True)
        counts = np.sort(counts)[::-1]
        # The hottest row dominates: > 5x the median popularity.
        assert counts[0] > 5 * np.median(counts)

    def test_alpha_must_exceed_one(self, org):
        with pytest.raises(ValueError):
            zipf_trace(org, 1 << 20, 0.0, seed=1, alpha=1.0)

    def test_addresses_in_range(self, org):
        records = take(zipf_trace(org, 1 << 22, 0.0, seed=1), 2000)
        for r in records:
            d = org.decode(r.line_address)
            assert 0 <= d.row < org.rows


class TestMixed:
    def test_interleaves_children(self, org):
        a = constant_trace(1, 0)
        b = constant_trace(2, 0)
        records = take(mixed_trace([a, b], [0.5, 0.5], seed=1), 500)
        lines = {r.line_address for r in records}
        assert lines == {1, 2}

    def test_weights_respected(self, org):
        a = constant_trace(1, 0)
        b = constant_trace(2, 0)
        records = take(mixed_trace([a, b], [0.9, 0.1], seed=1), 3000)
        share = sum(r.line_address == 1 for r in records) / len(records)
        assert 0.85 < share < 0.95

    def test_bad_weights(self, org):
        with pytest.raises(ValueError):
            mixed_trace([constant_trace(1)], [1.0, 2.0], seed=1)
        with pytest.raises(ValueError):
            mixed_trace([constant_trace(1)], [0.0], seed=1)


class TestBoundedFootprint:
    def test_clamps_to_capacity(self, org):
        assert bounded_footprint_lines(org, 1 << 60) == org.total_lines

    @given(st.integers(min_value=64, max_value=1 << 40))
    @settings(max_examples=50)
    def test_always_positive_and_bounded(self, footprint):
        org = Organization(channels=1, ranks=1, banks=8, rows=4096,
                           columns=128)
        lines = bounded_footprint_lines(org, footprint)
        assert 1 <= lines <= org.total_lines


class TestGeneratorContract:
    @pytest.mark.parametrize("factory", [
        lambda org: stream_trace(org, 1 << 20, 3.0, 1),
        lambda org: random_trace(org, 1 << 20, 3.0, 1),
        lambda org: chase_trace(org, 1 << 20, 3.0, 1),
        lambda org: zipf_trace(org, 1 << 22, 3.0, 1),
    ])
    def test_infinite_and_well_formed(self, org, factory):
        records = take(factory(org), 3000)
        assert len(records) == 3000
        for r in records:
            assert r.bubbles >= 0
            assert 0 <= r.line_address < org.total_lines
