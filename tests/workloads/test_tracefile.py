"""Tests for trace-file workloads and analysis."""

import itertools

import pytest

from repro.cpu.system import System
from repro.dram.organization import Organization
from repro.workloads.tracefile import (
    analyze_trace,
    generate_trace_file,
    records_head,
    summarize_file,
    trace_file_workload,
)

from tests.conftest import tiny_config


@pytest.fixture
def org():
    return Organization(channels=1, ranks=1, banks=8, rows=4096,
                        columns=128)


class TestGeneration:
    def test_generate_and_reload(self, org, tmp_path):
        path = str(tmp_path / "mcf.trace")
        count = generate_trace_file(path, "mcf", org, 500, seed=3)
        assert count == 500
        head = records_head(path, 5)
        assert len(head) == 5

    def test_generation_deterministic(self, org, tmp_path):
        a = str(tmp_path / "a.trace")
        b = str(tmp_path / "b.trace")
        generate_trace_file(a, "tpch2", org, 200, seed=7)
        generate_trace_file(b, "tpch2", org, 200, seed=7)
        assert open(a).read() == open(b).read()

    def test_bad_count(self, org, tmp_path):
        with pytest.raises(ValueError):
            generate_trace_file(str(tmp_path / "x"), "mcf", org, 0)


class TestWorkload:
    def test_loops_forever(self, org, tmp_path):
        path = str(tmp_path / "t.trace")
        generate_trace_file(path, "sjeng", org, 50, seed=1)
        records = list(itertools.islice(trace_file_workload(path), 170))
        assert len(records) == 170
        assert records[0] == records[50] == records[100]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            trace_file_workload(str(path))

    def test_system_runs_from_trace_file(self, tmp_path):
        cfg = tiny_config(mechanism="chargecache", instruction_limit=2000)
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        path = str(tmp_path / "wl.trace")
        generate_trace_file(path, "tpch17", org, 2000, seed=5)
        system = System(cfg, [trace_file_workload(path)])
        result = system.run(max_mem_cycles=600_000)
        assert not result.truncated
        assert result.activations > 0


class TestAnalysis:
    def test_summary_fields(self, org, tmp_path):
        path = str(tmp_path / "s.trace")
        generate_trace_file(path, "STREAMcopy", org, 2000, seed=1)
        summary = summarize_file(path)
        assert summary.records == 2000
        assert summary.instructions >= 2000
        assert 0.3 < summary.write_fraction < 0.6  # profile is 0.45
        assert summary.mean_bubbles == pytest.approx(6.0, rel=0.2)
        assert summary.footprint_bytes == summary.distinct_lines * 64

    def test_dependence_detected(self, org, tmp_path):
        path = str(tmp_path / "c.trace")
        generate_trace_file(path, "astar", org, 500, seed=1)  # chase
        summary = summarize_file(path)
        assert summary.dependent_fraction == 1.0

    def test_intensity_metric(self, org):
        from tests.helpers import tiny_internal
        records = tiny_internal(100, bubbles=9)
        summary = analyze_trace(records)
        assert summary.accesses_per_kilo_instruction == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_trace([])

    def test_limit_respected(self, org, tmp_path):
        path = str(tmp_path / "l.trace")
        generate_trace_file(path, "mcf", org, 300, seed=1)
        summary = summarize_file(path, limit=100)
        assert summary.records == 100
