"""Tests for the 20 multiprogrammed 8-core mixes."""

import itertools

import pytest

from repro.dram.organization import Organization
from repro.workloads.mixes import (
    MIX_NAMES,
    all_compositions,
    make_mix_traces,
    mix_composition,
)
from repro.workloads.spec_like import WORKLOAD_NAMES


class TestComposition:
    def test_twenty_mixes(self):
        assert len(MIX_NAMES) == 20
        assert MIX_NAMES[0] == "w1" and MIX_NAMES[-1] == "w20"

    def test_eight_apps_per_mix(self):
        for mix in MIX_NAMES:
            assert len(mix_composition(mix)) == 8

    def test_compositions_stable(self):
        assert mix_composition("w1") == mix_composition("w1")

    def test_apps_are_known_workloads(self):
        for mix in MIX_NAMES:
            for app in mix_composition(mix):
                assert app in WORKLOAD_NAMES

    def test_mixes_differ(self):
        compositions = {tuple(mix_composition(m)) for m in MIX_NAMES}
        assert len(compositions) > 15  # random draw, near-distinct

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            mix_composition("w21")

    def test_all_compositions_copy(self):
        comps = all_compositions()
        comps["w1"].append("tampered")
        assert len(mix_composition("w1")) == 8


class TestTraces:
    def test_traces_built_per_core(self):
        org = Organization(channels=2, ranks=1, banks=8, rows=64 * 1024,
                           columns=128)
        traces = make_mix_traces("w3", org, seed=1)
        assert len(traces) == 8
        for trace in traces:
            records = list(itertools.islice(trace, 20))
            assert len(records) == 20

    def test_same_app_twice_gets_distinct_streams(self):
        org = Organization(channels=2, ranks=1, banks=8, rows=64 * 1024,
                           columns=128)
        # Find a mix with a duplicated app (very likely among 20).
        for mix in MIX_NAMES:
            apps = mix_composition(mix)
            dupes = {a for a in apps if apps.count(a) > 1}
            if dupes:
                app = dupes.pop()
                idx = [i for i, a in enumerate(apps) if a == app][:2]
                traces = make_mix_traces(mix, org, seed=1)
                a = list(itertools.islice(traces[idx[0]], 50))
                b = list(itertools.islice(traces[idx[1]], 50))
                assert a != b
                return
        pytest.skip("no mix with duplicate apps in this draw")
