"""Unit tests for channel-level timing (bus, turnaround, logging)."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import Command
from repro.dram.timing import DDR3_1600


@pytest.fixture
def channel():
    return Channel(DDR3_1600, num_ranks=1, num_banks=8, log_commands=True)


def open_row(channel, rank=0, bank=0, row=0, cycle=0):
    channel.issue_activate(rank, bank, row, cycle)
    return cycle + DDR3_1600.tRCD


class TestCommandBus:
    def test_one_command_per_cycle(self, channel):
        channel.issue_activate(0, 0, 0, 10)
        with pytest.raises(RuntimeError):
            channel.issue_activate(0, 1, 0, 10)

    def test_next_cycle_ok(self, channel):
        channel.issue_activate(0, 0, 0, 10)
        assert channel.can_issue(Command.ACT, 0, 1, 10 + DDR3_1600.tRRD)


class TestEarliest:
    def test_act_closed_bank_immediately(self, channel):
        assert channel.earliest(Command.ACT, 0, 0) == 0

    def test_read_gated_by_trcd(self, channel):
        ready = open_row(channel)
        assert channel.earliest(Command.RD, 0, 0) == ready

    def test_ccd_between_reads(self, channel):
        ready = open_row(channel)
        channel.issue_read(0, 0, ready)
        assert channel.earliest(Command.RD, 0, 0) == ready + DDR3_1600.tCCD

    def test_read_write_turnaround(self, channel):
        ready = open_row(channel)
        channel.issue_read(0, 0, ready)
        expect = ready + DDR3_1600.read_to_write
        assert channel.earliest(Command.WR, 0, 0) == expect

    def test_write_read_turnaround(self, channel):
        ready = open_row(channel)
        channel.issue_write(0, 0, ready)
        expect = ready + DDR3_1600.write_to_read
        assert channel.earliest(Command.RD, 0, 0) == expect

    def test_act_to_other_bank_gated_by_trrd(self, channel):
        channel.issue_activate(0, 0, 0, 0)
        assert channel.earliest(Command.ACT, 0, 1) == DDR3_1600.tRRD


class TestDataReturn:
    def test_read_latency(self, channel):
        ready = open_row(channel)
        done = channel.issue_read(0, 0, ready)
        assert done == ready + DDR3_1600.tCL + DDR3_1600.tBL

    def test_write_completion(self, channel):
        ready = open_row(channel)
        done = channel.issue_write(0, 0, ready)
        assert done == ready + DDR3_1600.tCWL + DDR3_1600.tBL


class TestReducedActivations:
    def test_reduced_act_logged(self, channel):
        reduced = DDR3_1600.reduced_by(4, 8)
        channel.issue_activate(0, 0, 0, 0, reduced)
        assert channel.num_reduced_acts == 1
        assert channel.command_log[0].reduced

    def test_reduced_act_allows_earlier_read(self, channel):
        reduced = DDR3_1600.reduced_by(4, 8)
        channel.issue_activate(0, 0, 0, 0, reduced)
        assert channel.earliest(Command.RD, 0, 0) == DDR3_1600.tRCD - 4

    def test_default_act_not_marked_reduced(self, channel):
        channel.issue_activate(0, 0, 0, 0)
        assert not channel.command_log[0].reduced


class TestRefresh:
    def test_refresh_blocks_rank(self, channel):
        channel.issue_refresh(0, 0)
        assert channel.earliest(Command.ACT, 0, 3) >= DDR3_1600.tRFC
        assert channel.num_refs == 1

    def test_refresh_with_open_bank_rejected(self, channel):
        channel.issue_activate(0, 0, 0, 0)
        with pytest.raises(RuntimeError):
            channel.issue_refresh(0, 10)


class TestStatistics:
    def test_counters(self, channel):
        ready = open_row(channel)
        channel.issue_read(0, 0, ready)
        channel.issue_write(0, 0, ready + DDR3_1600.read_to_write)
        pre_at = channel.earliest(Command.PRE, 0, 0)
        channel.issue_precharge(0, 0, pre_at)
        assert (channel.num_acts, channel.num_rds,
                channel.num_wrs, channel.num_pres) == (1, 1, 1, 1)

    def test_data_bus_busy_cycles(self, channel):
        ready = open_row(channel)
        channel.issue_read(0, 0, ready)
        assert channel.data_bus_busy_cycles == DDR3_1600.tBL

    def test_command_log_order(self, channel):
        ready = open_row(channel)
        channel.issue_read(0, 0, ready)
        cycles = [c.cycle for c in channel.command_log]
        assert cycles == sorted(cycles)
