"""Unit tests for DDR3 timing parameters."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.timing import DDR3_1066, DDR3_1600, ReducedTimings, TimingParameters


class TestDefaults:
    def test_paper_table1_values(self):
        # Table 1: DDR3-1600, 800 MHz bus, tRCD/tRAS 11/28 cycles.
        assert DDR3_1600.freq_mhz == 800.0
        assert DDR3_1600.tRCD == 11
        assert DDR3_1600.tRAS == 28
        assert DDR3_1600.tRP == 11

    def test_trc_is_tras_plus_trp(self):
        assert DDR3_1600.tRC == DDR3_1600.tRAS + DDR3_1600.tRP

    def test_ns_per_cycle(self):
        assert DDR3_1600.tCK_ns == pytest.approx(1.25)
        assert DDR3_1600.cycles_to_ns(11) == pytest.approx(13.75)
        assert DDR3_1600.cycles_to_ns(28) == pytest.approx(35.0)

    def test_validate_passes(self):
        DDR3_1600.validate()

    def test_refreshes_per_window(self):
        # 64 ms / 7.8 us = 8192 refreshes for DDR3.
        assert DDR3_1600.refreshes_per_window == 8192

    def test_refresh_window_cycles(self):
        assert DDR3_1600.refresh_window_cycles == \
            int(round(64.0 * 1e6 / 1.25))

    def test_read_latency(self):
        assert DDR3_1600.read_latency == DDR3_1600.tCL + DDR3_1600.tBL


class TestDerivedConstraints:
    def test_write_to_pre(self):
        t = DDR3_1600
        assert t.write_to_pre == t.tCWL + t.tBL + t.tWR

    def test_write_to_read(self):
        t = DDR3_1600
        assert t.write_to_read == t.tCWL + t.tBL + t.tWTR

    def test_read_to_write(self):
        t = DDR3_1600
        assert t.read_to_write == t.tCL + t.tBL + 2 - t.tCWL


class TestConversions:
    def test_ns_to_cycles_rounds_up(self):
        assert DDR3_1600.ns_to_cycles(13.75) == 11
        assert DDR3_1600.ns_to_cycles(13.76) == 12
        assert DDR3_1600.ns_to_cycles(0.1) == 1

    def test_ms_to_cycles(self):
        assert DDR3_1600.ms_to_cycles(1.0) == 800_000

    @given(st.integers(min_value=1, max_value=10_000))
    def test_roundtrip_cycles_ns(self, cycles):
        ns = DDR3_1600.cycles_to_ns(cycles)
        assert DDR3_1600.ns_to_cycles(ns) == cycles


class TestReducedTimings:
    def test_default_timings(self):
        t = DDR3_1600.default_timings()
        assert (t.trcd, t.tras) == (11, 28)

    def test_paper_reduction(self):
        # 4/8-cycle reduction at 1 ms caching duration.
        t = DDR3_1600.reduced_by(4, 8)
        assert (t.trcd, t.tras) == (7, 20)

    def test_reduction_floors_at_one(self):
        t = DDR3_1600.reduced_by(100, 100)
        assert (t.trcd, t.tras) == (1, 1)

    def test_negative_reduction_rejected(self):
        with pytest.raises(ValueError):
            DDR3_1600.reduced_by(-1, 0)

    def test_min_with_takes_elementwise_min(self):
        a = ReducedTimings(7, 25)
        b = ReducedTimings(9, 20)
        c = a.min_with(b)
        assert (c.trcd, c.tras) == (7, 20)

    @given(st.integers(1, 30), st.integers(1, 60),
           st.integers(1, 30), st.integers(1, 60))
    def test_min_with_commutative(self, a1, a2, b1, b2):
        a, b = ReducedTimings(a1, a2), ReducedTimings(b1, b2)
        assert a.min_with(b) == b.min_with(a)


class TestScaling:
    def test_scaled_frequency(self):
        assert DDR3_1066.freq_mhz == pytest.approx(533.0)
        assert DDR3_1066.tCK_ns == pytest.approx(1000.0 / 533.0)

    def test_scaled_constraints_shrink_in_cycles(self):
        # Slower clock -> same ns -> fewer cycles.
        assert DDR3_1066.tRCD <= DDR3_1600.tRCD
        assert DDR3_1066.tRAS <= DDR3_1600.tRAS

    def test_scaled_validates(self):
        DDR3_1066.validate()

    def test_bad_frequency(self):
        with pytest.raises(ValueError):
            DDR3_1600.scaled_to(0)


class TestValidation:
    def test_faw_less_than_rrd_rejected(self):
        t = TimingParameters(tFAW=2, tRRD=5)
        with pytest.raises(ValueError):
            t.validate()

    def test_refi_less_than_rfc_rejected(self):
        t = TimingParameters(tREFI=100, tRFC=208)
        with pytest.raises(ValueError):
            t.validate()

    def test_zero_constraint_rejected(self):
        t = TimingParameters(tRCD=0)
        with pytest.raises(ValueError):
            t.validate()
