"""Unit tests for the per-bank state machine."""

import pytest

from repro.dram.bank import Bank, BankState
from repro.dram.timing import DDR3_1600


@pytest.fixture
def bank():
    return Bank(DDR3_1600)


class TestActivation:
    def test_initially_closed(self, bank):
        assert bank.state is BankState.CLOSED
        assert not bank.is_open()

    def test_activate_opens_row(self, bank):
        bank.do_activate(42, 0, DDR3_1600.default_timings())
        assert bank.state is BankState.OPEN
        assert bank.is_open(42)
        assert not bank.is_open(43)

    def test_activate_sets_trcd_gate(self, bank):
        bank.do_activate(1, 100, DDR3_1600.default_timings())
        assert bank.earliest_rd() == 100 + DDR3_1600.tRCD
        assert bank.earliest_wr() == 100 + DDR3_1600.tRCD

    def test_activate_sets_tras_gate(self, bank):
        bank.do_activate(1, 100, DDR3_1600.default_timings())
        assert bank.earliest_pre() == 100 + DDR3_1600.tRAS

    def test_reduced_activation_lowers_gates(self, bank):
        reduced = DDR3_1600.reduced_by(4, 8)
        bank.do_activate(1, 100, reduced)
        assert bank.earliest_rd() == 100 + DDR3_1600.tRCD - 4
        assert bank.earliest_pre() == 100 + DDR3_1600.tRAS - 8
        assert bank.act_reduced

    def test_double_activate_rejected(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        with pytest.raises(RuntimeError):
            bank.do_activate(2, 100, DDR3_1600.default_timings())

    def test_early_activate_rejected(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        bank.do_precharge(DDR3_1600.tRAS)
        with pytest.raises(RuntimeError):
            bank.do_activate(2, DDR3_1600.tRAS + 1,
                             DDR3_1600.default_timings())

    def test_act_counts(self, bank):
        bank.do_activate(1, 0, DDR3_1600.reduced_by(4, 8))
        assert bank.num_acts == 1
        assert bank.num_reduced_acts == 1


class TestColumnCommands:
    def test_read_before_trcd_rejected(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        with pytest.raises(RuntimeError):
            bank.do_read(DDR3_1600.tRCD - 1)

    def test_read_at_trcd_ok(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        bank.do_read(DDR3_1600.tRCD)

    def test_read_extends_pre_gate(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        late = DDR3_1600.tRAS  # read issued very late
        bank.do_read(late)
        assert bank.earliest_pre() == late + DDR3_1600.read_to_pre

    def test_write_extends_pre_gate_more(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        bank.do_write(DDR3_1600.tRCD)
        expected = DDR3_1600.tRCD + DDR3_1600.write_to_pre
        assert bank.earliest_pre() == max(expected, DDR3_1600.tRAS)

    def test_column_to_closed_bank_rejected(self, bank):
        with pytest.raises(RuntimeError):
            bank.do_read(100)
        with pytest.raises(RuntimeError):
            bank.do_write(100)


class TestPrecharge:
    def test_precharge_before_tras_rejected(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        with pytest.raises(RuntimeError):
            bank.do_precharge(DDR3_1600.tRAS - 1)

    def test_precharge_returns_row(self, bank):
        bank.do_activate(7, 0, DDR3_1600.default_timings())
        assert bank.do_precharge(DDR3_1600.tRAS) == 7
        assert bank.state is BankState.CLOSED

    def test_precharge_sets_trp_gate(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        bank.do_precharge(DDR3_1600.tRAS)
        assert bank.earliest_act() == DDR3_1600.tRAS + DDR3_1600.tRP

    def test_trc_enforced_transitively(self, bank):
        """ACT->PRE->ACT spacing is at least tRC = tRAS + tRP."""
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        bank.do_precharge(DDR3_1600.tRAS)
        assert bank.earliest_act() >= DDR3_1600.tRC

    def test_precharge_closed_rejected(self, bank):
        with pytest.raises(RuntimeError):
            bank.do_precharge(100)


class TestAccounting:
    def test_open_cycles_accumulate(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        bank.do_precharge(30)
        assert bank.open_cycles == 30
        bank.do_activate(2, 50, DDR3_1600.default_timings())
        assert bank.active_cycles_until(60) == 40

    def test_refresh_block(self, bank):
        bank.do_refresh_block(500)
        assert bank.earliest_act() == 500

    def test_refresh_block_open_bank_rejected(self, bank):
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        with pytest.raises(RuntimeError):
            bank.do_refresh_block(500)
