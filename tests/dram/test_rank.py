"""Unit tests for rank-level constraints (tRRD, tFAW, refresh)."""

import pytest

from repro.dram.rank import Rank
from repro.dram.timing import DDR3_1600


@pytest.fixture
def rank():
    return Rank(DDR3_1600, num_banks=8)


class TestTRRD:
    def test_record_act_sets_trrd(self, rank):
        rank.record_act(100)
        assert rank.earliest_act() == 100 + DDR3_1600.tRRD

    def test_acts_spaced_by_trrd_ok(self, rank):
        t = 0
        for _ in range(3):
            assert rank.earliest_act() <= t
            rank.record_act(t)
            t += DDR3_1600.tRRD


class TestTFAW:
    def test_fifth_act_waits_for_faw(self, rank):
        # Four ACTs packed at tRRD spacing...
        cycles = [i * DDR3_1600.tRRD for i in range(4)]
        for c in cycles:
            rank.record_act(c)
        # ...the fifth must wait until the first leaves the window.
        assert rank.earliest_act() == cycles[0] + DDR3_1600.tFAW

    def test_faw_window_slides(self, rank):
        for c in (0, 10, 20, 30):
            rank.record_act(c)
        fifth = rank.earliest_act()  # max(0 + tFAW, 30 + tRRD) = 35
        assert fifth == max(DDR3_1600.tFAW, 30 + DDR3_1600.tRRD)
        rank.record_act(fifth)       # window is now 10, 20, 30, 35
        assert rank.earliest_act() == max(10 + DDR3_1600.tFAW,
                                          fifth + DDR3_1600.tRRD)


class TestRefresh:
    def test_refresh_requires_closed_banks(self, rank):
        rank.banks[0].do_activate(1, 0, DDR3_1600.default_timings())
        rank.note_bank_opened(0)
        with pytest.raises(RuntimeError):
            rank.do_refresh(100)

    def test_refresh_blocks_activations(self, rank):
        rank.do_refresh(100)
        assert rank.earliest_act() >= 100 + DDR3_1600.tRFC
        for bank in rank.banks:
            assert bank.earliest_act() >= 100 + DDR3_1600.tRFC

    def test_earliest_refresh_waits_for_trp(self, rank):
        bank = rank.banks[0]
        bank.do_activate(1, 0, DDR3_1600.default_timings())
        rank.note_bank_opened(0)
        bank.do_precharge(DDR3_1600.tRAS)
        rank.note_bank_closed(DDR3_1600.tRAS)
        assert rank.earliest_refresh() == DDR3_1600.tRAS + DDR3_1600.tRP

    def test_refresh_counter(self, rank):
        rank.do_refresh(0)
        rank.do_refresh(DDR3_1600.tREFI)
        assert rank.num_refreshes == 2


class TestActiveStandbyAccounting:
    def test_any_open_tracks_union_not_sum(self, rank):
        rank.note_bank_opened(100)
        rank.note_bank_opened(110)   # second bank overlaps
        rank.note_bank_closed(150)
        rank.note_bank_closed(200)
        assert rank.any_open_cycles == 100  # 100..200, not 140

    def test_any_open_until_includes_current(self, rank):
        rank.note_bank_opened(10)
        assert rank.any_open_until(60) == 50

    def test_unbalanced_close_rejected(self, rank):
        with pytest.raises(RuntimeError):
            rank.note_bank_closed(0)
