"""Tests for other-standard presets (paper Section 7.2)."""

import pytest

from repro.config import DRAMConfig
from repro.cpu.system import System
from repro.dram.organization import Organization
from repro.dram.standards import (
    DDR4_2400,
    GDDR5_4000,
    LPDDR3_1600,
    PRESETS,
    chargecache_reductions_for,
    preset,
)
from repro.workloads.synthetic import stream_trace

from tests.conftest import tiny_config


class TestPresets:
    def test_lookup(self):
        assert preset("DDR4-2400") is DDR4_2400
        with pytest.raises(KeyError):
            preset("RLDRAM-3")  # incompatible by design (Section 7.2)

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_validate(self, name):
        preset(name).validate()

    def test_clock_periods(self):
        assert DDR4_2400.tCK_ns == pytest.approx(1 / 1.2)
        assert LPDDR3_1600.tCK_ns == pytest.approx(1.25)
        assert GDDR5_4000.tCK_ns == pytest.approx(0.5)

    def test_trcd_in_nanoseconds_comparable(self):
        """Core timings are similar in ns across standards (same cell
        physics), even though cycle counts differ wildly."""
        for timing in PRESETS.values():
            assert 10.0 <= timing.cycles_to_ns(timing.tRCD) <= 20.0
            assert 25.0 <= timing.cycles_to_ns(timing.tRAS) <= 45.0

    def test_lpddr_refreshes_more_often(self):
        assert LPDDR3_1600.tREFI < PRESETS["DDR3-1600"].tREFI


class TestReductions:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_reductions_positive_and_legal(self, name):
        timing = preset(name)
        reduced = chargecache_reductions_for(timing)
        assert 1 <= reduced.trcd < timing.tRCD
        assert 1 <= reduced.tras < timing.tRAS

    def test_same_physics_different_cycles(self):
        """~5 ns of tRCD headroom is more cycles on a faster bus."""
        ddr3 = preset("DDR3-1600")
        gddr5 = preset("GDDR5-4000")
        red3 = ddr3.tRCD - chargecache_reductions_for(ddr3).trcd
        red5 = gddr5.tRCD - chargecache_reductions_for(gddr5).trcd
        assert red5 > red3


class TestEndToEnd:
    @pytest.mark.parametrize("name", ("DDR4-2400", "LPDDR3-1600"))
    def test_chargecache_runs_on_other_standards(self, name):
        timing = preset(name)
        cfg = tiny_config(mechanism="chargecache", instruction_limit=2000)
        # Match the config's bus frequency to the standard's.
        from dataclasses import replace
        cfg = replace(cfg, dram=DRAMConfig(channels=1, rows_per_bank=4096,
                                           bus_freq_mhz=timing.freq_mhz))
        org = Organization.from_config(cfg.dram, cfg.cache.line_bytes)
        system = System(cfg, [stream_trace(org, 1 << 21, 8.0, seed=1,
                                           num_streams=2)],
                        timing=timing)
        result = system.run(max_mem_cycles=600_000)
        assert not result.truncated
        assert result.mechanism_lookups > 0
        assert result.mechanism_hits > 0
