"""Unit tests for the DRAM command vocabulary."""

from repro.dram.commands import (
    COMMAND_SCOPE,
    Command,
    CommandKind,
    IssuedCommand,
)


class TestCommandProperties:
    def test_column_commands(self):
        assert Command.RD.is_column
        assert Command.WR.is_column
        assert not Command.ACT.is_column
        assert not Command.REF.is_column

    def test_row_commands(self):
        assert Command.ACT.is_row
        assert Command.PRE.is_row
        assert Command.PREA.is_row
        assert not Command.RD.is_row

    def test_scope_table_complete(self):
        assert set(COMMAND_SCOPE) == set(Command)

    def test_bank_scoped(self):
        for cmd in (Command.ACT, Command.PRE, Command.RD, Command.WR):
            assert COMMAND_SCOPE[cmd] is CommandKind.BANK

    def test_rank_scoped(self):
        for cmd in (Command.PREA, Command.REF):
            assert COMMAND_SCOPE[cmd] is CommandKind.RANK


class TestIssuedCommand:
    def test_fields_and_defaults(self):
        cmd = IssuedCommand(Command.ACT, 100, channel=0, rank=0, bank=3,
                            row=42, reduced=True)
        assert cmd.cycle == 100
        assert cmd.reduced

    def test_rank_scope_defaults(self):
        cmd = IssuedCommand(Command.REF, 5, channel=1, rank=0)
        assert cmd.bank == -1
        assert cmd.row == -1

    def test_frozen(self):
        import dataclasses
        import pytest
        cmd = IssuedCommand(Command.PRE, 1, 0, 0, 0, 7)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cmd.cycle = 2
