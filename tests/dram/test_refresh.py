"""Unit tests for the refresh scheduler and refresh-age bookkeeping."""

import numpy as np
import pytest

from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DDR3_1600


@pytest.fixture
def sched():
    return RefreshScheduler(DDR3_1600, num_ranks=1, rows_per_bank=64 * 1024)


class TestScheduling:
    def test_first_refresh_due_at_trefi(self, sched):
        assert sched.next_due(0) == DDR3_1600.tREFI
        assert not sched.rank_needs_refresh(0, DDR3_1600.tREFI - 1)
        assert sched.rank_needs_refresh(0, DDR3_1600.tREFI)

    def test_refresh_advances_due(self, sched):
        sched.on_refresh_issued(0, DDR3_1600.tREFI)
        assert sched.next_due(0) == 2 * DDR3_1600.tREFI

    def test_disabled_never_due(self):
        sched = RefreshScheduler(DDR3_1600, 1, 64 * 1024, enabled=False)
        assert not sched.rank_needs_refresh(0, 10 ** 12)

    def test_refresh_counter(self, sched):
        sched.on_refresh_issued(0, 100)
        sched.on_refresh_issued(0, 200)
        assert sched.refreshes_issued[0] == 2


class TestGroups:
    def test_group_count_matches_standard(self, sched):
        assert sched.num_groups == 8192

    def test_rows_map_to_groups(self, sched):
        # Rows hash-scatter over the rotation (RefreshScheduler.row_group).
        assert sched.row_group(0) == 0
        assert sched.row_group(1) != sched.row_group(0)
        assert 0 <= sched.row_group(8) < sched.num_groups

    def test_rows_scatter_over_groups(self, sched):
        """Contiguous footprints see the full age distribution."""
        groups = {sched.row_group(row) for row in range(4096)}
        assert len(groups) > 3600  # near-distinct
        assert max(groups) > sched.num_groups // 2

    def test_refresh_stamps_next_group(self, sched):
        sched.on_refresh_issued(0, 12345)
        assert sched.row_refresh_age_cycles(0, 0, 12400) == 55

    def test_rotation_wraps(self, sched):
        for i in range(sched.num_groups + 1):
            sched.on_refresh_issued(0, i * DDR3_1600.tREFI)
        # Group 0 was refreshed twice; its stamp is the second visit.
        age = sched.row_refresh_age_cycles(
            0, 0, sched.num_groups * DDR3_1600.tREFI)
        assert age == 0


class TestSteadyStatePreseed:
    def test_initial_ages_span_window(self, sched):
        """At cycle 0, refresh ages are uniform over the 64 ms window."""
        ages = [sched.row_refresh_age_cycles(0, row, 0)
                for row in range(0, 64 * 1024, 64)]
        window = sched.window_cycles()
        assert min(ages) >= 0
        assert max(ages) <= window
        # Roughly uniform: mean near window/2.
        assert abs(np.mean(ages) - window / 2) < window * 0.05

    def test_fraction_within_8ms_is_one_eighth(self, sched):
        """The paper's ~12% refresh-recency fraction falls out of the
        schedule geometry: 8 ms / 64 ms."""
        edge = DDR3_1600.ms_to_cycles(8.0)
        rows = range(0, 64 * 1024, 16)
        young = sum(1 for r in rows
                    if sched.row_refresh_age_cycles(0, r, 0) <= edge)
        fraction = young / len(list(rows))
        assert fraction == pytest.approx(0.125, abs=0.02)

    def test_age_in_ms(self, sched):
        age_ms = sched.row_refresh_age_ms(0, 0, 0)
        assert age_ms == pytest.approx(64.0, rel=0.01)


class TestMultiRank:
    def test_ranks_independent(self):
        sched = RefreshScheduler(DDR3_1600, num_ranks=2,
                                 rows_per_bank=64 * 1024)
        sched.on_refresh_issued(0, 500)
        assert sched.next_due(0) > sched.next_due(1)
        age0 = sched.row_refresh_age_cycles(0, 0, 1000)
        age1 = sched.row_refresh_age_cycles(1, 0, 1000)
        assert age0 != age1  # rank 0's group 0 was just refreshed
