"""Unit tests for DRAM geometry and address decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DRAMConfig
from repro.dram.organization import Organization


class TestConstruction:
    def test_paper_geometry(self, paper_org):
        assert paper_org.banks_total == 8
        assert paper_org.capacity_bytes == 4 * 1024 ** 3  # 4 GB

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            Organization(banks=3)

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValueError):
            Organization(mapping="nope")

    def test_from_config(self):
        org = Organization.from_config(DRAMConfig(channels=2))
        assert org.channels == 2
        assert org.columns == 128  # 8 KB row / 64 B lines


class TestCodec:
    def test_encode_decode_identity(self, small_org):
        for line in range(small_org.total_lines):
            d = small_org.decode(line)
            assert small_org.encode(*d.as_tuple()) == line

    def test_decode_fields_in_range(self, small_org):
        for line in range(small_org.total_lines):
            d = small_org.decode(line)
            assert 0 <= d.channel < small_org.channels
            assert 0 <= d.rank < small_org.ranks
            assert 0 <= d.bank < small_org.banks
            assert 0 <= d.row < small_org.rows
            assert 0 <= d.column < small_org.columns

    def test_encode_range_check(self, small_org):
        with pytest.raises(ValueError):
            small_org.encode(0, 0, 0, small_org.rows, 0)

    def test_addresses_wrap(self, small_org):
        line = small_org.total_lines + 5
        assert small_org.decode(line) == small_org.decode(5)

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1))
    @settings(max_examples=200)
    def test_decode_encode_roundtrip_random(self, line):
        org = Organization(channels=2, ranks=1, banks=8, rows=1 << 16,
                           columns=128)
        wrapped = line & (org.total_lines - 1)
        d = org.decode(line)
        assert org.encode(*d.as_tuple()) == wrapped


class TestMappingProperties:
    def test_robaracoch_consecutive_lines_interleave_channels(self):
        org = Organization(channels=2, banks=8, rows=1 << 16, columns=128)
        a = org.decode(0)
        b = org.decode(1)
        assert a.channel != b.channel

    def test_robaracoch_streams_stay_in_row(self):
        org = Organization(channels=1, banks=8, rows=1 << 16, columns=128)
        decoded = [org.decode(i) for i in range(org.columns)]
        rows = {(d.bank, d.row) for d in decoded}
        assert len(rows) == 1  # first 128 lines sit in one row buffer

    def test_row_stride(self):
        org = Organization(channels=1, banks=8, rows=1 << 16, columns=128)
        stride = org.encode(0, 0, 0, 1, 0)
        a, b = org.decode(0), org.decode(stride)
        assert a.bank == b.bank and b.row == a.row + 1

    def test_chrabaroco_mapping(self):
        org = Organization(channels=2, banks=8, rows=1 << 16, columns=128,
                           mapping="ChRaBaRoCo")
        # Consecutive lines walk columns first under this mapping.
        a, b = org.decode(0), org.decode(1)
        assert a.channel == b.channel
        assert b.column == a.column + 1

    def test_bank_index_unique(self, small_org):
        seen = set()
        for line in range(small_org.total_lines):
            d = small_org.decode(line)
            seen.add(small_org.bank_index(d))
        assert seen == set(range(small_org.banks_total))
