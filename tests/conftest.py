"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ChargeCacheConfig,
    ControllerConfig,
    DRAMConfig,
    ProcessorConfig,
    SimulationConfig,
)
from repro.dram.organization import Organization
from repro.dram.timing import DDR3_1600


@pytest.fixture(autouse=True, scope="session")
def _isolated_run_cache(tmp_path_factory):
    """Point the persistent run cache at a per-session tmp dir.

    The harness's disk layer is read-through by default; without this,
    test runs would populate (and, via clear_caches, wipe) the user's
    real ~/.cache/chargecache-repro.  Tests that exercise specific
    cache directories re-bind explicitly and restore on exit.
    """
    from repro.harness import runner
    runner.configure_disk_cache(
        str(tmp_path_factory.mktemp("run-cache")))
    yield
    runner.clear_caches()
    runner.configure_disk_cache(None)


@pytest.fixture
def timing():
    return DDR3_1600


@pytest.fixture
def small_org():
    """A small organization so tests can sweep entire address spaces."""
    return Organization(channels=1, ranks=1, banks=4, rows=64, columns=8)


@pytest.fixture
def paper_org():
    """The paper's single-channel organization."""
    return Organization(channels=1, ranks=1, banks=8, rows=64 * 1024,
                        columns=128)


def tiny_config(mechanism: str = "none", num_cores: int = 1,
                channels: int = 1, ranks: int = 1,
                standard: str = "DDR3-1600",
                instruction_limit: int = 3000,
                warmup: int = 1000, row_policy: str = "open",
                **cc_kwargs) -> SimulationConfig:
    """A configuration small and fast enough for unit tests.

    Uses a 64 KB LLC so DRAM traffic appears quickly, and a reduced
    DRAM geometry to keep footprints small.  ``ranks`` and
    ``standard`` open the multi-rank and timing-grade axes; the bus
    frequency always tracks the standard's preset.
    """
    from repro.dram.standards import preset
    cc = ChargeCacheConfig(time_scale=512.0, **cc_kwargs)
    cfg = SimulationConfig(
        processor=ProcessorConfig(num_cores=num_cores),
        cache=CacheConfig(size_bytes=64 * 1024, associativity=4),
        dram=DRAMConfig(channels=channels, ranks_per_channel=ranks,
                        rows_per_bank=4096, standard=standard,
                        bus_freq_mhz=preset(standard).freq_mhz),
        controller=ControllerConfig(row_policy=row_policy),
        chargecache=cc,
        mechanism=mechanism,
        instruction_limit=instruction_limit,
        warmup_cpu_cycles=warmup,
    )
    cfg.validate()
    return cfg
