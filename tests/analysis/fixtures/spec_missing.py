"""Spec-keys fixture: a RunSpec module with no classification at all."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunSpec:
    kind: str
    name: str
    seed: int = 1

    def key_payload(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "seed": self.seed}
