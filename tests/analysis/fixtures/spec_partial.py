"""Spec-keys fixture: classification present but wrong in four ways.

* ``new_knob`` is declared on the dataclass but classified nowhere;
* ``ghost`` is classified but not a field (stale entry);
* ``seed`` appears in both sets (double classification);
* ``key_payload`` skips ``engine`` without declaring it LOCATION_ONLY.
"""

from dataclasses import dataclass, fields

LOCATION_ONLY = frozenset({"trace_path", "seed"})

KEY_MATERIAL = ("kind", "name", "seed", "engine", "ghost")


@dataclass(frozen=True)
class RunSpec:
    kind: str
    name: str
    seed: int = 1
    engine: str = "event"
    new_knob: int = 0
    trace_path: str = ""

    def key_payload(self) -> dict:
        payload = {}
        for f in fields(self):
            if f.name in LOCATION_ONLY:
                continue
            if f.name == "engine":
                continue
            payload[f.name] = getattr(self, f.name)
        return payload
