"""Service-concurrency fixture (path-scoped: lives under service/).

Each marked line triggers (or avoids) one exact finding asserted by
tests/analysis/test_service_concurrency.py.
"""

import os
import sqlite3

from repro.service.locking import FileLock


class BadStore:
    def __init__(self, path: str):
        self.path = path
        self.lock = FileLock(path + ".lock")
        self.conn = sqlite3.connect(path)  # shared handle

    def open_threaded(self):
        return sqlite3.connect(  # cross-thread opt-in
            self.path, check_same_thread=False)

    def unlocked_write(self, key: str) -> None:
        conn = sqlite3.connect(self.path)
        conn.execute("INSERT INTO runs VALUES (?)", (key,))  # no lock
        conn.commit()

    def locked_write(self, key: str) -> None:
        with self.lock:
            conn = sqlite3.connect(self.path)
            conn.execute("INSERT INTO runs VALUES (?)", (key,))
            conn.commit()

    def txn_write(self, key: str) -> None:
        def txn(conn):
            conn.execute("DELETE FROM runs WHERE k = ?", (key,))
        self._write(txn)

    def _write(self, fn):
        with self.lock:
            conn = sqlite3.connect(self.path)
            try:
                fn(conn)
                conn.commit()
            finally:
                conn.close()

    def unlocked_read(self, key: str):
        conn = sqlite3.connect(self.path)
        try:
            return conn.execute(
                "SELECT * FROM runs WHERE k = ?", (key,)).fetchone()
        finally:
            conn.close()

    def publish_unsynced(self, tmp: str, final: str) -> None:
        with open(final + ".tmp", "w") as fh:
            fh.write("x")
        os.rename(tmp, final)  # no fsync before rename

    def publish_synced(self, tmp: str, final: str) -> None:
        fd = os.open(tmp, os.O_WRONLY)
        os.fsync(fd)
        os.close(fd)
        os.rename(tmp, final)  # fine: fsync earlier in function
