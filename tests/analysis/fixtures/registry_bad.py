"""Registry-contract fixture: parsed by the linter, never imported.

The decorator only has to *resolve* to ``register_mechanism`` by
name; the classes deliberately violate (or honor) the fork/replay and
params-validate() contracts.
"""

from dataclasses import dataclass

from repro.core.registry import register_mechanism


class LatencyMechanism:
    supports_decision_replay = True

    def fork_state(self):
        return type(self)(None)


@dataclass
class GoodParams:
    entries: int = 128

    def validate(self) -> None:
        pass


@dataclass
class BadParams:
    entries: int = 128
    # no validate()


class StatefulMechanism(LatencyMechanism):
    """Extra __init__ state, no own forks: generic fork drops it."""

    def __init__(self, timing, tracker):
        self.timing = timing
        self.tracker = tracker


class BareMechanism:
    """No forks anywhere in its MRO and no opt-out."""


class OptedOutMechanism:
    """Extra state but explicitly opts out of replay."""

    supports_decision_replay = False

    def __init__(self, timing, tracker):
        self.timing = timing
        self.tracker = tracker


class ForkingMechanism(LatencyMechanism):
    """Extra state and its own fork_state: fine."""

    def __init__(self, timing, tracker):
        self.timing = timing
        self.tracker = tracker

    def fork_state(self):
        return ForkingMechanism(self.timing, self.tracker)


@register_mechanism("stateful", params=GoodParams)
def _build_stateful(ctx) -> StatefulMechanism:
    return StatefulMechanism(ctx.timing, object())


@register_mechanism("bare")
def _build_bare(ctx) -> BareMechanism:
    return BareMechanism()


@register_mechanism("optout", params=BadParams)
def _build_optout(ctx) -> OptedOutMechanism:
    return OptedOutMechanism(ctx.timing, object())


@register_mechanism("forking", params=GoodParams)
def _build_forking(ctx) -> ForkingMechanism:
    return ForkingMechanism(ctx.timing, object())


@register_mechanism("mystery")
def _build_mystery(ctx):
    made = [ForkingMechanism(ctx.timing, object())]
    return made[0]


@register_mechanism("ghost", params=GhostParams)  # noqa: F821
def _build_ghost(ctx) -> ForkingMechanism:
    return ForkingMechanism(ctx.timing, object())
