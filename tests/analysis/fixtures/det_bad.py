"""Determinism-rule fixture: every entry here is parsed, never run.

Each marked line triggers (or suppresses) one exact finding asserted
by tests/analysis/test_determinism.py.
"""

import os
import random
import time
from datetime import datetime

import numpy as np


def wall_clock() -> float:
    return time.time()  # entropy source


def stamp() -> str:
    return datetime.now().isoformat()  # entropy source


def token() -> bytes:
    return os.urandom(16)  # entropy source


def roll() -> float:
    return random.random()  # global RNG


def unseeded() -> "random.Random":
    return random.Random()  # unseeded constructor


def seeded(seed: int) -> "random.Random":
    return random.Random(seed)  # fine: explicit seed


def np_global() -> float:
    return np.random.rand()  # numpy global RNG


def np_seeded(seed: int):
    return np.random.default_rng(seed)  # fine: explicit seed


def iterate_set() -> list:
    out = []
    for item in {"b", "a", "c"}:  # set iteration
        out.append(item)
    return out


def comprehend_set() -> list:
    return [x for x in set("abc")]  # set iteration


def listify_set() -> list:
    return list({"b", "a"})  # list() of a set


def sorted_set() -> list:
    return sorted({"b", "a"})  # fine: sorted() defines the order


def excused() -> float:
    return time.time()  # repro: allow(determinism) -- fixture: justified pragma suppresses

def unjustified() -> float:
    return time.time()  # repro: allow(determinism)

def unknown_rule() -> float:
    return time.time()  # repro: allow(no-such-rule) -- reason given

def malformed() -> float:
    return time.time()  # repro: allowed(determinism) -- typo body


def unused_pragma() -> int:
    return 1  # repro: allow(determinism) -- nothing to suppress here
