"""Exact-message coverage for the ``service-concurrency`` rule."""

from tests.analysis.helpers import lint_fixture, rule_findings

SHARED = ("outlives the operation and may cross threads; open a "
          "fresh connection per operation instead")


class TestServiceConcurrencyFixture:
    def setup_method(self):
        self.findings = rule_findings(
            lint_fixture("service", "conc_bad.py"),
            "service-concurrency")

    def test_connection_stored_on_self(self):
        assert (17, f"sqlite3 connection stored on 'self.conn' "
                    f"{SHARED}") in self.findings

    def test_check_same_thread_false(self):
        assert (20, "sqlite3.connect(check_same_thread=False) "
                    "invites sharing one connection across threads; "
                    "open a fresh connection per operation instead") \
            in self.findings

    def test_write_outside_lock(self):
        assert (25, "SQLite write outside a FileLock; wrap it in "
                    "'with self.lock:' or move it into a transaction "
                    "function passed to _write(...)") in self.findings

    def test_rename_without_fsync(self):
        assert (59, "os.rename() without a preceding fsync in the "
                    "same function; an unsynced rename can publish "
                    "an empty file after a crash") in self.findings

    def test_sanctioned_patterns_are_clean(self):
        # locked write, _write-txn write, lock-free read and
        # fsync-then-rename add nothing beyond the four intended.
        assert len(self.findings) == 4

    def test_rule_is_path_scoped(self, tmp_path):
        """The same code outside a service/ directory is not checked."""
        from tests.analysis.helpers import fixture
        source = open(fixture("service", "conc_bad.py")).read()
        elsewhere = tmp_path / "conc_bad.py"
        elsewhere.write_text(source)
        from repro.analysis.engine import run_lint
        report = run_lint([str(elsewhere)])
        assert not [f for f in report.findings
                    if f.rule == "service-concurrency"]

    def test_store_and_journal_modules_are_scoped(self, tmp_path):
        """harness/store.py and harness/journal.py are persistence
        code: the rule applies to them by basename wherever they
        live (the PR-10 backend refactor moved store logic out of
        service/)."""
        from tests.analysis.helpers import fixture
        source = open(fixture("service", "conc_bad.py")).read()
        for basename in ("store.py", "journal.py"):
            target = tmp_path / basename
            target.write_text(source)
            from repro.analysis.engine import run_lint
            report = run_lint([str(target)])
            assert [f for f in report.findings
                    if f.rule == "service-concurrency"], basename
