"""Shared plumbing for the analysis-suite tests."""

import os

from repro.analysis.engine import run_lint

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")


def fixture(*names: str) -> str:
    return os.path.join(FIXTURES, *names)


def lint_fixture(*names: str):
    """Findings for one fixture as (line, rule, message) tuples."""
    report = run_lint([fixture(*names)])
    return [(f.line, f.rule, f.message) for f in report.findings]


def rule_findings(findings, rule: str):
    return [(line, message) for line, r, message in findings
            if r == rule]
