"""Exact-message coverage for the ``spec-keys`` rule."""

import pytest

from repro.harness import spec as spec_module
from tests.analysis.helpers import lint_fixture, rule_findings


class TestMissingClassification:
    def test_both_sets_required(self):
        findings = rule_findings(lint_fixture("spec_missing.py"),
                                 "spec-keys")
        assert (7, "module defining RunSpec must declare a "
                   "LOCATION_ONLY set of field-name literals naming "
                   "the fields excluded from cache-key material") \
            in findings
        assert (7, "module defining RunSpec must declare a "
                   "KEY_MATERIAL tuple of field-name literals "
                   "naming every cache-key field") in findings
        assert len(findings) == 2


class TestPartialClassification:
    def setup_method(self):
        self.findings = rule_findings(
            lint_fixture("spec_partial.py"), "spec-keys")

    def test_double_classification(self):
        assert (11, "field 'seed' appears in both LOCATION_ONLY and "
                    "KEY_MATERIAL; a field has exactly one cache-key "
                    "role") in self.findings

    def test_stale_entry(self):
        assert (13, "KEY_MATERIAL names 'ghost', which is not a "
                    "field of RunSpec; remove the stale entry") \
            in self.findings

    def test_unclassified_field(self):
        assert (22, "RunSpec field 'new_knob' is classified neither "
                    "KEY_MATERIAL nor LOCATION_ONLY; decide whether "
                    "it affects cache keys and add it to exactly one "
                    "set") in self.findings

    def test_undeclared_key_payload_skip(self):
        assert (30, "key_payload() skips field 'engine' which is not "
                    "declared LOCATION_ONLY; undeclared skips "
                    "silently drop key material") in self.findings

    def test_exact_finding_count(self):
        assert len(self.findings) == 4


class TestRuntimeGuard:
    """The import-time twin of the lint rule (harness/spec.py)."""

    def test_current_classification_partitions_exactly(self):
        declared = {f.name for f in
                    __import__("dataclasses").fields(
                        spec_module.RunSpec)}
        material = set(spec_module.KEY_MATERIAL)
        location = set(spec_module.LOCATION_ONLY)
        assert material | location == declared
        assert not material & location

    def test_key_payload_honors_the_partition(self):
        run = spec_module.RunSpec(kind="single", name="bzip2")
        payload = run.key_payload()
        assert set(payload) == set(spec_module.KEY_MATERIAL)
        for name in spec_module.LOCATION_ONLY:
            assert name not in payload

    def test_guard_rejects_unclassified_field(self, monkeypatch):
        monkeypatch.setattr(
            spec_module, "KEY_MATERIAL",
            tuple(n for n in spec_module.KEY_MATERIAL
                  if n != "seed"))
        with pytest.raises(AssertionError, match="seed"):
            spec_module._check_key_classification()

    def test_guard_rejects_overlap(self, monkeypatch):
        monkeypatch.setattr(
            spec_module, "LOCATION_ONLY",
            frozenset(spec_module.LOCATION_ONLY | {"seed"}))
        with pytest.raises(AssertionError,
                           match="both KEY_MATERIAL and "
                                 "LOCATION_ONLY"):
            spec_module._check_key_classification()

    def test_guard_rejects_stale_name(self, monkeypatch):
        monkeypatch.setattr(
            spec_module, "KEY_MATERIAL",
            spec_module.KEY_MATERIAL + ("no_such_field",))
        with pytest.raises(AssertionError, match="no_such_field"):
            spec_module._check_key_classification()

    def test_guard_rejects_duplicates(self, monkeypatch):
        monkeypatch.setattr(
            spec_module, "KEY_MATERIAL",
            spec_module.KEY_MATERIAL + ("seed",))
        with pytest.raises(AssertionError, match="duplicates"):
            spec_module._check_key_classification()
