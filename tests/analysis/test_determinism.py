"""Exact-message coverage for the ``determinism`` rule."""

from tests.analysis.helpers import lint_fixture, rule_findings

ENTROPY = ("is nondeterministic; fingerprint-covered modules must "
           "compute results purely from (spec, sources)")


class TestDeterminismFixture:
    def setup_method(self):
        self.findings = lint_fixture("det_bad.py")
        self.determinism = rule_findings(self.findings, "determinism")

    def test_entropy_sources(self):
        assert (16, f"time.time {ENTROPY}") in self.determinism
        assert (20, f"datetime.datetime.now {ENTROPY}") \
            in self.determinism
        assert (24, f"os.urandom {ENTROPY}") in self.determinism

    def test_global_rng(self):
        assert (28, "random.random uses the process-global unseeded "
                    "RNG; use a random.Random(seed) instance derived "
                    "from the spec") in self.determinism

    def test_unseeded_constructor(self):
        assert (32, "random.Random() without an explicit seed is "
                    "nondeterministic; pass a seed derived from the "
                    "spec") in self.determinism

    def test_numpy_global_rng(self):
        assert (40, "numpy.random.rand uses numpy's global RNG; use "
                    "numpy.random.default_rng(seed) derived from the "
                    "spec") in self.determinism

    def test_set_iteration(self):
        order = ("iterates a set, whose order is randomized per "
                 "process (PYTHONHASHSEED); iterate sorted(...) "
                 "instead")
        assert (49, f"for loop {order}") in self.determinism
        assert (55, f"comprehension {order}") in self.determinism

    def test_list_of_set(self):
        assert (59, "list() of a set depends on hash order, which is "
                    "randomized per process; sort it with "
                    "sorted(...) instead") in self.determinism

    def test_seeded_and_sorted_sites_are_clean(self):
        flagged_lines = {line for line, _ in self.determinism}
        # random.Random(seed), default_rng(seed) and sorted({...})
        assert not flagged_lines & {36, 44, 63}

    def test_justified_pragma_suppresses_its_line(self):
        assert 67 not in {line for line, _ in self.determinism}

    def test_unjustified_pragma_keeps_the_finding(self):
        lines = {line for line, _ in self.determinism}
        assert 70 in lines  # allow() without a reason
        pragma = rule_findings(self.findings, "pragma")
        assert any(line == 70 and "has no justification" in message
                   for line, message in pragma)

    def test_exact_finding_count(self):
        # Everything intended, nothing else: 9 bad sites + 3 sites
        # whose pragmas are invalid (unjustified/unknown/malformed).
        assert len(self.determinism) == 12
