"""Exact-message coverage for the ``registry-contract`` rule."""

from tests.analysis.helpers import lint_fixture, rule_findings


class TestRegistryContractFixture:
    def setup_method(self):
        self.findings = rule_findings(
            lint_fixture("registry_bad.py"), "registry-contract")

    def test_stateful_init_with_generic_fork(self):
        assert (68, "mechanism class 'StatefulMechanism' has an "
                    "__init__ with extra constructor state but "
                    "defines neither fork_state nor fork_for_replay; "
                    "the inherited generic fork_state would drop "
                    "that state -- implement the fork methods or set "
                    "supports_decision_replay = False") \
            in self.findings

    def test_no_forks_anywhere(self):
        assert (73, "mechanism class 'BareMechanism' defines neither "
                    "fork_state nor fork_for_replay and no "
                    "resolvable base provides them; implement them "
                    "or set supports_decision_replay = False") \
            in self.findings

    def test_params_without_validate(self):
        assert (78, "params class 'BadParams' does not define "
                    "validate(); the registry calls "
                    "params.validate() on every parse") \
            in self.findings

    def test_unresolvable_factory(self):
        assert (88, "cannot resolve the mechanism class built by "
                    "'_build_mystery'; annotate the factory's return "
                    "type with the mechanism class so the "
                    "fork/replay contract is checkable") \
            in self.findings

    def test_unresolvable_params_class(self):
        assert (94, "params class 'GhostParams' for '_build_ghost' "
                    "is not defined in the linted tree, so its "
                    "validate() contract cannot be checked") \
            in self.findings

    def test_compliant_registrations_are_clean(self):
        # opt-out (fork side), own-fork and seeded registrations add
        # nothing beyond the five intended findings.
        assert len(self.findings) == 5
