"""Tier-1 gate: the shipped tree lints clean, and breaking an
invariant is caught.

This is the test the CI ``static-analysis`` job duplicates from the
outside; keeping it in tier-1 means `pytest` alone refuses a tree
with findings or unjustified pragmas, whether or not CI runs.
"""

import os
import shutil

import repro
from repro.analysis.engine import run_lint

SRC = os.path.dirname(os.path.abspath(repro.__file__))


class TestShippedTreeIsClean:
    def test_zero_findings_over_src(self):
        report = run_lint([SRC])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.ok, f"repro lint found:\n{formatted}"

    def test_every_pragma_is_used_and_justified(self):
        # Redundant with test_zero_findings_over_src (bad pragmas are
        # findings) but states the satellite requirement directly.
        report = run_lint([SRC])
        assert not [f for f in report.findings
                    if f.rule == "pragma"]

    def test_tree_is_nontrivial(self):
        report = run_lint([SRC])
        assert report.files_checked > 50


class TestBreakingAnInvariantIsCaught:
    """Deliberately violate each invariant in a scratch copy."""

    def _copy_spec(self, tmp_path):
        dst = tmp_path / "spec.py"
        shutil.copy(os.path.join(SRC, "harness", "spec.py"), dst)
        return dst

    def test_new_unclassified_runspec_field(self, tmp_path):
        dst = self._copy_spec(tmp_path)
        source = dst.read_text()
        source = source.replace(
            "    kind: str\n",
            "    kind: str\n    new_knob: int = 0\n")
        dst.write_text(source)
        report = run_lint([str(dst)])
        assert any(f.rule == "spec-keys"
                   and "'new_knob' is classified neither"
                   in f.message
                   for f in report.findings)

    def test_clock_read_added_to_fingerprinted_module(self, tmp_path):
        dst = tmp_path / "mod.py"
        dst.write_text("import time\nSTAMP = time.time()\n")
        report = run_lint([str(dst)])
        assert any(f.rule == "determinism" for f in report.findings)

    def test_unlocked_write_added_to_service(self, tmp_path):
        service = tmp_path / "service"
        service.mkdir()
        dst = service / "mod.py"
        dst.write_text(
            "import sqlite3\n"
            "def put(path, k):\n"
            "    conn = sqlite3.connect(path)\n"
            "    conn.execute('INSERT INTO t VALUES (?)', (k,))\n")
        report = run_lint([str(service)])
        assert any(f.rule == "service-concurrency"
                   for f in report.findings)

    def test_registered_mechanism_without_forks(self, tmp_path):
        dst = tmp_path / "mech.py"
        dst.write_text(
            "from repro.core.registry import register_mechanism\n"
            "class Lone:\n"
            "    pass\n"
            "@register_mechanism('lone')\n"
            "def _build(ctx) -> Lone:\n"
            "    return Lone()\n")
        report = run_lint([str(dst)])
        assert any(f.rule == "registry-contract"
                   and "'Lone'" in f.message
                   for f in report.findings)
