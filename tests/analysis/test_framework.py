"""Framework-level behavior: pragmas, findings, reports, CLI."""

import json
import subprocess
import sys

import pytest

from repro.analysis.base import Finding, scan_pragmas
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import (
    KNOWN_RULES,
    RULES,
    iter_python_files,
    run_lint,
)
from repro.analysis.report import render_json, render_text
from tests.analysis.helpers import fixture


class TestFinding:
    def test_format_is_compiler_style(self):
        finding = Finding(file="a/b.py", line=7, rule="determinism",
                          message="no clocks")
        assert finding.format() == "a/b.py:7:determinism: no clocks"

    def test_json_round_trip(self):
        finding = Finding(file="a.py", line=1, rule="r", message="m")
        assert finding.to_json() == {
            "file": "a.py", "line": 1, "rule": "r", "message": "m"}

    def test_orderable_for_stable_reports(self):
        a = Finding(file="a.py", line=2, rule="r", message="m")
        b = Finding(file="a.py", line=10, rule="r", message="m")
        assert sorted([b, a]) == [a, b]


class TestPragmaParsing:
    def test_well_formed_with_reason(self):
        (pragma,) = scan_pragmas(
            "x = 1  # repro: allow(determinism) -- startup stamp\n",
            "f.py")
        assert pragma.rule == "determinism"
        assert pragma.reason == "startup stamp"
        assert pragma.well_formed and pragma.justified

    def test_missing_reason_is_unjustified(self):
        (pragma,) = scan_pragmas(
            "x = 1  # repro: allow(determinism)\n", "f.py")
        assert pragma.well_formed and not pragma.justified

    def test_malformed_body_is_not_well_formed(self):
        (pragma,) = scan_pragmas(
            "x = 1  # repro: allowed(determinism) -- why\n", "f.py")
        assert not pragma.well_formed

    def test_pragma_text_in_string_literal_is_ignored(self):
        source = 's = "# repro: allow(determinism) -- nope"\n'
        assert scan_pragmas(source, "f.py") == []

    def test_ordinary_comments_are_ignored(self):
        assert scan_pragmas("x = 1  # plain comment\n", "f.py") == []


class TestRuleRegistry:
    def test_four_domain_rules_registered(self):
        assert KNOWN_RULES == ("determinism", "registry-contract",
                               "spec-keys", "service-concurrency")

    def test_every_checker_names_itself(self):
        for checker in RULES:
            assert checker.rule and checker.description


class TestDiscoveryAndParse:
    def test_walk_skips_pycache_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        pycache = tmp_path / "__pycache__"
        pycache.mkdir()
        (pycache / "a.cpython-311.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [f.rsplit("/", 1)[-1] for f in files] == [
            "a.py", "b.py"]

    def test_syntax_error_is_a_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = run_lint([str(bad)])
        (finding,) = report.findings
        assert finding.rule == "parse"
        assert "syntax error" in finding.message


class TestReporters:
    def test_text_report_tail_summary(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        report = run_lint([str(clean)])
        text = render_text(report)
        assert text.endswith("0 findings in 1 files (0 pragmas)")

    def test_json_report_shape(self):
        report = run_lint([fixture("spec_missing.py")])
        payload = json.loads(render_json(report))
        assert payload["schema"] == 1
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert {f["rule"] for f in payload["findings"]} == {
            "spec-keys"}


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert lint_main([fixture("spec_missing.py")]) == 1
        out = capsys.readouterr().out
        assert "spec-keys" in out

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["/no/such/path.py"]) == 2

    def test_json_artifact_written_even_with_findings(self, tmp_path):
        out = tmp_path / "findings.json"
        code = lint_main([fixture("spec_missing.py"),
                          "--json", str(out), "--quiet"])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["ok"] is False and payload["findings"]

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis",
             fixture("spec_missing.py"), "--quiet"],
            capture_output=True, text=True)
        assert proc.returncode == 1

    def test_repro_lint_subcommand(self):
        from repro.harness.cli import main as harness_main
        assert harness_main(
            ["lint", fixture("spec_missing.py"), "--quiet"]) == 1


class TestPragmaDiscipline:
    def test_justified_pragma_suppresses(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "import time\n"
            "t = time.time()  "
            "# repro: allow(determinism) -- boot stamp only\n")
        report = run_lint([str(mod)])
        assert report.findings == []
        assert report.pragmas_seen == 1

    def test_unjustified_pragma_does_not_suppress(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "import time\n"
            "t = time.time()  # repro: allow(determinism)\n")
        report = run_lint([str(mod)])
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["determinism", "pragma"]

    @pytest.mark.parametrize("comment,fragment", [
        ("# repro: allow(determinism)", "has no justification"),
        ("# repro: allow(bogus) -- why", "unknown rule 'bogus'"),
        ("# repro: suppress(determinism) -- why", "malformed pragma"),
    ])
    def test_bad_pragma_messages(self, tmp_path, comment, fragment):
        mod = tmp_path / "mod.py"
        mod.write_text(f"x = 1  {comment}\n")
        report = run_lint([str(mod)])
        assert any(f.rule == "pragma" and fragment in f.message
                   for f in report.findings)

    def test_unused_pragma_is_flagged(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "x = 1  # repro: allow(determinism) -- stale excuse\n")
        report = run_lint([str(mod)])
        (finding,) = report.findings
        assert finding.rule == "pragma"
        assert "unused pragma allow(determinism)" in finding.message
