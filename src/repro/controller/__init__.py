"""Memory controller: request queues, scheduling, row-buffer policies
and the command-issue engine that hosts the latency mechanisms.
"""

from repro.controller.request import Request, RequestType
from repro.controller.queues import RequestQueue
from repro.controller.address_mapping import AddressMapper
from repro.controller.row_policy import OpenRowPolicy, ClosedRowPolicy, make_row_policy
from repro.controller.scheduler import FRFCFSScheduler, FCFSScheduler, make_scheduler
from repro.controller.controller import MemoryController

__all__ = [
    "Request",
    "RequestType",
    "RequestQueue",
    "AddressMapper",
    "OpenRowPolicy",
    "ClosedRowPolicy",
    "make_row_policy",
    "FRFCFSScheduler",
    "FCFSScheduler",
    "make_scheduler",
    "MemoryController",
]
