"""Address mapping between cache-line addresses and DRAM coordinates.

A thin, controller-facing wrapper around
:class:`repro.dram.organization.Organization` that also provides the
helpers workloads and tests use to construct addresses with specific
locality properties (same row, same bank / different row, etc.).
"""

from __future__ import annotations

from typing import Tuple

from repro.dram.organization import DecodedAddress, Organization


class AddressMapper:
    """Bijective cache-line address <-> (ch, ra, ba, row, col) codec."""

    def __init__(self, organization: Organization):
        self.org = organization

    def decode(self, line_address: int) -> DecodedAddress:
        return self.org.decode(line_address)

    def encode(self, channel: int, rank: int, bank: int, row: int,
               column: int) -> int:
        return self.org.encode(channel, rank, bank, row, column)

    def decode_into(self, request) -> None:
        """Fill a request's channel/rank/bank/row/column fields."""
        d = self.org.decode(request.line_address)
        request.channel = d.channel
        request.rank = d.rank
        request.bank = d.bank
        request.row = d.row
        request.column = d.column

    # ------------------------------------------------------------------
    # Locality helpers (used by synthetic workloads and tests)
    # ------------------------------------------------------------------

    def same_row(self, a: int, b: int) -> bool:
        da, db = self.org.decode(a), self.org.decode(b)
        return (da.channel, da.rank, da.bank, da.row) == \
               (db.channel, db.rank, db.bank, db.row)

    def same_bank(self, a: int, b: int) -> bool:
        da, db = self.org.decode(a), self.org.decode(b)
        return (da.channel, da.rank, da.bank) == (db.channel, db.rank, db.bank)

    def row_conflict_pair(self, channel: int = 0, rank: int = 0,
                          bank: int = 0) -> Tuple[int, int]:
        """Two addresses in the same bank but different rows."""
        a = self.encode(channel, rank, bank, row=0, column=0)
        b = self.encode(channel, rank, bank, row=1, column=0)
        return a, b

    def row_walk(self, channel: int, rank: int, bank: int, row: int):
        """Generator over all column addresses of one row."""
        for col in range(self.org.columns):
            yield self.encode(channel, rank, bank, row, col)

    @property
    def lines_per_row(self) -> int:
        return self.org.columns
