"""Request schedulers.

**FR-FCFS** (first-ready, first-come-first-served; Rixner et al. [79],
Zuravleff & Robinson [101]) is the paper's baseline policy: among
requests whose next required command can issue *now*, column commands
to already-open rows (row hits) win; ties break by age.

**FCFS** serves strictly in arrival order and is provided as a
reference point for tests and ablations.

A scheduler returns a :class:`SchedulerDecision` naming the request and
the command to issue on its behalf this cycle, or ``None`` when nothing
can issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.controller.request import Request
from repro.dram.channel import Channel
from repro.dram.commands import Command


@dataclass
class SchedulerDecision:
    """The command chosen for this cycle and the request it serves."""

    request: Request
    command: Command


def _required_command(request: Request, channel: Channel) -> Command:
    """The next command this request needs, given current bank state."""
    bank = channel.bank(request.rank, request.bank)
    if bank.open_row is None:
        return Command.ACT
    if bank.open_row != request.row:
        return Command.PRE
    return Command.RD if request.is_read else Command.WR


class FRFCFSScheduler:
    """First-ready FCFS over one request queue."""

    name = "frfcfs"

    def choose(self, queue, channel: Channel, cycle: int,
               blocked_ranks=()) -> Optional[SchedulerDecision]:
        """Pick the command to issue at ``cycle``, or None.

        ``blocked_ranks`` lists ranks currently reserved for refresh;
        no new command is scheduled to them.
        """
        # Pass 1: oldest ready row-hit column command.
        for req in queue:
            if req.rank in blocked_ranks:
                continue
            bank = channel.bank(req.rank, req.bank)
            if bank.open_row != req.row:
                continue
            cmd = Command.RD if req.is_read else Command.WR
            if channel.can_issue(cmd, req.rank, req.bank, cycle):
                return SchedulerDecision(req, cmd)
        # Pass 2: oldest request whose required row command is ready.
        for req in queue:
            if req.rank in blocked_ranks:
                continue
            cmd = _required_command(req, channel)
            if cmd.is_column:
                continue  # handled (or timing-blocked) in pass 1
            if channel.can_issue(cmd, req.rank, req.bank, cycle):
                return SchedulerDecision(req, cmd)
        return None


class FCFSScheduler:
    """Strict in-order service of the oldest request."""

    name = "fcfs"

    def choose(self, queue, channel: Channel, cycle: int,
               blocked_ranks=()) -> Optional[SchedulerDecision]:
        for req in queue:
            if req.rank in blocked_ranks:
                continue
            cmd = _required_command(req, channel)
            if channel.can_issue(cmd, req.rank, req.bank, cycle):
                return SchedulerDecision(req, cmd)
            return None  # head-of-line blocking: only the oldest counts
        return None


def make_scheduler(name: str):
    if name == "frfcfs":
        return FRFCFSScheduler()
    if name == "fcfs":
        return FCFSScheduler()
    raise ValueError(f"unknown scheduler {name!r}")
