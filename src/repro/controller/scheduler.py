"""Request schedulers.

**FR-FCFS** (first-ready, first-come-first-served; Rixner et al. [79],
Zuravleff & Robinson [101]) is the paper's baseline policy: among
requests whose next required command can issue *now*, column commands
to already-open rows (row hits) win; ties break by age.

**FCFS** serves strictly in arrival order and is provided as a
reference point for tests and ablations.

A scheduler returns a :class:`SchedulerDecision` naming the request and
the command to issue on its behalf this cycle, or ``None`` when nothing
can issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.controller.request import Request
from repro.dram.channel import Channel
from repro.dram.commands import Command
from repro.dram.timing import NEVER


@dataclass
class SchedulerDecision:
    """The command chosen for this cycle and the request it serves."""

    request: Request
    command: Command


def required_command(request: Request, channel: Channel) -> Command:
    """The next command this request needs, given current bank state."""
    bank = channel.bank(request.rank, request.bank)
    if bank.open_row is None:
        return Command.ACT
    if bank.open_row != request.row:
        return Command.PRE
    return Command.RD if request.is_read else Command.WR


class FRFCFSScheduler:
    """First-ready FCFS over one request queue."""

    name = "frfcfs"

    def choose(self, queue, channel: Channel, cycle: int,
               blocked_ranks=()) -> Optional[SchedulerDecision]:
        """Pick the command to issue at ``cycle``, or None.

        ``blocked_ranks`` lists ranks currently reserved for refresh;
        no new command is scheduled to them.
        """
        # Pass 1: oldest ready row-hit column command.
        for req in queue:
            if req.rank in blocked_ranks:
                continue
            bank = channel.bank(req.rank, req.bank)
            if bank.open_row != req.row:
                continue
            cmd = Command.RD if req.is_read else Command.WR
            if channel.can_issue(cmd, req.rank, req.bank, cycle):
                return SchedulerDecision(req, cmd)
        # Pass 2: oldest request whose required row command is ready.
        for req in queue:
            if req.rank in blocked_ranks:
                continue
            cmd = required_command(req, channel)
            if cmd.is_column:
                continue  # handled (or timing-blocked) in pass 1
            if channel.can_issue(cmd, req.rank, req.bank, cycle):
                return SchedulerDecision(req, cmd)
        return None

    def next_ready_cycle(self, queue, channel: Channel, cycle: int,
                         blocked_ranks=()) -> int:
        """Earliest cycle at which :meth:`choose` could return non-None.

        FR-FCFS considers every queued request each cycle, so the bound
        is the minimum earliest-issue cycle over each request's
        currently required command.  Requests sharing a bank share
        timing state, so the scan runs over the queue's per-bank
        aggregates (O(distinct banks), not O(requests)): a bank's
        candidates are the column command when some request hits the
        open row, PRE when some request conflicts with it, and ACT when
        the bank is closed.  The result is a *lower* bound, valid until
        the next command issue or enqueue (the event engine recomputes
        after both): waking early and finding nothing to do is exactly
        what the dense engine does on every idle cycle.
        """
        best = NEVER
        col_cmd = None
        for rank, bank in queue.banks():
            if rank in blocked_ranks:
                continue  # reserved for refresh; refresh wake-ups cover it
            open_row = channel.bank(rank, bank).open_row
            if open_row is None:
                t = channel.earliest(Command.ACT, rank, bank)
            else:
                hits = queue.requests_for_row(rank, bank, open_row)
                if hits:
                    if col_cmd is None:
                        # Queues are homogeneous (one per direction).
                        first = next(iter(queue))
                        col_cmd = Command.WR if first.is_write else Command.RD
                    t = channel.earliest(col_cmd, rank, bank)
                else:
                    t = NEVER
                if hits < queue.requests_for_bank(rank, bank):
                    t_pre = channel.earliest(Command.PRE, rank, bank)
                    if t_pre < t:
                        t = t_pre
            if t < best:
                best = t
                if best <= cycle + 1:
                    break  # cannot get any earlier than "next cycle"
        return best


class FCFSScheduler:
    """Strict in-order service of the oldest request."""

    name = "fcfs"

    def choose(self, queue, channel: Channel, cycle: int,
               blocked_ranks=()) -> Optional[SchedulerDecision]:
        for req in queue:
            if req.rank in blocked_ranks:
                continue
            cmd = required_command(req, channel)
            if channel.can_issue(cmd, req.rank, req.bank, cycle):
                return SchedulerDecision(req, cmd)
            return None  # head-of-line blocking: only the oldest counts
        return None

    def next_ready_cycle(self, queue, channel: Channel, cycle: int,
                         blocked_ranks=()) -> int:
        """Earliest possible pick: only the (unblocked) head counts."""
        del cycle
        for req in queue:
            if req.rank in blocked_ranks:
                continue  # choose() skips refresh-reserved ranks too
            cmd = required_command(req, channel)
            return channel.earliest(cmd, req.rank, req.bank)
        return NEVER


def make_scheduler(name: str):
    if name == "frfcfs":
        return FRFCFSScheduler()
    if name == "fcfs":
        return FCFSScheduler()
    raise ValueError(f"unknown scheduler {name!r}")
