"""Memory requests exchanged between the cache hierarchy and the
memory controller.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional


class RequestType(enum.Enum):
    READ = "read"
    WRITE = "write"


_request_ids = itertools.count()


class Request:
    """One cache-line-sized memory request.

    Attributes:
        line_address: cache-line address (byte address >> 6).
        type: read or write.
        core_id: issuing core (writebacks inherit the evicting core).
        channel/rank/bank/row/column: decoded DRAM coordinates, filled
            in by the controller's address mapper at enqueue time.
        enqueue_cycle: bus cycle the request entered its queue.
        issue_cycle: bus cycle its column command was issued (-1 before).
        done_cycle: bus cycle the data transfer completed (-1 before).
        needed_act: True when servicing required a row activation (i.e.
            this request was a row miss or conflict).
        act_was_hit: True when its ACT used reduced timings.
        callback: invoked as ``callback(request)`` when a READ's data
            arrives (WRITEs are posted and complete at issue).
    """

    __slots__ = ("id", "line_address", "type", "core_id", "channel",
                 "rank", "bank", "row", "column", "enqueue_cycle",
                 "issue_cycle", "done_cycle", "needed_act", "act_was_hit",
                 "callback")

    def __init__(self, line_address: int, type: RequestType,
                 core_id: int = 0,
                 callback: Optional[Callable[["Request"], None]] = None):
        self.id = next(_request_ids)
        self.line_address = line_address
        self.type = type
        self.core_id = core_id
        self.channel = -1
        self.rank = -1
        self.bank = -1
        self.row = -1
        self.column = -1
        self.enqueue_cycle = -1
        self.issue_cycle = -1
        self.done_cycle = -1
        self.needed_act = False
        self.act_was_hit = False
        self.callback = callback

    # ------------------------------------------------------------------

    @property
    def is_read(self) -> bool:
        return self.type is RequestType.READ

    @property
    def is_write(self) -> bool:
        return self.type is RequestType.WRITE

    @property
    def latency(self) -> int:
        """Queueing + service latency in bus cycles (reads only)."""
        if self.done_cycle < 0 or self.enqueue_cycle < 0:
            return -1
        return self.done_cycle - self.enqueue_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Request(#{self.id} {self.type.value} line={self.line_address:#x} "
                f"core={self.core_id} ch{self.channel} ra{self.rank} "
                f"ba{self.bank} row{self.row})")


def read_request(line_address: int, core_id: int = 0,
                 callback=None) -> Request:
    return Request(line_address, RequestType.READ, core_id, callback)


def write_request(line_address: int, core_id: int = 0) -> Request:
    return Request(line_address, RequestType.WRITE, core_id)
