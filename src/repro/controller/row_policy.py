"""Row-buffer management policies (paper Section 3).

* **Open-row** keeps a row open after column accesses; it is closed only
  when a conflicting request forces a precharge.  Best for single-core
  workloads with high row-buffer locality (the paper's single-core
  configuration).
* **Closed-row** proactively precharges a bank once no queued request
  hits the open row, so the next (likely conflicting) activation does
  not pay the precharge on its critical path.  Best for multi-core
  workloads dominated by bank conflicts (the paper's 8-core
  configuration).
"""

from __future__ import annotations


class RowPolicy:
    """Decides whether to precharge after servicing a column command."""

    name = "abstract"

    def wants_precharge_after(self, request, read_queue, write_queue) -> bool:
        raise NotImplementedError


class OpenRowPolicy(RowPolicy):
    """Leave rows open; precharge only on demand (conflicts)."""

    name = "open"

    def wants_precharge_after(self, request, read_queue, write_queue) -> bool:
        return False


class ClosedRowPolicy(RowPolicy):
    """Precharge once the request buffer holds no more hits to the row.

    Mirrors the paper's description: "the closed-row policy proactively
    closes the active row after servicing all row-hit requests in the
    request buffer".
    """

    name = "closed"

    def wants_precharge_after(self, request, read_queue, write_queue) -> bool:
        rank, bank, row = request.rank, request.bank, request.row
        if read_queue.requests_for_row(rank, bank, row):
            return False
        if write_queue.requests_for_row(rank, bank, row):
            return False
        return True


def make_row_policy(name: str) -> RowPolicy:
    if name == "open":
        return OpenRowPolicy()
    if name == "closed":
        return ClosedRowPolicy()
    raise ValueError(f"unknown row policy {name!r}")
