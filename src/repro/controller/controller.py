"""The per-channel memory controller.

Responsibilities (paper Table 1 configuration):

* 64-entry read and write queues with write coalescing and
  read-from-write-queue forwarding.
* FR-FCFS scheduling with watermark-based write draining.
* Open-row / closed-row buffer management.
* Refresh: one REF per rank every tREFI, preceded by precharging.
* Hosting the latency mechanism: lookup on ACT, insert on PRE, and
  periodic invalidation maintenance (ChargeCache).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.controller.queues import RequestQueue
from repro.controller.request import Request
from repro.controller.row_policy import make_row_policy
from repro.controller.scheduler import SchedulerDecision, make_scheduler
from repro.core.timing_policy import LatencyMechanism
from repro.dram.channel import Channel
from repro.dram.commands import Command
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import NEVER, TimingParameters


class ControllerStats:
    """Post-warmup event counters for one channel."""

    __slots__ = ("reads", "writes", "read_row_hits", "write_row_hits",
                 "activations", "act_reduced", "precharges", "refreshes",
                 "forwards", "read_latency_sum", "read_count",
                 "active_cycle_base", "rank_active_base", "start_cycle")

    def __init__(self):
        self.reset(0, 0, 0)

    def reset(self, cycle: int, active_cycle_base: int,
              rank_active_base: int = 0) -> None:
        self.reads = 0
        self.writes = 0
        self.read_row_hits = 0
        self.write_row_hits = 0
        self.activations = 0
        self.act_reduced = 0
        self.precharges = 0
        self.refreshes = 0
        self.forwards = 0
        self.read_latency_sum = 0
        self.read_count = 0
        self.active_cycle_base = active_cycle_base
        self.rank_active_base = rank_active_base
        self.start_cycle = cycle

    @property
    def row_hit_rate(self) -> float:
        total = self.reads + self.writes
        hits = self.read_row_hits + self.write_row_hits
        return hits / total if total else 0.0

    @property
    def act_hit_rate(self) -> float:
        return self.act_reduced / self.activations if self.activations else 0.0

    @property
    def average_read_latency(self) -> float:
        return self.read_latency_sum / self.read_count if self.read_count else 0.0


class MemoryController:
    """Command-issue engine for one memory channel."""

    def __init__(self, channel_index: int, timing: TimingParameters,
                 num_ranks: int, num_banks: int, rows_per_bank: int,
                 controller_config, mechanism: LatencyMechanism,
                 refresh_enabled: bool = True, rltl_probe=None,
                 log_commands: bool = False,
                 refresh: Optional[RefreshScheduler] = None):
        controller_config.validate()
        self.index = channel_index
        self.timing = timing
        self.config = controller_config
        self.channel = Channel(timing, num_ranks, num_banks,
                               index=channel_index,
                               log_commands=log_commands)
        if refresh is None:
            refresh = RefreshScheduler(timing, num_ranks, rows_per_bank,
                                       enabled=refresh_enabled)
        self.refresh = refresh
        self.mechanism = mechanism
        self.rltl_probe = rltl_probe
        self.scheduler = make_scheduler(controller_config.scheduler)
        self.row_policy = make_row_policy(controller_config.row_policy)
        self.read_q = RequestQueue(controller_config.read_queue_size)
        self.write_q = RequestQueue(controller_config.write_queue_size)
        self._drain_writes = False
        self._wq_high = int(controller_config.write_high_watermark
                            * controller_config.write_queue_size)
        self._wq_low = int(controller_config.write_low_watermark
                           * controller_config.write_queue_size)
        self._pending_pre: Set[Tuple[int, int]] = set()
        self._act_owner: Dict[Tuple[int, int], int] = {}
        self._read_events: List[Tuple[int, int, Request]] = []
        self._event_seq = itertools.count()
        self.stats = ControllerStats()
        self._num_ranks = num_ranks
        self._last_issue_cycle = -1
        self._issue_count = 0
        self._forward_count = 0
        self._wake_cache: Optional[Tuple[Tuple[int, int, int, int], int]] \
            = None

    # ------------------------------------------------------------------
    # Request entry points (called by the cache hierarchy / system)
    # ------------------------------------------------------------------

    def enqueue_read(self, request: Request, cycle: int) -> bool:
        """Queue a read; may be served by write-queue forwarding."""
        if request.channel != self.index:
            raise ValueError("request routed to the wrong channel")
        forwarded = self.write_q.find_line(request.line_address)
        if forwarded is not None:
            # Serve from the write queue: newest data, ~one-cycle latency.
            request.enqueue_cycle = cycle
            request.done_cycle = cycle + 1
            self.stats.forwards += 1
            self._forward_count += 1
            heapq.heappush(self._read_events,
                           (cycle + 1, next(self._event_seq), request))
            return True
        if not self.read_q.push(request, cycle):
            return False
        self._cancel_pending_pre_if_hit(request)
        return True

    def enqueue_write(self, request: Request, cycle: int) -> bool:
        """Queue a (posted) write; coalesces with queued writes."""
        if request.channel != self.index:
            raise ValueError("request routed to the wrong channel")
        if self.write_q.coalesce_write(request.line_address):
            return True
        if not self.write_q.push(request, cycle):
            return False
        self._cancel_pending_pre_if_hit(request)
        return True

    def _cancel_pending_pre_if_hit(self, request: Request) -> None:
        key = (request.rank, request.bank)
        if key in self._pending_pre:
            bank = self.channel.bank(request.rank, request.bank)
            if bank.open_row == request.row:
                self._pending_pre.discard(key)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance to bus cycle ``cycle``: fire completions, issue <= 1
        command.

        The dense engine calls this every cycle; the event engine only
        at cycles :meth:`next_event_cycle` reported.  Both produce the
        same command stream because nothing here depends on *how* the
        clock reached ``cycle``: completions pop by timestamp,
        mechanism maintenance is batch-exact, and scheduling reads only
        current queue/bank state.
        """
        events = self._read_events
        while events and events[0][0] <= cycle:
            _, _, req = heapq.heappop(events)
            self.stats.read_latency_sum += req.done_cycle - req.enqueue_cycle
            self.stats.read_count += 1
            if req.callback is not None:
                req.callback(req)

        self.mechanism.maintain(cycle)

        blocked = self._refresh_step(cycle)
        if blocked is None:
            self._note_issue(cycle)
            return  # a refresh-related command was issued this cycle

        queue = self._select_queue()
        if queue:
            decision = self.scheduler.choose(queue, self.channel, cycle,
                                             blocked)
            if decision is not None:
                self._execute(decision, queue, cycle)
                self._note_issue(cycle)
                return

        if self._pending_pre and self._issue_pending_pre(cycle, blocked):
            self._note_issue(cycle)

    def _note_issue(self, cycle: int) -> None:
        """Record a command issue and sample queue occupancy.

        Issue-time sampling (instead of the old ``cycle & 63`` wall
        clock) makes the statistic independent of which cycles the
        engine visits, so dense and event runs report identical
        occupancies.
        """
        self._last_issue_cycle = cycle
        self._issue_count += 1
        self.read_q.sample_occupancy()
        self.write_q.sample_occupancy()

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which this controller can act.

        This is the controller's wake-up bid to the event engine: a
        lower bound (never an overestimate) on the next cycle where
        :meth:`tick` would do anything - fire a read completion, make
        refresh progress, issue a scheduled command or a pending
        precharge, or run a mechanism sweep.  The bound is valid until
        the next visited cycle, because every state change (enqueue,
        issue, completion) happens at visited cycles and the engine
        recomputes after each one.

        Multi-rank channels: the refresh loop, the scheduler bound and
        the pending-PRE scan below each iterate every rank, so the bid
        stays exact for ranks_per_channel > 1 (audited; pinned by
        tests/integration/test_scenario_matrix.py::TestMultiRankWakeBid
        and the scenario parity grid).
        """
        if self._last_issue_cycle == cycle:
            return self._post_issue_bid(cycle)
        # All the timing state this bid derives from changes only on
        # command issues, queue pushes/removals, or write-forwards, so
        # a bid computed earlier stays valid until one of those version
        # counters moves (or the bid cycle itself is reached).
        key = (self._issue_count, self._forward_count,
               self.read_q.version, self.write_q.version)
        if self._wake_cache is not None:
            cached_key, bid = self._wake_cache
            if cached_key == key and bid > cycle:
                return bid
        nxt = NEVER
        if self._read_events:
            nxt = self._read_events[0][0]

        # Refresh: ranks whose REF is already due block normal
        # scheduling; wake when their refresh can make progress.
        # Ranks due later wake the controller at the due cycle.
        blocked: List[int] = []
        for rank_idx in range(self._num_ranks):
            due = self.refresh.next_due(rank_idx)
            if due > cycle:
                if due < nxt:
                    nxt = due
            else:
                blocked.append(rank_idx)
                t = self.channel.earliest_refresh_action(rank_idx)
                if t < nxt:
                    nxt = t
        if nxt <= cycle + 1:
            return cycle + 1

        # Scheduled commands.  Only the queue :meth:`_select_queue`
        # picks matters: the selection is a pure function of queue
        # lengths (the drain latch is idempotent in them), and lengths
        # change only at visited cycles - where this bid is recomputed
        # - so the selection provably cannot flip during a skip.
        queue = self._select_queue()
        if queue:
            t = self.scheduler.next_ready_cycle(queue, self.channel,
                                                cycle, blocked)
            if t < nxt:
                nxt = t
            if nxt <= cycle + 1:
                return cycle + 1

        for rank, bank in self._pending_pre:
            if rank in blocked:
                continue  # refresh handling owns this rank for now
            if self.channel.bank(rank, bank).open_row is None:
                continue
            t = self.channel.earliest(Command.PRE, rank, bank)
            if t < nxt:
                nxt = t

        t = self.mechanism.next_wake(cycle)
        if t < nxt:
            nxt = t
        nxt = nxt if nxt > cycle else cycle + 1
        self._wake_cache = (key, nxt)
        return nxt

    def _post_issue_bid(self, cycle: int) -> int:
        """Cheap bank-state-only bid for the cycle a command issued on.

        The full scan above runs the scheduler's exact ready-time
        computation; right after an issue that cost is wasted because
        the freshly-claimed command bus and bank timings gate everything
        anyway.  This bid instead takes per-bank timing registers only
        (ignoring tFAW, data-bus and rank-switch constraints, which can
        only push commands *later*), so every component is still a
        valid lower bound on the controller's next observable action:

        * read completions are exact (`_read_events` head);
        * a rank whose refresh is already due may need a PRE/REF as
          soon as next cycle, so bid ``cycle + 1`` (rare, and the full
          scan takes over at the visited cycle);
        * for every bank the selected queue or the pending-PRE set
          could touch, the earliest command is gated by ``next_act``
          (closed bank) or ``min(next_rd, next_wr, next_pre)`` (open
          bank: column command on a row hit, PRE on a miss), maxed
          with the command-bus gate `next_cmd`;
        * the mechanism sweep bid is the mechanism's own contract.

        Underestimates cost one extra visited cycle (the engine
        recomputes the exact bid there); overestimates would break
        dense/event parity, which the dense-stepping regression test
        (tests/integration/test_wake_bids.py) pins.
        """
        nxt = NEVER
        if self._read_events:
            nxt = self._read_events[0][0]
        for rank_idx in range(self._num_ranks):
            due = self.refresh.next_due(rank_idx)
            if due <= cycle:
                return cycle + 1
            if due < nxt:
                nxt = due
        t = self.mechanism.next_wake(cycle)
        if t < nxt:
            nxt = t
        channel = self.channel
        queue = self._select_queue()
        candidates = set(queue.banks())
        candidates.update(self._pending_pre)
        if candidates:
            arrays = channel.bank_arrays
            flat = arrays.flat_index
            idx = np.fromiter((flat(r, b) for r, b in candidates),
                              dtype=np.int64, count=len(candidates))
            col = np.minimum(np.minimum(arrays.next_rd[idx],
                                        arrays.next_wr[idx]),
                             arrays.next_pre[idx])
            gates = np.where(arrays.open_row[idx] >= 0, col,
                             arrays.next_act[idx])
            t = max(int(gates.min()), channel.next_cmd)
            if t < nxt:
                nxt = t
        return nxt if nxt > cycle else cycle + 1

    # ------------------------------------------------------------------
    # Refresh handling
    # ------------------------------------------------------------------

    def _refresh_step(self, cycle: int) -> Optional[Set[int]]:
        """Handle due refreshes.

        Returns the set of refresh-blocked ranks, or None when a
        command was issued (the channel's one-command budget is spent).
        """
        blocked: Set[int] = set()
        for rank_idx in range(self._num_ranks):
            if not self.refresh.rank_needs_refresh(rank_idx, cycle):
                continue
            blocked.add(rank_idx)
        if not blocked:
            return blocked
        for rank_idx in sorted(blocked):
            rank = self.channel.ranks[rank_idx]
            if rank.all_banks_closed():
                if self.channel.can_issue(Command.REF, rank_idx, 0, cycle):
                    self.channel.issue_refresh(rank_idx, cycle)
                    self.refresh.on_refresh_issued(rank_idx, cycle)
                    self.stats.refreshes += 1
                    return None
            else:
                for bank_idx, bank in enumerate(rank.banks):
                    if bank.open_row is None:
                        continue
                    if self.channel.can_issue(Command.PRE, rank_idx,
                                              bank_idx, cycle):
                        self._issue_pre(rank_idx, bank_idx, cycle)
                        return None
        return blocked

    # ------------------------------------------------------------------
    # Scheduling helpers
    # ------------------------------------------------------------------

    def _update_drain_mode(self) -> None:
        """Advance the watermark latch.

        The latch transitions are idempotent in the queue lengths
        (re-evaluating with unchanged queues never flips the state), a
        property the event engine relies on: queue lengths only change
        at visited cycles, so the latch is provably stable across
        skipped ones.  Opportunistic draining when the read queue is
        empty is therefore *not* latched - it is decided afresh in
        :meth:`_select_queue` - because routing it through the latch
        would make the state oscillate every evaluation at small write
        occupancies (the drain would turn on, immediately drop below
        the low watermark, turn off, and repeat), making command
        timing depend on how often the controller is polled.
        """
        wq_len = len(self.write_q)
        if self._drain_writes:
            if wq_len <= self._wq_low:
                self._drain_writes = False
        else:
            if wq_len >= self._wq_high:
                self._drain_writes = True

    def _select_queue(self) -> RequestQueue:
        """The queue the scheduler serves this cycle."""
        self._update_drain_mode()
        if self._drain_writes:
            return self.write_q
        if self.read_q.is_empty and len(self.write_q):
            return self.write_q  # nothing to read: sneak writes out
        return self.read_q

    def _execute(self, decision: SchedulerDecision, queue: RequestQueue,
                 cycle: int) -> None:
        req = decision.request
        cmd = decision.command
        if cmd is Command.ACT:
            self._issue_act(req, cycle)
        elif cmd is Command.PRE:
            self._issue_pre(req.rank, req.bank, cycle)
        elif cmd is Command.RD:
            done = self.channel.issue_read(req.rank, req.bank, cycle)
            req.issue_cycle = cycle
            req.done_cycle = done
            queue.remove(req)
            heapq.heappush(self._read_events,
                           (done, next(self._event_seq), req))
            self.stats.reads += 1
            if not req.needed_act:
                self.stats.read_row_hits += 1
            self._maybe_close_after(req)
        elif cmd is Command.WR:
            done = self.channel.issue_write(req.rank, req.bank, cycle)
            req.issue_cycle = cycle
            req.done_cycle = done
            queue.remove(req)
            self.stats.writes += 1
            if not req.needed_act:
                self.stats.write_row_hits += 1
            self._maybe_close_after(req)
        else:  # pragma: no cover - scheduler never returns others
            raise RuntimeError(f"unexpected command {cmd}")

    def _issue_act(self, req: Request, cycle: int) -> None:
        timings = self.mechanism.on_activate(req.rank, req.bank, req.row,
                                             req.core_id, cycle)
        self.channel.issue_activate(req.rank, req.bank, req.row, cycle,
                                    timings)
        req.needed_act = True
        req.act_was_hit = timings is not None
        self._act_owner[(req.rank, req.bank)] = req.core_id
        self.stats.activations += 1
        if req.act_was_hit:
            self.stats.act_reduced += 1
        if self.rltl_probe is not None:
            self.rltl_probe.on_activate(self.index, req.rank, req.bank,
                                        req.row, cycle)

    def _issue_pre(self, rank: int, bank: int, cycle: int) -> None:
        row = self.channel.issue_precharge(rank, bank, cycle)
        owner = self._act_owner.get((rank, bank), 0)
        self.mechanism.on_precharge(rank, bank, row, owner, cycle)
        self._pending_pre.discard((rank, bank))
        self.stats.precharges += 1
        if self.rltl_probe is not None:
            self.rltl_probe.on_precharge(self.index, rank, bank, row, cycle)

    def _maybe_close_after(self, req: Request) -> None:
        if self.row_policy.wants_precharge_after(req, self.read_q,
                                                 self.write_q):
            self._pending_pre.add((req.rank, req.bank))

    def _issue_pending_pre(self, cycle: int, blocked: Set[int]) -> bool:
        """Issue one policy-requested PRE if legal; True when issued."""
        for rank, bank in list(self._pending_pre):
            if rank in blocked:
                continue
            bank_state = self.channel.bank(rank, bank)
            if bank_state.open_row is None:
                self._pending_pre.discard((rank, bank))
                continue
            if self.channel.can_issue(Command.PRE, rank, bank, cycle):
                self._issue_pre(rank, bank, cycle)
                return True
        return False

    # ------------------------------------------------------------------
    # Introspection / statistics
    # ------------------------------------------------------------------

    @property
    def has_work(self) -> bool:
        return bool(self.read_q or self.write_q or self._read_events
                    or self._pending_pre)

    def next_refresh_due(self) -> int:
        return min(self.refresh.next_due(r) for r in range(self._num_ranks))

    def outstanding_reads(self) -> int:
        return len(self.read_q) + len(self._read_events)

    def active_cycles(self, cycle: int) -> int:
        """Bank-open cycles accumulated since the last stats reset."""
        return self.channel.active_cycles_until(cycle) \
            - self.stats.active_cycle_base

    def rank_active_cycles(self, cycle: int) -> int:
        """Per-rank any-bank-open cycles since the last stats reset."""
        return self.channel.rank_active_cycles_until(cycle) \
            - self.stats.rank_active_base

    def reset_stats(self, cycle: int) -> None:
        self.stats.reset(cycle, self.channel.active_cycles_until(cycle),
                         self.channel.rank_active_cycles_until(cycle))
        self.mechanism.reset_stats()
        self.read_q.reset_stats()
        self.write_q.reset_stats()
        if self.rltl_probe is not None:
            self.rltl_probe.reset()
