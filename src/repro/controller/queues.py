"""Bounded request queues with arrival-order iteration.

The controller keeps one read queue and one write queue per channel
(64 entries each in the paper's configuration).  Writes coalesce by
line address; reads may be served by forwarding from a queued write
(the data is newer than DRAM's copy).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.controller.request import Request


class RequestQueue:
    """FIFO-ordered bounded queue indexed by line address."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: List[Request] = []
        self._by_line: Dict[int, Request] = {}
        # Statistics.
        self.enqueued = 0
        self.coalesced = 0
        self.occupancy_accum = 0
        self.occupancy_samples = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def occupancy_fraction(self) -> float:
        return len(self._items) / self.capacity

    # ------------------------------------------------------------------

    def push(self, request: Request, cycle: int) -> bool:
        """Append ``request``; returns False when the queue is full."""
        if self.is_full:
            return False
        request.enqueue_cycle = cycle
        self._items.append(request)
        self._by_line[request.line_address] = request
        self.enqueued += 1
        return True

    def coalesce_write(self, line_address: int) -> bool:
        """True if a queued write to ``line_address`` absorbed this one."""
        existing = self._by_line.get(line_address)
        if existing is not None and existing.is_write:
            self.coalesced += 1
            return True
        return False

    def find_line(self, line_address: int) -> Optional[Request]:
        return self._by_line.get(line_address)

    def remove(self, request: Request) -> None:
        self._items.remove(request)
        if self._by_line.get(request.line_address) is request:
            del self._by_line[request.line_address]

    def has_row_hit(self, channel_state) -> bool:
        """Any queued request targeting a currently open row?"""
        for req in self._items:
            bank = channel_state.bank(req.rank, req.bank)
            if bank.open_row == req.row:
                return True
        return False

    def requests_for_row(self, rank: int, bank: int, row: int) -> int:
        """Count queued requests to a specific (rank, bank, row)."""
        count = 0
        for req in self._items:
            if req.rank == rank and req.bank == bank and req.row == row:
                count += 1
        return count

    def sample_occupancy(self) -> None:
        self.occupancy_accum += len(self._items)
        self.occupancy_samples += 1

    @property
    def average_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_accum / self.occupancy_samples
