"""Bounded request queues with arrival-order iteration.

The controller keeps one read queue and one write queue per channel
(64 entries each in the paper's configuration).  Writes coalesce by
line address; reads may be served by forwarding from a queued write
(the data is newer than DRAM's copy).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.controller.request import Request


class RequestQueue:
    """FIFO-ordered bounded queue indexed by line address.

    Besides the arrival-order list, the queue maintains per-(rank,
    bank) and per-(rank, bank, row) request counts incrementally, so
    row-policy checks and the event engine's earliest-ready queries run
    in O(distinct banks) instead of rescanning every entry.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: List[Request] = []
        self._by_line: Dict[int, Request] = {}
        self._bank_count: Dict[Tuple[int, int], int] = {}
        self._row_count: Dict[Tuple[int, int, int], int] = {}
        #: Bumped on every push/remove; lets the event engine cache
        #: earliest-ready computations between content changes.
        self.version = 0
        # Statistics.
        self.enqueued = 0
        self.coalesced = 0
        self.occupancy_accum = 0
        self.occupancy_samples = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def occupancy_fraction(self) -> float:
        return len(self._items) / self.capacity

    # ------------------------------------------------------------------

    def push(self, request: Request, cycle: int) -> bool:
        """Append ``request``; returns False when the queue is full."""
        if self.is_full:
            return False
        request.enqueue_cycle = cycle
        self._items.append(request)
        self._by_line[request.line_address] = request
        bank_key = (request.rank, request.bank)
        self._bank_count[bank_key] = self._bank_count.get(bank_key, 0) + 1
        row_key = (request.rank, request.bank, request.row)
        self._row_count[row_key] = self._row_count.get(row_key, 0) + 1
        self.version += 1
        self.enqueued += 1
        return True

    def coalesce_write(self, line_address: int) -> bool:
        """True if a queued write to ``line_address`` absorbed this one."""
        existing = self._by_line.get(line_address)
        if existing is not None and existing.is_write:
            self.coalesced += 1
            return True
        return False

    def find_line(self, line_address: int) -> Optional[Request]:
        return self._by_line.get(line_address)

    def remove(self, request: Request) -> None:
        self._items.remove(request)
        if self._by_line.get(request.line_address) is request:
            del self._by_line[request.line_address]
        bank_key = (request.rank, request.bank)
        left = self._bank_count[bank_key] - 1
        if left:
            self._bank_count[bank_key] = left
        else:
            del self._bank_count[bank_key]
        row_key = (request.rank, request.bank, request.row)
        left = self._row_count[row_key] - 1
        if left:
            self._row_count[row_key] = left
        else:
            del self._row_count[row_key]
        self.version += 1

    def has_row_hit(self, channel_state) -> bool:
        """Any queued request targeting a currently open row?"""
        for (rank, bank), _count in self._bank_count.items():
            open_row = channel_state.bank(rank, bank).open_row
            if open_row is not None and \
                    (rank, bank, open_row) in self._row_count:
                return True
        return False

    def requests_for_bank(self, rank: int, bank: int) -> int:
        """Count queued requests to a specific (rank, bank)."""
        return self._bank_count.get((rank, bank), 0)

    def requests_for_row(self, rank: int, bank: int, row: int) -> int:
        """Count queued requests to a specific (rank, bank, row)."""
        return self._row_count.get((rank, bank, row), 0)

    def banks(self) -> Iterator[Tuple[int, int]]:
        """The distinct (rank, bank) pairs with queued requests."""
        return iter(self._bank_count)

    def sample_occupancy(self) -> None:
        self.occupancy_accum += len(self._items)
        self.occupancy_samples += 1

    def reset_stats(self) -> None:
        """Zero the enqueue/coalesce counters and occupancy samples."""
        self.enqueued = 0
        self.coalesced = 0
        self.occupancy_accum = 0
        self.occupancy_samples = 0

    @property
    def average_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_accum / self.occupancy_samples
