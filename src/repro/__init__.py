"""repro - a full reproduction of *ChargeCache: Reducing DRAM Latency
by Exploiting Row Access Locality* (Hassan et al., HPCA 2016).

Public API quick tour::

    from repro import (
        single_core_config, System, Organization, make_trace,
    )

    cfg = single_core_config(mechanism="chargecache")
    org = Organization.from_config(cfg.dram)
    system = System(cfg, [make_trace("mcf", org)])
    result = system.run()
    print(result.total_ipc, result.mechanism_hit_rate)

Subpackages:

* :mod:`repro.core` - ChargeCache, NUAT, LL-DRAM, AL-DRAM mechanisms
  and the mechanism registry/spec mini-language
  (``cfg = single_core_config(mechanism="chargecache(entries=256)+nuat")``).
* :mod:`repro.dram` - DDR3 device timing model.
* :mod:`repro.controller` - FR-FCFS memory controller.
* :mod:`repro.cpu` - trace-driven cores, LLC, system runner.
* :mod:`repro.workloads` - synthetic SPEC/TPC/STREAM-like traces.
* :mod:`repro.circuit` - sense-amplifier transient model (Fig. 6, Tab. 2).
* :mod:`repro.energy` - DRAM energy and controller area/power models.
* :mod:`repro.stats` - metrics and the RLTL profiler.
* :mod:`repro.harness` - per-figure/table experiment drivers.
"""

from repro.config import (
    SimulationConfig,
    ProcessorConfig,
    CacheConfig,
    DRAMConfig,
    ControllerConfig,
    ChargeCacheConfig,
    NUATConfig,
    single_core_config,
    eight_core_config,
    MECHANISMS,
)
from repro.core.registry import (
    canonical_spec,
    mechanism_names,
    parse_mechanism_spec,
    register_mechanism,
)
from repro.cpu.system import System, RunResult
from repro.dram.organization import Organization
from repro.dram.standards import StandardProfile, profile, profile_for_config
from repro.dram.timing import DDR3_1600, TimingParameters
from repro.energy.drampower import PowerParameters, energy_for_run
from repro.energy.mcpat import hcrac_overhead, overhead_for_config
from repro.workloads.spec_like import make_trace, WORKLOAD_NAMES
from repro.workloads.mixes import make_mix_traces, MIX_NAMES

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "ProcessorConfig",
    "CacheConfig",
    "DRAMConfig",
    "ControllerConfig",
    "ChargeCacheConfig",
    "NUATConfig",
    "single_core_config",
    "eight_core_config",
    "MECHANISMS",
    "canonical_spec",
    "mechanism_names",
    "parse_mechanism_spec",
    "register_mechanism",
    "System",
    "RunResult",
    "Organization",
    "DDR3_1600",
    "TimingParameters",
    "StandardProfile",
    "profile",
    "profile_for_config",
    "PowerParameters",
    "energy_for_run",
    "hcrac_overhead",
    "overhead_for_config",
    "make_trace",
    "WORKLOAD_NAMES",
    "make_mix_traces",
    "MIX_NAMES",
    "__version__",
]
