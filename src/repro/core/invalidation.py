"""HCRAC entry invalidation schemes (paper Section 4.2.3).

The paper proposes a two-counter periodic scheme instead of per-entry
expiry timestamps:

* **IIC** (Invalidation Interval Counter) counts cycles up to ``C/k``,
  where ``C`` is the number of cycles a row stays highly charged (the
  caching duration) and ``k`` the number of HCRAC entries.
* **EC** (Entry Counter) points at the next entry to invalidate; each
  time IIC wraps, entry EC is invalidated and EC advances.

Every entry is therefore invalidated (at least) once every ``C`` cycles,
guaranteeing no valid entry is older than the caching duration, at the
cost of occasionally invalidating a *younger* entry prematurely (the
paper measures this loss as negligible; we do too - see
``tests/core/test_invalidation.py``).

:class:`TimestampInvalidator` is the storage-heavier exact scheme the
paper rejects; it is kept as a cross-checking oracle.
"""

from __future__ import annotations

from typing import Dict

from repro.core.hcrac import HCRAC


class PeriodicInvalidator:
    """The paper's IIC/EC two-counter scheme, driven by cycle deltas.

    Instead of literally incrementing a counter every cycle (wasteful in
    a Python simulator), :meth:`advance_to` computes how many IIC wraps
    occurred since the last call and performs that many entry
    invalidations - behaviourally identical to the hardware scheme.
    """

    def __init__(self, hcrac: HCRAC, duration_cycles: int):
        if duration_cycles < hcrac.entries:
            raise ValueError(
                "caching duration shorter than one invalidation sweep; "
                f"need >= {hcrac.entries} cycles, got {duration_cycles}")
        self.hcrac = hcrac
        self.duration_cycles = duration_cycles
        #: IIC wrap period: C / k cycles per entry.
        self.interval = max(1, duration_cycles // hcrac.entries)
        self.entry_counter = 0          # EC
        self._last_cycle = 0            # IIC is (cycle - last) % interval
        self.sweeps = 0                 # completed full passes

    def advance_to(self, cycle: int) -> int:
        """Run the scheme up to ``cycle``; returns entries invalidated."""
        if cycle < self._last_cycle:
            raise ValueError("cycle moved backwards")
        wraps = (cycle - self._last_cycle) // self.interval
        if wraps == 0:
            return 0
        self._last_cycle += wraps * self.interval
        cleared = 0
        k = self.hcrac.entries
        if wraps >= k:
            # One or more full sweeps elapsed: everything is stale.
            self.hcrac.clear()
            self.sweeps += wraps // k
            wraps %= k
            cleared = k
        for _ in range(wraps):
            if self.hcrac.invalidate_entry(self.entry_counter):
                cleared += 1
            self.entry_counter += 1
            if self.entry_counter == k:
                self.entry_counter = 0
                self.sweeps += 1
        return cleared

    def next_wrap_cycle(self) -> int:
        """Cycle of the next IIC wrap (the next single-entry sweep step).

        Event-engine wake-up hook: :meth:`advance_to` is batch-exact,
        so correctness never requires being called at the wrap itself,
        but registering the wrap keeps the sweep running on schedule
        (entries are invalidated at the same absolute cycles the
        hardware scheme would) instead of only at command boundaries.
        """
        return self._last_cycle + self.interval

    def reset(self, cycle: int = 0) -> None:
        self._last_cycle = cycle
        self.entry_counter = 0


class TimestampInvalidator:
    """Exact per-key expiry (the rejected higher-cost design).

    Stores an insertion timestamp per key and reports whether a key is
    still within the caching duration.  Used by tests as an oracle: the
    periodic scheme must never report a *stale* entry as valid, though
    it may drop valid entries early.
    """

    def __init__(self, duration_cycles: int):
        self.duration_cycles = duration_cycles
        self._inserted_at: Dict[int, int] = {}

    def record_insert(self, key: int, cycle: int) -> None:
        self._inserted_at[key] = cycle

    def is_fresh(self, key: int, cycle: int) -> bool:
        stamp = self._inserted_at.get(key)
        return stamp is not None and cycle - stamp <= self.duration_cycles

    def drop(self, key: int) -> None:
        self._inserted_at.pop(key, None)
