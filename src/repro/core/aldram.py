"""AL-DRAM-style temperature-adaptive timings (paper Section 7.1).

Adaptive-Latency DRAM (Lee et al., HPCA 2015 [48]) observes that DRAM
rarely operates at the worst-case 85 C for which timings are specified;
a cooler device leaks less, so *every* activation can use lowered
tRCD/tRAS.  The ChargeCache paper discusses AL-DRAM as orthogonal:

* ChargeCache's reductions hold at any temperature (they are validated
  against a worst-case-temperature cell that is only ``caching
  duration`` old).
* AL-DRAM's reductions shrink as the device heats and vanish at 85 C,
  which is why it helps little for hot 3D-stacked parts (HMC/HBM).
* The two compose: at low temperature, a ChargeCache hit row is both
  recently charged *and* slowly leaking.

:class:`ALDRAM` derives its per-temperature timings from the repo's
circuit model: the worst-case cell (64 ms old, i.e. just before its
refresh deadline) is simulated with the leakage rate of the operating
temperature, and the resulting ready/restore latencies are converted to
cycles with the same spec margins as the DDR3 baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.circuit.spice import (
    WORST_CASE_AGE_MS,
    find_latency_pair,
    spec_margins,
)
from repro.circuit.temperature import (
    WORST_CASE_TEMPERATURE_C,
    cell_model_at,
)
from repro.core.registry import MechanismContext, register_mechanism
from repro.core.timing_policy import LatencyMechanism
from repro.dram.timing import ReducedTimings, TimingParameters


@dataclass(frozen=True)
class ALDRAMParams:
    """AL-DRAM's registry parameter block.

    The operating temperature historically lives on
    :attr:`repro.config.SimulationConfig.temperature_c`; this dataclass
    gives it a per-mechanism home so spec strings can override it
    inline (``aldram(temperature=55)``).
    """

    temperature_c: float = WORST_CASE_TEMPERATURE_C

    def validate(self) -> None:
        if not -40.0 <= self.temperature_c <= 125.0:
            raise ValueError(
                f"temperature_c={self.temperature_c} outside the "
                f"modelled -40..125 C range")


def aldram_timings_at(temperature_c: float,
                      timing: TimingParameters) -> ReducedTimings:
    """Device-wide (tRCD, tRAS) at an operating temperature.

    At >= 85 C this returns the baseline timings (no reduction); cooler
    devices earn progressively lower values, floored at 1 cycle.
    """
    if temperature_c >= WORST_CASE_TEMPERATURE_C:
        return timing.default_timings()
    margin_rcd, margin_ras = spec_margins()
    model = cell_model_at(temperature_c)
    ready, restore = find_latency_pair(WORST_CASE_AGE_MS, model=model)
    trcd = max(1, math.ceil((ready + margin_rcd) / timing.tCK_ns))
    tras = max(1, math.ceil((restore + margin_ras) / timing.tCK_ns))
    return ReducedTimings(min(trcd, timing.tRCD), min(tras, timing.tRAS))


class ALDRAM(LatencyMechanism):
    """Every activation at temperature-derated timings."""

    name = "aldram"

    def __init__(self, timing: TimingParameters,
                 temperature_c: float = WORST_CASE_TEMPERATURE_C):
        super().__init__(timing)
        self.temperature_c = temperature_c
        self.timings = aldram_timings_at(temperature_c, timing)
        self._is_reduction = (self.timings.trcd < timing.tRCD
                              or self.timings.tras < timing.tRAS)

    def on_activate(self, rank: int, bank: int, row: int, core_id: int,
                    cycle: int) -> Optional[ReducedTimings]:
        self.lookups += 1
        if not self._is_reduction:
            return None
        self.hits += 1
        return self.timings

    def fork_state(self) -> "ALDRAM":
        return ALDRAM(self.timing, self.temperature_c)


@register_mechanism(
    "aldram", params=ALDRAMParams, order=40,
    aliases={"temperature": "temperature_c"},
    description="temperature-adaptive device-wide timings "
                "(Lee et al., HPCA 2015)")
def _build_aldram(ctx: MechanismContext, overrides) -> ALDRAM:
    if "temperature_c" in overrides:
        temperature = overrides["temperature_c"]
    elif ctx.config is not None:
        temperature = ctx.config.temperature_c
    else:
        temperature = ALDRAMParams().temperature_c
    ALDRAMParams(temperature_c=temperature).validate()
    return ALDRAM(ctx.timing, temperature)
