"""Composable latency-mechanism registry and spec mini-language.

The paper evaluates ChargeCache alongside and combined with NUAT,
LL-DRAM and AL-DRAM, and its capacity/duration sweeps are really a
family of *parameterized* mechanism variants.  This module makes that
family the public API:

* **Registry** - every mechanism registers itself once with
  :func:`register_mechanism` (name, params dataclass, factory).  The
  registry is the single source of truth for which mechanisms exist;
  nothing else hardcodes the menu.
* **Spec mini-language** - :func:`parse_mechanism_spec` accepts any
  ``+``-composition of registered mechanisms with inline parameter
  overrides::

      "chargecache(entries=256,duration_ms=0.5)+nuat"

  and validates it eagerly (unknown mechanism, unknown parameter, bad
  type or out-of-range value all fail at parse time, not inside a pool
  worker mid-sweep).
* **Canonical form** - :meth:`MechanismSpec.canonical` normalizes a
  spec to one string per distinct behaviour: terms sorted into a fixed
  mechanism order, parameter aliases resolved, values that equal the
  registered defaults dropped.  ``"nuat+chargecache"`` and
  ``"chargecache+nuat"`` normalize identically, which is what lets the
  run cache (:mod:`repro.harness.cache`) serve both from one entry.
* **Construction** - :func:`build` instantiates a spec against a
  :class:`MechanismContext` (channel timing, core count, refresh
  scheduler, optional :class:`~repro.config.SimulationConfig` whose
  per-mechanism blocks supply parameter defaults).  Compositions build
  an N-way :class:`~repro.core.timing_policy.CombinedMechanism` whose
  two-way behaviour is bit-identical to the historical hardcoded
  pairs.

``repro.core.timing_policy.build_mechanism`` and the plain names in
``repro.config.MECHANISMS`` remain as thin deprecation shims on top of
this module, so every pre-registry entry point keeps working
bit-identically (see DESIGN.md section 6).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

#: Canonical ordering for the built-in mechanisms.  Composition order
#: is observable only through per-mechanism stats (the combined result
#: is a commutative min), but a *stable* order is what makes canonical
#: strings deterministic across processes and import orders - they are
#: cache-key material.  Unregistered-in-this-table mechanisms sort
#: after the builtins, alphabetically.
_DEFAULT_ORDER = 1000


@dataclass(frozen=True)
class MechanismContext:
    """Everything a mechanism factory may need at construction time.

    ``config`` is optional: when present, its per-mechanism parameter
    blocks (``config.chargecache``, ``config.nuat``,
    ``config.temperature_c``) supply the defaults that inline spec
    parameters override; when absent, the registered params dataclass
    defaults apply.
    """

    timing: object
    num_cores: int = 1
    refresh_scheduler: Optional[object] = None
    config: Optional[object] = None


@dataclass(frozen=True)
class RegisteredMechanism:
    """One registry entry: name, factory and parameter schema."""

    name: str
    factory: Callable[[MechanismContext, Dict[str, object]], object]
    params_type: Optional[type]
    aliases: Mapping[str, str]
    order: int
    description: str

    def defaults(self):
        """A params instance holding the registered defaults."""
        return self.params_type() if self.params_type is not None else None


_REGISTRY: Dict[str, RegisteredMechanism] = {}
_BUILTINS_LOADED = False

#: Modules whose import registers the built-in mechanisms.
_BUILTIN_MODULES = (
    "repro.core.timing_policy",   # "none"
    "repro.core.chargecache",
    "repro.core.nuat",
    "repro.core.lldram",
    "repro.core.aldram",
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_\-]*$")
_TERM_RE = re.compile(r"^\s*(?P<name>[^()\s]+)\s*(?:\((?P<params>.*)\))?\s*$",
                      re.DOTALL)


def register_mechanism(name: str, *, params: Optional[type] = None,
                       aliases: Optional[Mapping[str, str]] = None,
                       order: int = _DEFAULT_ORDER,
                       description: str = ""):
    """Class/function decorator registering a mechanism factory.

    The decorated callable is invoked as ``factory(ctx, overrides)``
    where ``ctx`` is a :class:`MechanismContext` and ``overrides`` maps
    canonical parameter names (fields of ``params``) to already-coerced
    values from the spec string.  ``aliases`` maps alternate spellings
    to canonical field names (``duration_ms`` -> ``caching_duration_ms``).
    ``order`` fixes this mechanism's position in canonical composition
    strings; mechanisms without an explicit order sort after all
    ordered ones, alphabetically.
    """
    if not _NAME_RE.match(name):
        raise ValueError(
            f"mechanism name {name!r} must be lowercase "
            f"[a-z][a-z0-9_-]* (it appears verbatim in spec strings)")
    alias_map = dict(aliases or {})
    if params is not None:
        field_names = {f.name for f in dataclasses.fields(params)}
        for alias, target in alias_map.items():
            if target not in field_names:
                raise ValueError(
                    f"mechanism {name!r}: alias {alias!r} targets "
                    f"unknown field {target!r}")

    def decorator(factory):
        existing = _REGISTRY.get(name)
        if existing is not None and existing.factory is not factory:
            raise ValueError(
                f"mechanism {name!r} already registered (names are "
                f"spec/cache-key material and must be unique)")
        _REGISTRY[name] = RegisteredMechanism(
            name=name, factory=factory, params_type=params,
            aliases=alias_map, order=order, description=description)
        return factory

    return decorator


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import importlib
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _BUILTINS_LOADED = True


def registered(name: str) -> RegisteredMechanism:
    """Look a mechanism up by its registered name."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {name!r}; registered: "
            f"{mechanism_names()}") from None


def mechanism_names() -> List[str]:
    """Registered mechanism names in canonical composition order."""
    _load_builtins()
    return [entry.name for entry in
            sorted(_REGISTRY.values(), key=lambda e: (e.order, e.name))]


# ----------------------------------------------------------------------
# Spec model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MechanismTerm:
    """One mechanism in a spec: name + canonical parameter overrides.

    ``params`` holds only explicit non-default overrides, as a sorted
    tuple of (canonical_name, coerced_value) pairs so terms hash and
    compare structurally.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def overrides(self) -> Dict[str, object]:
        return dict(self.params)

    def canonical(self) -> str:
        if not self.params:
            return self.name
        body = ",".join(f"{key}={_format_value(value)}"
                        for key, value in self.params)
        return f"{self.name}({body})"


@dataclass(frozen=True)
class MechanismSpec:
    """A parsed, validated, canonically-ordered mechanism composition."""

    terms: Tuple[MechanismTerm, ...]

    def canonical(self) -> str:
        return "+".join(term.canonical() for term in self.terms)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()

    def term(self, name: str) -> Optional[MechanismTerm]:
        for term in self.terms:
            if term.name == name:
                return term
        return None

    def replace_term(self, term: MechanismTerm) -> "MechanismSpec":
        """This spec with ``term`` substituted for its same-named slot."""
        return MechanismSpec(tuple(
            term if existing.name == term.name else existing
            for existing in self.terms))


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _coerce_value(name: str, key: str, text: str, default: object):
    """Coerce a raw token to the type of the field's default value."""
    text = text.strip()
    if not text:
        raise ValueError(
            f"mechanism {name!r}: empty value for parameter {key!r}")
    if isinstance(default, bool):
        lowered = text.lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ValueError(
            f"mechanism {name!r}: parameter {key!r} expects a boolean "
            f"(true/false), got {text!r}")
    if isinstance(default, int):
        try:
            return int(text)
        except ValueError:
            raise ValueError(
                f"mechanism {name!r}: parameter {key!r} expects an "
                f"integer, got {text!r}") from None
    if isinstance(default, float):
        try:
            return float(text)
        except ValueError:
            raise ValueError(
                f"mechanism {name!r}: parameter {key!r} expects a "
                f"number, got {text!r}") from None
    if isinstance(default, str):
        return text
    raise ValueError(
        f"mechanism {name!r}: parameter {key!r} (default "
        f"{default!r}) cannot be set inline; build the params "
        f"dataclass programmatically instead")


def _split_terms(text: str) -> List[str]:
    """Split a spec on top-level ``+`` (parentheses protect params)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced ')' in mechanism spec {text!r}")
        if ch == "+" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth:
        raise ValueError(f"unbalanced '(' in mechanism spec {text!r}")
    parts.append("".join(current))
    return parts


def _parse_term(raw: str, spec_text: str) -> MechanismTerm:
    match = _TERM_RE.match(raw)
    if not match or not match.group("name"):
        raise ValueError(
            f"malformed mechanism term {raw!r} in spec {spec_text!r}; "
            f"expected name or name(key=value,...)")
    name = match.group("name")
    entry = registered(name)
    raw_params = match.group("params")
    if raw_params is None or not raw_params.strip():
        return MechanismTerm(name=name)
    if entry.params_type is None:
        raise ValueError(
            f"mechanism {name!r} takes no parameters, got "
            f"({raw_params.strip()})")
    defaults = entry.defaults()
    overrides: Dict[str, object] = {}
    for item in raw_params.split(","):
        item = item.strip()
        if not item:
            raise ValueError(
                f"mechanism {name!r}: empty parameter in ({raw_params})")
        if "=" not in item:
            raise ValueError(
                f"mechanism {name!r}: parameter {item!r} is not "
                f"key=value")
        key, _, value_text = item.partition("=")
        key = key.strip()
        key = entry.aliases.get(key, key)
        if not hasattr(defaults, key):
            known = sorted(
                [f.name for f in dataclasses.fields(entry.params_type)]
                + list(entry.aliases))
            raise ValueError(
                f"mechanism {name!r} has no parameter {key!r}; "
                f"known: {known}")
        if key in overrides:
            raise ValueError(
                f"mechanism {name!r}: parameter {key!r} given twice")
        overrides[key] = _coerce_value(name, key, value_text,
                                       getattr(defaults, key))
    return _normalized_term(entry, overrides)


def _normalized_term(entry: RegisteredMechanism,
                     overrides: Dict[str, object]) -> MechanismTerm:
    """Drop overrides equal to the defaults; validate what remains."""
    defaults = entry.defaults()
    kept = {key: value for key, value in overrides.items()
            if value != getattr(defaults, key)}
    if kept:
        merged = dataclasses.replace(defaults, **kept)
        validate = getattr(merged, "validate", None)
        if validate is not None:
            try:
                validate()
            except ValueError as exc:
                raise ValueError(
                    f"mechanism {entry.name!r}: invalid parameters "
                    f"{kept!r}: {exc}") from None
    return MechanismTerm(name=entry.name,
                         params=tuple(sorted(kept.items())))


def parse_mechanism_spec(text: Union[str, MechanismSpec]) -> MechanismSpec:
    """Parse and eagerly validate a mechanism spec string.

    Returns a :class:`MechanismSpec` whose terms are in canonical
    order with default-valued parameters dropped, so
    ``parse_mechanism_spec(s).canonical()`` is the one string that
    names this behaviour (and is safe cache-key material).
    """
    if isinstance(text, MechanismSpec):
        # Re-normalize rather than trust the object: a caller-built
        # MechanismSpec may be unsorted, carry default-valued params,
        # duplicate a term, or hold unvalidated values — none of which
        # may reach cache keys.  Round-tripping through the canonical
        # string funnels the object path through the exact same
        # grammar, coercion and validation as user input.
        return parse_mechanism_spec(text.canonical())
    if not isinstance(text, str) or not text.strip():
        raise ValueError(f"mechanism spec must be a non-empty string, "
                         f"got {text!r}")
    terms = [_parse_term(raw, text) for raw in _split_terms(text)]
    return _validated_spec(terms, repr(text))


def _validated_spec(terms: List[MechanismTerm],
                    origin: str) -> MechanismSpec:
    """Composition-level checks + canonical ordering (shared by the
    string and MechanismSpec entry paths)."""
    seen = set()
    for term in terms:
        if term.name in seen:
            raise ValueError(
                f"mechanism {term.name!r} appears twice in spec {origin}")
        seen.add(term.name)
    if len(terms) > 1 and any(term.name == "none" for term in terms):
        raise ValueError(
            f"'none' cannot be composed with other mechanisms "
            f"(spec {origin})")
    terms = sorted(terms, key=lambda t: (registered(t.name).order, t.name))
    return MechanismSpec(terms=tuple(terms))


def canonical_spec(text: Union[str, MechanismSpec]) -> str:
    """The canonical string form of any valid spec."""
    return parse_mechanism_spec(text).canonical()


# ----------------------------------------------------------------------
# Harness shorthand normalization
# ----------------------------------------------------------------------

#: ChargeCache parameters the harness historically modelled as
#: dedicated RunSpec fields / run_* keyword arguments.  Normalization
#: keeps those fields the canonical home for these three values so
#: pre-registry sweeps and parameterized spec strings land on the same
#: cache keys.
_CC_FIELD_PARAMS = (("cc_entries", "entries"),
                    ("cc_duration_ms", "caching_duration_ms"),
                    ("cc_unbounded", "unbounded"))


def extract_run_params(mechanism: Union[str, MechanismSpec],
                       cc_entries: Optional[int] = None,
                       cc_duration_ms: Optional[float] = None,
                       cc_unbounded: bool = False
                       ) -> Tuple[str, Optional[int], Optional[float], bool]:
    """Normalize a spec plus legacy ChargeCache shorthand knobs.

    Returns ``(canonical_mechanism, cc_entries, cc_duration_ms,
    cc_unbounded)`` where inline ``entries``/``duration_ms``/
    ``unbounded`` parameters of a ``chargecache`` term have been folded
    into the returned shorthand values (the harness's canonical home
    for them) and dropped from the canonical string.  Values equal to
    the :class:`~repro.config.ChargeCacheConfig` defaults normalize to
    ``None``/``False`` so e.g. ``chargecache(entries=128)`` and plain
    ``chargecache`` share one cache key.  A shorthand argument that
    contradicts an inline parameter raises ``ValueError`` — except
    when the inline value equals the registered default, which (being
    an identity, already dropped at parse time) yields to the
    shorthand, exactly as it yields to a config block at build time.

    When the term also carries parameters *without* a shorthand home
    (``associativity``, ``sharing``, ...), nothing is folded: the
    whole term — shorthand arguments merged in — stays inline as one
    unit.  Cross-field constraints couple the parameters
    (``entries`` must divide by ``associativity``), so splitting e.g.
    ``chargecache(entries=129,associativity=3)`` across the boundary
    would re-validate each half against the registered defaults and
    reject a perfectly valid spec.

    An lldram term's sole inline ``duration_ms`` folds the same way —
    but only when no chargecache term competes for the shorthand
    fields.  In the degenerate ``chargecache+lldram`` composition an
    inline lldram duration therefore stays inline (distinct cache key
    from the keyword spelling; behaviour identical either way).
    """
    spec = parse_mechanism_spec(mechanism)
    # Coerce the shorthand through the field types the spec grammar
    # uses, so cc_duration_ms=4 and duration_ms=4.0 spellings of one
    # run cannot hash apart.
    if cc_entries is not None:
        cc_entries = int(cc_entries)
    if cc_duration_ms is not None:
        cc_duration_ms = float(cc_duration_ms)
    shorthand = {"entries": cc_entries,
                 "caching_duration_ms": cc_duration_ms,
                 "unbounded": cc_unbounded or None}
    term = spec.term("chargecache")
    if term is None:
        # Legacy pass-through: the shorthand knobs still shape the
        # config's chargecache block (LL-DRAM reads its reductions),
        # they just have no inline home to fold into.
        defaults = registered("chargecache").defaults()
        if cc_entries == defaults.entries:
            cc_entries = None
        if cc_duration_ms == defaults.caching_duration_ms:
            cc_duration_ms = None
        lterm = spec.term("lldram")
        if lterm is not None:
            inline = lterm.overrides.get("caching_duration_ms")
            if inline is not None:
                if cc_duration_ms is not None and inline != cc_duration_ms:
                    raise ValueError(
                        f"lldram parameter 'caching_duration_ms' given "
                        f"twice with conflicting values: {inline!r} "
                        f"inline vs {cc_duration_ms!r} via keyword/spec "
                        f"field")
                if set(lterm.overrides) == {"caching_duration_ms"}:
                    # Sole override: fold into the shorthand home so
                    # "lldram(duration_ms=4)" and ("lldram",
                    # cc_duration_ms=4) are one run, one cache key.
                    # Alongside explicit reduction overrides it stays
                    # inline — the factory's re-derivation couples
                    # them (see resolve_chargecache_params).
                    cc_duration_ms = inline
                    spec = spec.replace_term(MechanismTerm(name="lldram"))
        return spec.canonical(), cc_entries, cc_duration_ms, bool(cc_unbounded)

    entry = registered("chargecache")
    overrides = term.overrides
    for param, value in shorthand.items():
        if value is None:
            continue
        inline = overrides.get(param)
        if inline is not None and inline != value:
            raise ValueError(
                f"chargecache parameter {param!r} given twice with "
                f"conflicting values: {inline!r} inline vs {value!r} "
                f"via keyword/spec field")
        overrides[param] = value
    merged = _normalized_term(entry, overrides)
    if set(merged.overrides) - set(shorthand):
        return spec.replace_term(merged).canonical(), None, None, False
    folded = merged.overrides
    return (spec.replace_term(MechanismTerm(name="chargecache")).canonical(),
            folded.get("entries"), folded.get("caching_duration_ms"),
            bool(folded.get("unbounded", False)))


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def default_context(timing=None, num_cores: int = 1) -> MechanismContext:
    """A context sufficient to build any registered mechanism with its
    defaults (used by the registry-completeness guard and the shim
    coverage check in CI)."""
    from repro.dram.refresh import RefreshScheduler
    from repro.dram.timing import DDR3_1600
    timing = timing if timing is not None else DDR3_1600
    refresh = RefreshScheduler(timing, 1, 64 * 1024)
    return MechanismContext(timing=timing, num_cores=num_cores,
                            refresh_scheduler=refresh, config=None)


def build(spec: Union[str, MechanismSpec], ctx: MechanismContext):
    """Instantiate a mechanism spec against a context.

    Single terms build the mechanism directly; compositions build an
    N-way :class:`~repro.core.timing_policy.CombinedMechanism` in
    canonical order (which reproduces the historical two-way pairs
    bit-for-bit).
    """
    mspec = parse_mechanism_spec(spec)
    parts = [registered(term.name).factory(ctx, term.overrides)
             for term in mspec.terms]
    if len(parts) == 1:
        return parts[0]
    from repro.core.timing_policy import CombinedMechanism
    return CombinedMechanism(ctx.timing, *parts)
