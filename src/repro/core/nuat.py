"""NUAT baseline (Shin et al., "NUAT: A non-uniform access time memory
controller", HPCA 2014) - the paper's main comparison point.

NUAT lowers activation timings for rows that were *refreshed* recently:
right after its periodic refresh a row is fully charged and senses
faster.  The controller bins each activated row by its refresh age and
applies per-bin timing parameters (the paper evaluates NUAT's default
"5PB" five-bin configuration and derives bin timings with SPICE; we use
the shared derating table in :mod:`repro.circuit.latency_tables`).

Because the refresh schedule is uncorrelated with program behaviour,
only ~12% of activations land in the youngest useful bins - the paper's
motivation for ChargeCache (Figure 3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import NUATConfig
from repro.circuit.latency_tables import nuat_bin_reductions
from repro.core.registry import MechanismContext, register_mechanism
from repro.core.timing_policy import LatencyMechanism
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import ReducedTimings, TimingParameters


class NUAT(LatencyMechanism):
    """Refresh-age-binned activation timings."""

    name = "nuat"

    #: NUAT's decisions read the refresh scheduler's row ages — state
    #: outside the ACT/PRE event stream — so replaying a recorded log
    #: against a fresh instance cannot reproduce them.  The batch
    #: evaluator must run NUAT variants in full.
    supports_decision_replay = False

    def __init__(self, timing: TimingParameters, config: NUATConfig,
                 refresh: RefreshScheduler):
        super().__init__(timing)
        config.validate()
        self.config = config
        self.refresh = refresh
        # Precompute (age_upper_edge_cycles, timings-or-None) per bin.
        self._bins: List[Tuple[int, Optional[ReducedTimings]]] = []
        for edge_ms, (trcd_red, tras_red) in \
                nuat_bin_reductions(config.bin_edges_ms):
            edge_cycles = timing.ms_to_cycles(edge_ms)
            if trcd_red == 0 and tras_red == 0:
                self._bins.append((edge_cycles, None))
            else:
                self._bins.append(
                    (edge_cycles, timing.reduced_by(trcd_red, tras_red)))
        self.bin_hits = [0] * len(self._bins)

    # ------------------------------------------------------------------

    def on_activate(self, rank: int, bank: int, row: int, core_id: int,
                    cycle: int) -> Optional[ReducedTimings]:
        """Bin the row by refresh age; reduced timings for young rows."""
        self.lookups += 1
        age = self.refresh.row_refresh_age_cycles(rank, row, cycle)
        for i, (edge, timings) in enumerate(self._bins):
            if age <= edge:
                if timings is not None:
                    self.hits += 1
                    self.bin_hits[i] += 1
                    return timings
                return None
        return None

    def reset_stats(self) -> None:
        super().reset_stats()
        self.bin_hits = [0] * len(self._bins)

    def fork_state(self) -> "NUAT":
        raise NotImplementedError(
            "NUAT state is coupled to its channel's refresh scheduler; "
            "it cannot be forked for decision replay")

    # ------------------------------------------------------------------

    @property
    def num_bins(self) -> int:
        return len(self._bins)

    def bin_timings(self) -> List[Tuple[int, Optional[ReducedTimings]]]:
        """The (age_edge_cycles, timings) table, for inspection/tests."""
        return list(self._bins)


@register_mechanism(
    "nuat", params=NUATConfig, order=20,
    description="refresh-age-binned activation timings "
                "(Shin et al., HPCA 2014)")
def _build_nuat(ctx: MechanismContext, overrides) -> NUAT:
    if ctx.refresh_scheduler is None:
        raise ValueError(
            "nuat needs the channel's refresh scheduler; supply it via "
            "MechanismContext(refresh_scheduler=...)")
    base = ctx.config.nuat if ctx.config is not None else NUATConfig()
    import dataclasses
    params = dataclasses.replace(base, **overrides)
    params.validate()
    return NUAT(ctx.timing, params, ctx.refresh_scheduler)
