"""The paper's primary contribution: ChargeCache and the latency
mechanisms it is evaluated against.

* :class:`~repro.core.chargecache.ChargeCache` - the proposed mechanism
  (HCRAC + IIC/EC invalidation + reduced ACT timings on a hit).
* :class:`~repro.core.nuat.NUAT` - the closest prior work (Shin et al.,
  HPCA 2014): reduced timings for recently *refreshed* rows.
* :class:`~repro.core.lldram.LowLatencyDRAM` - the idealised upper
  bound (every activation uses reduced timings).
"""

from repro.core.registry import (
    MechanismContext,
    MechanismSpec,
    canonical_spec,
    mechanism_names,
    parse_mechanism_spec,
    register_mechanism,
)
from repro.core.registry import build as build_mechanism_spec
from repro.core.timing_policy import (
    LatencyMechanism,
    DefaultTiming,
    CombinedMechanism,
    build_mechanism,
)
from repro.core.hcrac import HCRAC, UnboundedHCRAC
from repro.core.invalidation import PeriodicInvalidator, TimestampInvalidator
from repro.core.aldram import ALDRAM, aldram_timings_at
from repro.core.chargecache import ChargeCache
from repro.core.nuat import NUAT
from repro.core.lldram import LowLatencyDRAM

__all__ = [
    "MechanismContext",
    "MechanismSpec",
    "build_mechanism_spec",
    "canonical_spec",
    "mechanism_names",
    "parse_mechanism_spec",
    "register_mechanism",
    "LatencyMechanism",
    "DefaultTiming",
    "CombinedMechanism",
    "build_mechanism",
    "HCRAC",
    "UnboundedHCRAC",
    "PeriodicInvalidator",
    "TimestampInvalidator",
    "ChargeCache",
    "NUAT",
    "LowLatencyDRAM",
    "ALDRAM",
    "aldram_timings_at",
]
