"""Highly-Charged Row Address Cache (HCRAC).

A tag-only, set-associative cache of row addresses (paper Section 4.2).
The key is the (rank, bank, row) triple of a row within one channel.
The default organization matches Table 1: 128 entries, 2-way, LRU.

Two implementations:

* :class:`HCRAC` - the hardware-faithful fixed-capacity structure with
  way-stable storage (so the IIC/EC invalidation scheme can address
  entries linearly, exactly as in the paper).
* :class:`UnboundedHCRAC` - an idealised infinite-capacity variant used
  for the "unlimited size" reference lines in Figure 9; it evicts only
  by age.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class HCRAC:
    """Fixed-capacity set-associative tag store with LRU replacement."""

    def __init__(self, entries: int = 128, associativity: int = 2):
        if entries < 1:
            raise ValueError("entries must be >= 1")
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        if entries % associativity:
            raise ValueError("entries must be divisible by associativity")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("entries/associativity must be a power of two")
        # Way-stable storage: tags[set][way] is None when invalid.
        self._tags: List[List[Optional[int]]] = [
            [None] * associativity for _ in range(self.num_sets)]
        self._stamp: List[List[int]] = [
            [0] * associativity for _ in range(self.num_sets)]
        self._use_counter = 0
        # Incremental valid-entry count: the hot paths (the event
        # engine polls ``len(table)`` every wake computation) must not
        # pay an O(entries) scan.
        self._valid = 0
        # Statistics.
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------

    def _index(self, key: int) -> Tuple[int, int]:
        set_idx = key & (self.num_sets - 1)
        tag = key >> (self.num_sets.bit_length() - 1)
        return set_idx, tag

    def lookup(self, key: int, touch: bool = True) -> bool:
        """True if ``key`` is present; updates LRU state when ``touch``."""
        set_idx, tag = self._index(key)
        tags = self._tags[set_idx]
        for way in range(self.associativity):
            if tags[way] == tag:
                if touch:
                    self._use_counter += 1
                    self._stamp[set_idx][way] = self._use_counter
                return True
        return False

    def insert(self, key: int) -> None:
        """Insert ``key``, evicting the LRU way of its set if needed."""
        set_idx, tag = self._index(key)
        tags = self._tags[set_idx]
        stamps = self._stamp[set_idx]
        self._use_counter += 1
        # Hit: refresh the stamp (re-insertion of a cached row).
        for way in range(self.associativity):
            if tags[way] == tag:
                stamps[way] = self._use_counter
                return
        # Free way if available, else LRU eviction.
        victim = None
        for way in range(self.associativity):
            if tags[way] is None:
                victim = way
                break
        if victim is None:
            victim = min(range(self.associativity), key=lambda w: stamps[w])
            self.evictions += 1
        else:
            self._valid += 1
        tags[victim] = tag
        stamps[victim] = self._use_counter
        self.insertions += 1

    def invalidate_entry(self, entry_index: int) -> bool:
        """Invalidate the physical entry ``entry_index`` (IIC/EC sweep).

        Entries are numbered set-major: ``entry = set * assoc + way``.
        Returns True if a valid entry was cleared.
        """
        if not 0 <= entry_index < self.entries:
            raise IndexError(f"entry {entry_index} out of range")
        set_idx, way = divmod(entry_index, self.associativity)
        if self._tags[set_idx][way] is None:
            return False
        self._tags[set_idx][way] = None
        self._valid -= 1
        self.invalidations += 1
        return True

    def invalidate_key(self, key: int) -> bool:
        """Invalidate a specific row address if present."""
        set_idx, tag = self._index(key)
        for way in range(self.associativity):
            if self._tags[set_idx][way] == tag:
                self._tags[set_idx][way] = None
                self._valid -= 1
                self.invalidations += 1
                return True
        return False

    def clear(self) -> None:
        for set_idx in range(self.num_sets):
            for way in range(self.associativity):
                self._tags[set_idx][way] = None
        self._valid = 0

    # ------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        return self._valid

    def __contains__(self, key: int) -> bool:
        return self.lookup(key, touch=False)

    def __len__(self) -> int:
        return self.valid_count


class UnboundedHCRAC:
    """Infinite-capacity HCRAC: entries expire only by age.

    Models the "unlimited size" reference of Figure 9.  Each key stores
    its insertion cycle; a lookup at cycle ``c`` hits when the entry was
    inserted within the caching duration.
    """

    def __init__(self, duration_cycles: int):
        if duration_cycles < 1:
            raise ValueError("duration must be >= 1 cycle")
        self.duration_cycles = duration_cycles
        self._inserted_at: Dict[int, int] = {}
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0

    def insert(self, key: int, cycle: int) -> None:
        self._inserted_at[key] = cycle
        self.insertions += 1

    def lookup(self, key: int, cycle: int) -> bool:
        stamp = self._inserted_at.get(key)
        if stamp is None:
            return False
        if cycle - stamp > self.duration_cycles:
            # Lazy expiry: drop the stale entry.
            del self._inserted_at[key]
            self.invalidations += 1
            return False
        return True

    def __len__(self) -> int:
        return len(self._inserted_at)
