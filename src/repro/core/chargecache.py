"""ChargeCache: the paper's proposed mechanism (Section 4).

Operation per memory channel:

1. **Insert** - when the controller issues a PRE, the address of the row
   that was open in that bank is inserted into the HCRAC of the core
   that last activated it (the paper replicates ChargeCache per core and
   per channel).
2. **Lookup** - when the controller is about to issue an ACT on behalf
   of core *c*, it looks the row address up in core *c*'s HCRAC.  On a
   hit, the ACT is issued with lowered tRCD/tRAS (4/8 bus cycles lower
   by default - the paper's 1 ms caching-duration numbers).
3. **Invalidate** - the IIC/EC two-counter scheme sweeps each HCRAC once
   per caching duration so that no valid entry can refer to a row that
   has leaked below the reduced-timing charge level.

A ``sharing="shared"`` mode keeps a single table per channel (paper
footnote 2 - left as future work there, implemented here).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.config import ChargeCacheConfig
from repro.core.hcrac import HCRAC, UnboundedHCRAC
from repro.core.invalidation import PeriodicInvalidator
from repro.core.registry import MechanismContext, register_mechanism
from repro.core.timing_policy import LatencyMechanism
from repro.dram.timing import ReducedTimings, TimingParameters


def row_key(rank: int, bank: int, row: int) -> int:
    """Pack a (rank, bank, row) triple into one integer key.

    The row occupies the low bits so that the HCRAC set index is taken
    from row-address bits, as a hardware implementation would.
    """
    return ((rank << 6) | bank) << 32 | row


class ChargeCache(LatencyMechanism):
    """Memory-controller-side tracker of highly-charged rows."""

    name = "chargecache"

    def __init__(self, timing: TimingParameters, config: ChargeCacheConfig,
                 num_cores: int):
        super().__init__(timing)
        config.validate()
        self.config = config
        self.num_cores = num_cores
        self.duration_cycles = max(
            1, timing.ms_to_cycles(
                config.caching_duration_ms / config.time_scale))
        self.hit_timings = timing.reduced_by(config.trcd_reduction_cycles,
                                             config.tras_reduction_cycles)
        num_tables = 1 if config.sharing == "shared" else num_cores
        self._shared = config.sharing == "shared"
        self.unbounded = config.unbounded
        if self.unbounded:
            self.tables: List[UnboundedHCRAC] = [
                UnboundedHCRAC(self.duration_cycles)
                for _ in range(num_tables)]
            self.invalidators: List[Optional[PeriodicInvalidator]] = \
                [None] * num_tables
        else:
            self.tables = [HCRAC(config.entries, config.associativity)
                           for _ in range(num_tables)]
            # The IIC/EC sweep needs at least one cycle per entry.
            sweep_cycles = max(self.duration_cycles, config.entries)
            self.invalidators = [
                PeriodicInvalidator(table, sweep_cycles)
                for table in self.tables]
        self.insertions = 0

    # ------------------------------------------------------------------

    def _table_index(self, core_id: int) -> int:
        if self._shared:
            return 0
        if core_id < 0:
            return 0
        return core_id % self.num_cores

    def on_activate(self, rank: int, bank: int, row: int, core_id: int,
                    cycle: int) -> Optional[ReducedTimings]:
        """HCRAC lookup; reduced timings on a hit (paper Section 4.2.2)."""
        self.maintain(cycle)
        self.lookups += 1
        key = row_key(rank, bank, row)
        idx = self._table_index(core_id)
        table = self.tables[idx]
        if self.unbounded:
            hit = table.lookup(key, cycle)
        else:
            hit = table.lookup(key)
        if hit:
            self.hits += 1
            return self.hit_timings
        return None

    def on_precharge(self, rank: int, bank: int, row: int, core_id: int,
                     cycle: int) -> None:
        """HCRAC insert: the closing row is highly charged (Sec. 4.2.1)."""
        self.maintain(cycle)
        key = row_key(rank, bank, row)
        table = self.tables[self._table_index(core_id)]
        if self.unbounded:
            table.insert(key, cycle)
        else:
            table.insert(key)
        self.insertions += 1

    def maintain(self, cycle: int) -> None:
        """Advance the IIC/EC invalidation counters to ``cycle``."""
        if self.unbounded:
            return
        for invalidator in self.invalidators:
            invalidator.advance_to(cycle)

    def next_wake(self, cycle: int) -> int:
        """Next IIC wrap across all tables (event-engine wake-up).

        Registering the sweep deadline keeps invalidations happening at
        the hardware scheme's absolute cycles even when the controller
        is otherwise idle.  Tables with no valid entries have nothing
        to invalidate, so they demand no wake-up.
        """
        del cycle
        if self.unbounded:
            return super().next_wake(0)
        wake = super().next_wake(0)
        for table, invalidator in zip(self.tables, self.invalidators):
            if len(table) and invalidator.next_wrap_cycle() < wake:
                wake = invalidator.next_wrap_cycle()
        return wake

    # ------------------------------------------------------------------

    def valid_entries(self) -> int:
        return sum(len(table) for table in self.tables)

    def fork_state(self) -> "ChargeCache":
        """Fresh tables/invalidators under this instance's config.

        ChargeCache decisions are a pure function of the per-channel
        ACT/PRE event stream and the cycle numbers (the IIC/EC sweep in
        :class:`~repro.core.invalidation.PeriodicInvalidator` is
        batch-exact in the cycle), so a fork replayed against the same
        event log reproduces the same hit/miss sequence.
        """
        return ChargeCache(self.timing, self.config, self.num_cores)

    def reset_stats(self) -> None:
        super().reset_stats()
        self.insertions = 0
        for table in self.tables:
            table.insertions = 0
            table.evictions = 0
            table.invalidations = 0


# ----------------------------------------------------------------------
# Registry binding
# ----------------------------------------------------------------------

def resolve_chargecache_params(base: ChargeCacheConfig,
                               overrides: Dict[str, object],
                               timing: TimingParameters
                               ) -> ChargeCacheConfig:
    """Merge inline spec parameters over a config block.

    An inline ``caching_duration_ms`` without explicit reduction
    overrides re-derives the tRCD/tRAS reductions for the new duration
    (Table 2 derating) in ``timing``'s bus cycles - the same
    physical-nanoseconds conversion the harness applies for scenario
    timing grades, so a spec string and the equivalent hand-built
    config produce identical mechanisms.
    """
    if "caching_duration_ms" in overrides and not (
            {"trcd_reduction_cycles", "tras_reduction_cycles"}
            & set(overrides)):
        from repro.dram.standards import derated_reduction_cycles
        trcd_red, tras_red = derated_reduction_cycles(
            timing, overrides["caching_duration_ms"])
        overrides = dict(overrides, trcd_reduction_cycles=trcd_red,
                         tras_reduction_cycles=tras_red)
    params = dataclasses.replace(base, **overrides)
    params.validate()
    return params


@register_mechanism(
    "chargecache", params=ChargeCacheConfig, order=10,
    aliases={"duration_ms": "caching_duration_ms"},
    description="reduced ACT timings for recently-precharged rows "
                "(the paper's mechanism)")
def _build_chargecache(ctx: MechanismContext,
                       overrides: Dict[str, object]) -> ChargeCache:
    base = ctx.config.chargecache if ctx.config is not None \
        else ChargeCacheConfig()
    params = resolve_chargecache_params(base, overrides, ctx.timing)
    return ChargeCache(ctx.timing, params, ctx.num_cores)
