"""Latency-mechanism interface and composition.

A *latency mechanism* decides, per activation, which (tRCD, tRAS) pair
the memory controller may use.  The controller calls:

* :meth:`LatencyMechanism.on_activate` when it issues an ACT - the
  mechanism returns reduced timings (a "hit") or ``None`` (use device
  defaults).
* :meth:`LatencyMechanism.on_precharge` when it issues a PRE - this is
  where ChargeCache learns about highly-charged rows.
* :meth:`LatencyMechanism.maintain` once per controller tick, used by
  ChargeCache's periodic invalidation counters.

Mechanisms are instantiated per memory channel, matching the paper's
per-channel replication.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import NEVER, ReducedTimings, TimingParameters


class LatencyMechanism:
    """Base class; behaves as the unmodified baseline controller."""

    name = "none"

    def __init__(self, timing: TimingParameters):
        self.timing = timing
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------

    def on_activate(self, rank: int, bank: int, row: int, core_id: int,
                    cycle: int) -> Optional[ReducedTimings]:
        """Return reduced timings for this ACT, or None for defaults."""
        self.lookups += 1
        return None

    def on_precharge(self, rank: int, bank: int, row: int, core_id: int,
                     cycle: int) -> None:
        """Observe a PRE command (row closes, cells fully charged)."""

    def maintain(self, cycle: int) -> None:
        """Perform periodic housekeeping up to ``cycle``."""

    def next_wake(self, cycle: int) -> int:
        """Earliest cycle at which this mechanism next needs a
        :meth:`maintain` call.

        The event engine no longer polls :meth:`maintain` every cycle,
        so a mechanism with time-driven state registers its next
        deadline here instead of relying on being ticked.  ``NEVER``
        (the default) means the mechanism is purely reactive - its
        housekeeping is batch-exact and can run lazily at the next
        command boundary.
        """
        del cycle
        return NEVER

    def reset_stats(self) -> None:
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DefaultTiming(LatencyMechanism):
    """Explicit alias of the baseline (every ACT at default timings)."""

    name = "none"


class CombinedMechanism(LatencyMechanism):
    """Composition of two mechanisms (paper's ChargeCache + NUAT).

    Every ACT consults both; if either hits, the lower of the offered
    constraints is used for each timing parameter independently, which
    is legal because both mechanisms guarantee at least that much charge
    is present.
    """

    def __init__(self, timing: TimingParameters, first: LatencyMechanism,
                 second: LatencyMechanism):
        super().__init__(timing)
        self.first = first
        self.second = second
        self.name = f"{first.name}+{second.name}"

    def on_activate(self, rank, bank, row, core_id, cycle):
        self.lookups += 1
        a = self.first.on_activate(rank, bank, row, core_id, cycle)
        b = self.second.on_activate(rank, bank, row, core_id, cycle)
        if a is None and b is None:
            return None
        self.hits += 1
        if a is None:
            return b
        if b is None:
            return a
        return a.min_with(b)

    def on_precharge(self, rank, bank, row, core_id, cycle):
        self.first.on_precharge(rank, bank, row, core_id, cycle)
        self.second.on_precharge(rank, bank, row, core_id, cycle)

    def maintain(self, cycle):
        self.first.maintain(cycle)
        self.second.maintain(cycle)

    def next_wake(self, cycle):
        return min(self.first.next_wake(cycle), self.second.next_wake(cycle))

    def reset_stats(self):
        super().reset_stats()
        self.first.reset_stats()
        self.second.reset_stats()


def build_mechanism(config, timing: TimingParameters, num_cores: int,
                    refresh_scheduler) -> LatencyMechanism:
    """Factory: build the latency mechanism named by ``config.mechanism``.

    Args:
        config: a :class:`repro.config.SimulationConfig`.
        timing: the channel's timing parameters.
        num_cores: number of cores (for per-core HCRAC replication).
        refresh_scheduler: the channel's refresh scheduler (NUAT input).
    """
    from repro.core.aldram import ALDRAM
    from repro.core.chargecache import ChargeCache
    from repro.core.nuat import NUAT
    from repro.core.lldram import LowLatencyDRAM

    name = config.mechanism
    if name == "none":
        return DefaultTiming(timing)
    if name == "chargecache":
        return ChargeCache(timing, config.chargecache, num_cores)
    if name == "nuat":
        return NUAT(timing, config.nuat, refresh_scheduler)
    if name == "chargecache+nuat":
        return CombinedMechanism(
            timing,
            ChargeCache(timing, config.chargecache, num_cores),
            NUAT(timing, config.nuat, refresh_scheduler))
    if name == "lldram":
        return LowLatencyDRAM(timing, config.chargecache)
    if name == "aldram":
        return ALDRAM(timing, config.temperature_c)
    if name == "chargecache+aldram":
        return CombinedMechanism(
            timing,
            ChargeCache(timing, config.chargecache, num_cores),
            ALDRAM(timing, config.temperature_c))
    raise ValueError(f"unknown mechanism {name!r}")
