"""Latency-mechanism interface and composition.

A *latency mechanism* decides, per activation, which (tRCD, tRAS) pair
the memory controller may use.  The controller calls:

* :meth:`LatencyMechanism.on_activate` when it issues an ACT - the
  mechanism returns reduced timings (a "hit") or ``None`` (use device
  defaults).
* :meth:`LatencyMechanism.on_precharge` when it issues a PRE - this is
  where ChargeCache learns about highly-charged rows.
* :meth:`LatencyMechanism.maintain` once per controller tick, used by
  ChargeCache's periodic invalidation counters.

Mechanisms are instantiated per memory channel, matching the paper's
per-channel replication.
"""

from __future__ import annotations

from typing import Optional

from repro.core.registry import register_mechanism
from repro.dram.timing import NEVER, ReducedTimings, TimingParameters


class LatencyMechanism:
    """Base class; behaves as the unmodified baseline controller."""

    name = "none"

    #: True when this mechanism's activation decisions are a pure
    #: function of the (ACT/PRE event stream, cycle numbers) it has
    #: observed — i.e. replaying the same per-channel event log against
    #: a fresh instance reproduces the same decisions.  The batch
    #: evaluator (:meth:`repro.cpu.system.System.run_batch`) relies on
    #: this to collapse variants by decision replay.  Mechanisms that
    #: read state outside the event stream (NUAT consults the refresh
    #: scheduler) must set this False.
    supports_decision_replay = True

    def __init__(self, timing: TimingParameters):
        self.timing = timing
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------

    def on_activate(self, rank: int, bank: int, row: int, core_id: int,
                    cycle: int) -> Optional[ReducedTimings]:
        """Return reduced timings for this ACT, or None for defaults."""
        self.lookups += 1
        return None

    def on_precharge(self, rank: int, bank: int, row: int, core_id: int,
                     cycle: int) -> None:
        """Observe a PRE command (row closes, cells fully charged)."""

    def maintain(self, cycle: int) -> None:
        """Perform periodic housekeeping up to ``cycle``."""

    def next_wake(self, cycle: int) -> int:
        """Earliest cycle at which this mechanism next needs a
        :meth:`maintain` call.

        The event engine no longer polls :meth:`maintain` every cycle,
        so a mechanism with time-driven state registers its next
        deadline here instead of relying on being ticked.  ``NEVER``
        (the default) means the mechanism is purely reactive - its
        housekeeping is batch-exact and can run lazily at the next
        command boundary.
        """
        del cycle
        return NEVER

    def reset_stats(self) -> None:
        self.lookups = 0
        self.hits = 0

    def fork_state(self) -> "LatencyMechanism":
        """A fresh-state instance with this mechanism's configuration.

        Used by the batch evaluator to materialize per-channel replay
        instances without re-resolving the registry spec.  Stateful or
        parameterized subclasses override this to carry their
        configuration across; the base implementation covers
        mechanisms whose only constructor argument is the timing.
        """
        return type(self)(self.timing)

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DefaultTiming(LatencyMechanism):
    """Explicit alias of the baseline (every ACT at default timings)."""

    name = "none"


class CombinedMechanism(LatencyMechanism):
    """N-way composition of mechanisms (paper's ChargeCache + NUAT).

    Every ACT consults every part; if any hits, the lowest of the
    offered constraints is used for each timing parameter
    independently, which is legal because each hitting mechanism
    guarantees at least that much charge is present.  With exactly two
    parts this is bit-identical to the historical two-way composition.
    """

    def __init__(self, timing: TimingParameters,
                 *mechanisms: LatencyMechanism):
        super().__init__(timing)
        if len(mechanisms) < 2:
            raise ValueError("CombinedMechanism needs >= 2 mechanisms")
        self.mechanisms = tuple(mechanisms)
        self.name = "+".join(m.name for m in mechanisms)
        self.supports_decision_replay = all(
            m.supports_decision_replay for m in mechanisms)

    @property
    def first(self) -> LatencyMechanism:
        """Historical two-way accessor (the canonical-order head)."""
        return self.mechanisms[0]

    @property
    def second(self) -> LatencyMechanism:
        """Historical two-way accessor."""
        return self.mechanisms[1]

    def on_activate(self, rank, bank, row, core_id, cycle):
        self.lookups += 1
        offer = None
        for mechanism in self.mechanisms:
            timings = mechanism.on_activate(rank, bank, row, core_id, cycle)
            if timings is not None:
                offer = timings if offer is None else offer.min_with(timings)
        if offer is None:
            return None
        self.hits += 1
        return offer

    def on_precharge(self, rank, bank, row, core_id, cycle):
        for mechanism in self.mechanisms:
            mechanism.on_precharge(rank, bank, row, core_id, cycle)

    def maintain(self, cycle):
        for mechanism in self.mechanisms:
            mechanism.maintain(cycle)

    def next_wake(self, cycle):
        return min(mechanism.next_wake(cycle)
                   for mechanism in self.mechanisms)

    def reset_stats(self):
        super().reset_stats()
        for mechanism in self.mechanisms:
            mechanism.reset_stats()

    def fork_state(self):
        return CombinedMechanism(
            self.timing, *(m.fork_state() for m in self.mechanisms))


@register_mechanism("none", order=0,
                    description="unmodified baseline controller")
def _build_none(ctx, overrides):
    del overrides
    return DefaultTiming(ctx.timing)


def build_mechanism(config, timing: TimingParameters, num_cores: int,
                    refresh_scheduler) -> LatencyMechanism:
    """Deprecated factory shim; delegates to :mod:`repro.core.registry`.

    Kept so pre-registry callers (and the plain names in
    ``repro.config.MECHANISMS``) keep working bit-identically.  New
    code should call :func:`repro.core.registry.build` with a
    :class:`~repro.core.registry.MechanismContext`.

    Args:
        config: a :class:`repro.config.SimulationConfig`.
        timing: the channel's timing parameters.
        num_cores: number of cores (for per-core HCRAC replication).
        refresh_scheduler: the channel's refresh scheduler (NUAT input).
    """
    from repro.core import registry
    return registry.build(config.mechanism, registry.MechanismContext(
        timing=timing, num_cores=num_cores,
        refresh_scheduler=refresh_scheduler, config=config))
