"""Idealised Low-Latency DRAM (paper Section 6's "LL-DRAM").

An upper-bound comparison point: *every* activation uses the reduced
tRCD/tRAS that ChargeCache applies on a hit, regardless of row charge -
equivalent to ChargeCache with a 100% hit rate.  The paper motivates it
with specialised low-latency parts (RLDRAM / FCRAM [29, 56, 80]).
"""

from __future__ import annotations

from typing import Optional

from repro.config import ChargeCacheConfig
from repro.core.timing_policy import LatencyMechanism
from repro.dram.timing import ReducedTimings, TimingParameters


class LowLatencyDRAM(LatencyMechanism):
    """Every ACT issued with ChargeCache's hit timings."""

    name = "lldram"

    def __init__(self, timing: TimingParameters,
                 config: Optional[ChargeCacheConfig] = None):
        super().__init__(timing)
        config = config or ChargeCacheConfig()
        self.hit_timings = timing.reduced_by(config.trcd_reduction_cycles,
                                             config.tras_reduction_cycles)

    def on_activate(self, rank: int, bank: int, row: int, core_id: int,
                    cycle: int) -> Optional[ReducedTimings]:
        self.lookups += 1
        self.hits += 1
        return self.hit_timings
