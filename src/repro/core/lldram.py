"""Idealised Low-Latency DRAM (paper Section 6's "LL-DRAM").

An upper-bound comparison point: *every* activation uses the reduced
tRCD/tRAS that ChargeCache applies on a hit, regardless of row charge -
equivalent to ChargeCache with a 100% hit rate.  The paper motivates it
with specialised low-latency parts (RLDRAM / FCRAM [29, 56, 80]).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.config import ChargeCacheConfig
from repro.core.registry import register_mechanism
from repro.core.timing_policy import LatencyMechanism
from repro.dram.timing import ReducedTimings, TimingParameters


class LowLatencyDRAM(LatencyMechanism):
    """Every ACT issued with ChargeCache's hit timings."""

    name = "lldram"

    def __init__(self, timing: TimingParameters,
                 config: Optional[ChargeCacheConfig] = None):
        super().__init__(timing)
        self._config = config or ChargeCacheConfig()
        self.hit_timings = timing.reduced_by(
            self._config.trcd_reduction_cycles,
            self._config.tras_reduction_cycles)

    def on_activate(self, rank: int, bank: int, row: int, core_id: int,
                    cycle: int) -> Optional[ReducedTimings]:
        self.lookups += 1
        self.hits += 1
        return self.hit_timings

    def fork_state(self) -> "LowLatencyDRAM":
        return LowLatencyDRAM(self.timing, self._config)


#: Defaults mirrored from ChargeCacheConfig so a value that is an
#: identity there is one here too (canonical-form dropping must agree).
_CC_DEFAULTS = ChargeCacheConfig()


@dataclass(frozen=True)
class LLDRAMParams:
    """LL-DRAM's registry parameter block.

    Only the timing-relevant subset of :class:`ChargeCacheConfig`:
    LL-DRAM hits on every ACT, so capacity/sharing/unbounded knobs
    would be dead parameters — accepting them inline would let a
    ``lldram(entries=...)`` "sweep" silently produce identical runs
    under distinct cache keys.  They are rejected at parse time like
    any other unknown parameter.
    """

    caching_duration_ms: float = _CC_DEFAULTS.caching_duration_ms
    trcd_reduction_cycles: int = _CC_DEFAULTS.trcd_reduction_cycles
    tras_reduction_cycles: int = _CC_DEFAULTS.tras_reduction_cycles

    def validate(self) -> None:
        dataclasses.replace(_CC_DEFAULTS, **dataclasses.asdict(self)) \
            .validate()


@register_mechanism(
    "lldram", params=LLDRAMParams, order=30,
    aliases={"duration_ms": "caching_duration_ms"},
    description="idealised low-latency DRAM: every ACT at "
                "ChargeCache's hit timings")
def _build_lldram(ctx, overrides) -> LowLatencyDRAM:
    from repro.core.chargecache import resolve_chargecache_params
    base = ctx.config.chargecache if ctx.config is not None \
        else ChargeCacheConfig()
    params = resolve_chargecache_params(base, overrides, ctx.timing)
    return LowLatencyDRAM(ctx.timing, params)
