"""Mechanism decision logs: record one run, replay against variants.

The batch evaluator (:meth:`repro.cpu.system.System.run_batch`) runs
one variant of a spec group in full while a :class:`RecordingMechanism`
wrapper logs every mechanism decision point — each ``on_activate`` call
with its decision (reduced timings or None) and each ``on_precharge``
call — per channel.  For the next variant it builds fresh mechanism
state (:meth:`~repro.core.timing_policy.LatencyMechanism.fork_state`)
and feeds the recorded event stream back through it
(:func:`replay_decisions_match`).

**Why matching decisions imply a bit-identical run.**  The simulated
system interacts with a latency mechanism only through the values
``on_activate`` returns; ``on_precharge``/``maintain`` mutate mechanism
state without feeding anything back, and ``next_wake`` only shapes the
event engine's visited-cycle set, which engine parity guarantees is
statistically invisible.  So if variant B, fed the witness's event
stream, makes the same decision at every decision point, then by
induction over decision points B's full closed-loop simulation follows
the witness's trajectory exactly: identical decisions produce identical
command timings, identical core progress, and therefore the identical
next decision point.  The first diverging decision breaks the
induction — the replay reports a mismatch and the caller falls back to
simulating that variant in full (which makes it another witness).

Soundness requires the replayed mechanism's decisions to be a pure
function of its observed (event stream, cycle numbers); mechanisms
advertise that with
:attr:`~repro.core.timing_policy.LatencyMechanism.supports_decision_replay`
(NUAT reads refresh-scheduler state and opts out).  The *witness* needs
no such property: its log records what actually happened.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.timing_policy import LatencyMechanism


class MechanismEventLog:
    """Per-channel log of one run's mechanism decision points.

    Events are tuples, in call order:

    * ``("A", rank, bank, row, core_id, cycle, decision)`` for
      ``on_activate``, where ``decision`` is ``None`` (default
      timings) or the ``(trcd, tras)`` pair that was applied;
    * ``("P", rank, bank, row, core_id, cycle)`` for ``on_precharge``.
    """

    __slots__ = ("events",)

    def __init__(self):
        self.events: List[Tuple] = []

    def __len__(self) -> int:
        return len(self.events)


class RecordingMechanism:
    """Transparent mechanism wrapper that logs every decision point.

    Behaviour-preserving by construction: every call is delegated to
    the wrapped mechanism and its return value passed through, so a
    recorded run is bit-identical to an unrecorded one.  Statistics
    and any mechanism-specific attributes resolve on the inner object
    via ``__getattr__``.
    """

    def __init__(self, inner: LatencyMechanism, log: MechanismEventLog):
        self._inner = inner
        self._log = log

    def on_activate(self, rank, bank, row, core_id, cycle):
        timings = self._inner.on_activate(rank, bank, row, core_id, cycle)
        decision = None if timings is None \
            else (timings.trcd, timings.tras)
        self._log.events.append(
            ("A", rank, bank, row, core_id, cycle, decision))
        return timings

    def on_precharge(self, rank, bank, row, core_id, cycle):
        self._log.events.append(("P", rank, bank, row, core_id, cycle))
        self._inner.on_precharge(rank, bank, row, core_id, cycle)

    def maintain(self, cycle):
        self._inner.maintain(cycle)

    def next_wake(self, cycle):
        return self._inner.next_wake(cycle)

    def reset_stats(self):
        self._inner.reset_stats()

    def __getattr__(self, name):
        return getattr(self._inner, name)


def replay_decisions_match(logs: Sequence[MechanismEventLog],
                           mechanisms: Sequence[LatencyMechanism]) -> bool:
    """Feed recorded per-channel event streams to fresh mechanisms.

    Returns True iff every ``on_activate`` decision matches the log on
    every channel — the condition under which the candidate variant's
    full run would be bit-identical to the witness's (see module
    docstring).  Stops at the first mismatch.
    """
    if len(logs) != len(mechanisms):
        raise ValueError("one mechanism per recorded channel required")
    for log, mechanism in zip(logs, mechanisms):
        if not mechanism.supports_decision_replay:
            return False
        for event in log.events:
            if event[0] == "A":
                _, rank, bank, row, core_id, cycle, decision = event
                timings = mechanism.on_activate(rank, bank, row,
                                                core_id, cycle)
                offered = None if timings is None \
                    else (timings.trcd, timings.tras)
                if offered != decision:
                    return False
            else:
                _, rank, bank, row, core_id, cycle = event
                mechanism.on_precharge(rank, bank, row, core_id, cycle)
    return True


def fork_for_replay(prototype: LatencyMechanism,
                    channels: int) -> Optional[List[LatencyMechanism]]:
    """Fresh per-channel mechanism instances for replay verification.

    Returns None when the mechanism does not support decision replay
    (or cannot be forked), which the batch evaluator treats as "run
    this variant in full".
    """
    if not getattr(prototype, "supports_decision_replay", False):
        return None
    try:
        return [prototype.fork_state() for _ in range(channels)]
    except NotImplementedError:
        return None
