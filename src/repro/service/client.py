"""Thin stdlib HTTP client for the simulation service.

Mirrors the API surface of :mod:`repro.service.api` one method per
endpoint, speaking the same JSON protocol with nothing beyond
``urllib``.  Specs go over the wire as
:meth:`~repro.harness.spec.RunSpec.key_payload` dicts; the client
accepts :class:`~repro.harness.spec.RunSpec` objects and converts, so
harness code can hand its sweep declarations straight to a remote
daemon::

    client = ServiceClient("http://127.0.0.1:8023")
    job = client.submit([workload_spec("libquantum", "chargecache")],
                        wait=True)
    table = client.query(mechanism="chargecache")
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, List, Optional, Sequence, Union

from repro.harness.spec import RunSpec

from repro.service.api import API_PREFIX


class ServiceError(RuntimeError):
    """The service answered with an error payload or bad status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint, e.g. ``http://127.0.0.1:8023``."""

    def __init__(self, base_url: str, timeout_s: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None,
                 timeout_s: Optional[float] = None) -> Dict:
        url = f"{self.base_url}{API_PREFIX}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(
                    request,
                    timeout=timeout_s or self.timeout_s) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(exc))
            except Exception:
                message = str(exc)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {url}: "
                               f"{exc.reason}") from None
        return payload

    # -- endpoints -----------------------------------------------------

    def submit(self, specs: Sequence[Union[RunSpec, Dict]],
               jobs: Optional[int] = None, wait: bool = False,
               timeout_s: Optional[float] = None) -> Dict:
        """Submit a job; returns its snapshot (final when ``wait``).

        ``timeout_s`` bounds the *server-side* wait; the transport
        timeout is stretched to match so a long sweep does not trip
        the socket first.
        """
        payloads = [spec.key_payload() if isinstance(spec, RunSpec)
                    else spec for spec in specs]
        body: Dict = {"specs": payloads, "wait": wait}
        if jobs is not None:
            body["jobs"] = jobs
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        transport = None
        if wait:
            transport = max(self.timeout_s,
                            (timeout_s or 300.0) + 10.0)
        return self._request("POST", "/submit", body,
                             timeout_s=transport)

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/status/{job_id}")

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.2) -> Dict:
        """Client-side poll until the job leaves the queue/run states."""
        deadline = time.monotonic() + timeout_s
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in ("done", "failed"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {snapshot['state']!r} "
                    f"after {timeout_s}s")
            time.sleep(poll_s)

    def query(self, **filters) -> Dict:
        """Stored-results table: ``{"columns", "rows", "count"}``.

        Filters: scenario, mechanism, standard, kind, name, engine,
        status (``"any"`` disables the default done-only view), limit.
        """
        clean = {k: str(v) for k, v in filters.items()
                 if v is not None}
        path = "/query"
        if clean:
            path += "?" + urllib.parse.urlencode(clean)
        return self._request("GET", path)

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def health(self) -> Dict:
        return self._request("GET", "/health")
