"""Thin stdlib HTTP client for the simulation service.

Mirrors the API surface of :mod:`repro.service.api` one method per
endpoint, speaking the same JSON protocol with nothing beyond
``urllib``.  Specs go over the wire as
:meth:`~repro.harness.spec.RunSpec.key_payload` dicts; the client
accepts :class:`~repro.harness.spec.RunSpec` objects and converts, so
harness code can hand its sweep declarations straight to a remote
daemon::

    client = ServiceClient("http://127.0.0.1:8023")
    job = client.submit([workload_spec("libquantum", "chargecache")],
                        wait=True)
    table = client.query(mechanism="chargecache")

Transport robustness: every request retries a bounded number of times
with exponential backoff on connection errors and retryable 5xx
statuses (500/502/503 — transient server trouble), then surfaces the
*last* error.  Semantic statuses (4xx, and 504, which the service
uses for "your job is still running past your wait budget") are never
retried.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, List, Optional, Sequence, Union

from repro.harness.spec import RunSpec

from repro.service.api import API_PREFIX

#: HTTP statuses worth retrying: transient server-side trouble.  504
#: is deliberately absent — the service answers it when a waited
#: submission outlives its wait budget, and re-POSTing would submit
#: the job again.
RETRY_STATUSES = (500, 502, 503)


class ServiceError(RuntimeError):
    """The service answered with an error payload or bad status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint, e.g. ``http://127.0.0.1:8023``."""

    def __init__(self, base_url: str, timeout_s: float = 60.0,
                 retries: int = 2, backoff_s: float = 0.25):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None,
                 timeout_s: Optional[float] = None) -> Dict:
        """One endpoint call with bounded retry (see module doc).

        Attempts = ``retries + 1``; sleep before retry *n* is
        ``backoff_s * 2**(n-1)``.  The last failure is raised, so
        callers see the true terminal error, not a retry wrapper.
        """
        last: Optional[ServiceError] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            try:
                return self._request_once(method, path, body, timeout_s)
            except ServiceError as exc:
                if exc.status != 0 and exc.status not in RETRY_STATUSES:
                    raise
                last = exc
        assert last is not None
        raise last

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict] = None,
                      timeout_s: Optional[float] = None) -> Dict:
        url = f"{self.base_url}{API_PREFIX}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(
                    request,
                    timeout=timeout_s or self.timeout_s) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(exc))
            except Exception:
                message = str(exc)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {url}: "
                               f"{exc.reason}") from None
        return payload

    # -- endpoints -----------------------------------------------------

    def submit(self, specs: Sequence[Union[RunSpec, Dict]],
               jobs: Optional[int] = None, wait: bool = False,
               timeout_s: Optional[float] = None) -> Dict:
        """Submit a job; returns its snapshot (final when ``wait``).

        ``timeout_s`` bounds the *server-side* wait; the transport
        timeout is stretched to match so a long sweep does not trip
        the socket first.
        """
        payloads = [spec.key_payload() if isinstance(spec, RunSpec)
                    else spec for spec in specs]
        body: Dict = {"specs": payloads, "wait": wait}
        if jobs is not None:
            body["jobs"] = jobs
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        transport = None
        if wait:
            transport = max(self.timeout_s,
                            (timeout_s or 300.0) + 10.0)
        return self._request("POST", "/submit", body,
                             timeout_s=transport)

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/status/{job_id}")

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.2) -> Dict:
        """Client-side poll until the job leaves the queue/run states."""
        deadline = time.monotonic() + timeout_s
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in ("done", "failed"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {snapshot['state']!r} "
                    f"after {timeout_s}s")
            time.sleep(poll_s)

    def query(self, **filters) -> Dict:
        """Stored-results table: ``{"columns", "rows", "count"}``.

        Filters: scenario, mechanism, standard, kind, name, engine,
        status (``"any"`` disables the default done-only view), limit.
        """
        clean = {k: str(v) for k, v in filters.items()
                 if v is not None}
        path = "/query"
        if clean:
            path += "?" + urllib.parse.urlencode(clean)
        return self._request("GET", path)

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def health(self) -> Dict:
        return self._request("GET", "/health")

    # -- store backend endpoints (see harness.store.ServiceStore) ------

    def get_result(self, key: str) -> Optional[Dict]:
        """The raw envelope for ``key``, or None (404 = cache miss)."""
        try:
            return self._request("GET", f"/store/envelope/{key}")
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    def put_result(self, key: str, spec_payload: Dict,
                   result_json: Dict) -> Dict:
        """Publish one computed result (envelope + database row)."""
        return self._request("POST", f"/store/envelope/{key}",
                             {"spec": spec_payload,
                              "result": result_json})

    def store_keys(self) -> List[str]:
        return self._request("GET", "/store/keys")["keys"]

    def store_contains(self, key: str) -> bool:
        return bool(self._request("GET",
                                  f"/store/stat/{key}")["exists"])

    def claim(self, spec_payloads: Sequence[Dict],
              owner: Optional[str] = None,
              steal_stale_s: Optional[float] = None) -> List[bool]:
        """Exactly-one-winner chunk claim; one flag per spec."""
        body: Dict = {"specs": list(spec_payloads)}
        if owner is not None:
            body["owner"] = owner
        if steal_stale_s is not None:
            body["steal_stale_s"] = steal_stale_s
        return [bool(win) for win in
                self._request("POST", "/store/claim", body)["claimed"]]

    def release(self, key: str) -> bool:
        return bool(self._request("POST", "/store/release",
                                  {"key": key})["released"])

    def store_gc(self, dry_run: bool = False) -> Dict:
        """Store-wide gc (envelopes + rows) on the daemon."""
        return self._request("POST", "/store/gc",
                             {"dry_run": dry_run})
