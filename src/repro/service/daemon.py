"""The run-queue daemon: accept submissions, dedupe, schedule, record.

:class:`RunService` is the long-lived core of the simulation service.
Clients submit batches of :class:`~repro.harness.spec.RunSpec`s (a
"job"); the service

1. **dedupes** each submission — within itself, against the results
   database (runs already ``done`` cost nothing), and against the
   in-flight set (keys queued or running for an earlier job are not
   double-scheduled; FIFO job execution means the later job simply
   finds them in the cache),
2. **schedules** the genuinely new specs on the shared sweep executor
   (:func:`repro.harness.pool.execute_sweep`, so jobs inherit the
   process pool, the read-through cache layers *and* the batched
   multi-variant collapse), and
3. **records** every finished point to both stores: the JSON envelope
   is already persisted by the runner's read-through path (envelope
   first — see DESIGN.md section 9's lock ordering), then the indexed
   row lands in the :class:`~repro.service.database.ResultsDatabase`.

Jobs execute on one background worker thread in submission order.
That is a deliberate simplification: each job may fan out over many
processes internally (its ``jobs`` width), so the queue orders *work
batches*, not simulations, and FIFO execution is what makes the
in-flight dedupe argument airtight.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.harness import cache as run_cache
from repro.harness import pool, runner
from repro.harness.spec import RunSpec, dedupe_specs
from repro.service.database import ResultsDatabase

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


class KeyMismatch(ValueError):
    """A store write whose key disagrees with this daemon's sources."""


@dataclass
class Job:
    """One submission: its specs, lifecycle state and outcome."""

    id: str
    specs: List[RunSpec]
    keys: List[str]
    jobs: Optional[int]
    state: str = "queued"
    error: Optional[str] = None
    #: Sweep-layer counts (points/memory/disk/computed/batched) once
    #: the job has run, plus submit-time dedupe accounting.
    counts: Dict[str, int] = field(default_factory=dict)
    submitted_at: float = field(
        default_factory=time.time)  # repro: allow(determinism) -- job timestamp, not result data
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    finished: threading.Event = field(default_factory=threading.Event,
                                      repr=False)

    def snapshot(self) -> Dict:
        """JSON-safe view of this job (the status API's payload)."""
        now = time.time()  # repro: allow(determinism) -- live elapsed display only
        return {
            "job": self.id,
            "state": self.state,
            "points": len(self.specs),
            "keys": list(self.keys),
            "jobs": self.jobs,
            "counts": dict(self.counts),
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": (None if self.started_at is None
                          else (self.finished_at or now)
                          - self.started_at),
        }


class RunService:
    """Run queue + results database, shared by every client.

    ``database`` is a :class:`ResultsDatabase` or a path to one.  The
    service uses the harness's *ambient* cache binding
    (:func:`repro.harness.runner.configure_disk_cache`) — the serving
    entry point binds it once for the daemon process, and in-process
    embedders (tests, examples) keep whatever binding they set up.
    """

    def __init__(self, database: Union[ResultsDatabase, str],
                 jobs: Optional[int] = None):
        if isinstance(database, str):
            database = ResultsDatabase(database)
        self.db = database
        self.default_jobs = jobs
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        #: cache key -> job id that will (or did) compute it, for every
        #: job still queued or running.
        self._inflight: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._worker: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "RunService":
        if self._worker is not None and self._worker.is_alive():
            raise RuntimeError("service already started")
        self._worker = threading.Thread(target=self._loop,
                                        name="run-service-worker",
                                        daemon=True)
        self._worker.start()
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        """Drain the queue sentinel-style and join the worker."""
        if self._worker is None:
            return
        self._queue.put(None)
        self._worker.join(timeout=timeout_s)
        self._worker = None

    def __enter__(self) -> "RunService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission ----------------------------------------------------

    def submit(self, specs: Sequence[RunSpec],
               jobs: Optional[int] = None) -> Dict:
        """Queue one job; returns its initial snapshot immediately.

        ``counts`` in the snapshot carries the submit-time dedupe
        verdict: ``already_done`` keys have a ``done`` database row,
        ``inflight`` keys are owned by an earlier queued/running job,
        and ``scheduled`` keys are genuinely new (this job claims
        them).  The final cache-layer counts land when the job runs.
        """
        specs = dedupe_specs(list(specs))
        if not specs:
            raise ValueError("submit() needs at least one spec")
        keys = [run_cache.cache_key(spec) for spec in specs]
        with self._lock:
            job_id = f"job-{next(self._ids):06d}"
            already_done = inflight = scheduled = 0
            for key in keys:
                if key in self._inflight:
                    inflight += 1
                    continue
                if self.db.has_result(key):
                    already_done += 1
                else:
                    scheduled += 1
                self._inflight[key] = job_id
            job = Job(id=job_id, specs=specs, keys=keys,
                      jobs=jobs if jobs is not None
                      else self.default_jobs)
            job.counts = {"already_done": already_done,
                          "inflight": inflight,
                          "scheduled": scheduled}
            self._jobs[job_id] = job
        self._queue.put(job_id)
        return job.snapshot()

    # -- worker --------------------------------------------------------

    def _loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self._jobs[job_id]
            job.state = "running"
            job.started_at = time.time()  # repro: allow(determinism) -- job timestamp only
            try:
                self._execute(job)
                job.state = "done"
            except Exception as exc:  # job-scoped: daemon stays up
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            finally:
                job.finished_at = time.time()  # repro: allow(determinism) -- job timestamp only
                with self._lock:
                    for key in job.keys:
                        if self._inflight.get(key) == job.id:
                            del self._inflight[key]
                job.finished.set()

    def _execute(self, job: Job) -> None:
        sweep = pool.execute_sweep(job.specs, jobs=job.jobs)
        disk = runner.active_disk_cache()
        # URL-backed stores have no local path; the row then simply
        # carries no envelope hint (the key still addresses it).
        path_for = getattr(disk, "path_for", None)
        for point, key in zip(sweep.points, job.keys):
            envelope = path_for(key) if callable(path_for) else None
            self.db.record(point.spec, point.result, key=key,
                           envelope_path=envelope, owner=job.id)
        job.counts.update(sweep.counts())
        job.counts["served"] = (job.counts.get("memory", 0)
                                + job.counts.get("disk", 0))

    # -- store backend (ResultStore over HTTP, see harness.store) ------

    def store_keys(self) -> List[str]:
        """Every envelope key this daemon's store holds, sorted."""
        disk = runner.active_disk_cache()
        return sorted(disk.keys()) if disk is not None else []

    def store_envelope(self, key: str) -> Optional[Dict]:
        """The raw envelope for ``key``, or None (served as a 404)."""
        disk = runner.active_disk_cache()
        get_envelope = getattr(disk, "get_envelope", None)
        if not callable(get_envelope):
            return None
        return get_envelope(key)

    def store_stat(self, key: str) -> Dict:
        """Cheap presence/status probe for one key."""
        disk = runner.active_disk_cache()
        return {
            "key": key,
            "exists": bool(disk is not None and disk.contains(key)),
            "status": self.db.status_of(key),
        }

    def store_put(self, key: str, spec_payload: Dict,
                  result_json: Dict) -> Dict:
        """Persist a client-computed result: envelope, then row.

        The key is recomputed from *this* daemon's sources; a mismatch
        means the client runs different code and is rejected (409 at
        the API layer) — two fingerprints must never share a store
        entry.  Envelope-before-row ordering is preserved.
        """
        from repro.harness.spec import spec_from_payload
        spec = spec_from_payload(spec_payload)
        expected = run_cache.cache_key(spec)
        if key != expected:
            raise KeyMismatch(
                f"client key {key[:12]}… does not match this daemon's "
                f"{expected[:12]}… for the same spec; client and "
                f"server code fingerprints differ")
        result = run_cache.result_from_json(result_json)
        disk = runner.active_disk_cache()
        envelope_path = None
        if disk is not None:
            envelope_path = disk.put(key, spec, result)
        self.db.record(spec, result, key=key,
                       envelope_path=envelope_path, owner="store")
        runner._install(spec, result)
        return {"key": key, "recorded": True,
                "envelope_path": envelope_path}

    def store_claim(self, spec_payloads: Sequence[Dict],
                    owner: Optional[str] = None,
                    steal_stale_s: Optional[float] = None) -> Dict:
        """Exactly-one-winner chunk claim for remote sweep workers."""
        from repro.harness.spec import spec_from_payload
        specs = [spec_from_payload(payload)
                 for payload in spec_payloads]
        keys = [run_cache.cache_key(spec) for spec in specs]
        wins = self.db.claim_many(specs, owner=owner, keys=keys,
                                  steal_stale_s=steal_stale_s)
        return {"keys": keys, "claimed": wins}

    def store_release(self, key: str) -> Dict:
        return {"key": key, "released": self.db.release(key)}

    def store_gc(self, dry_run: bool = False) -> Dict:
        """Store-WIDE garbage collection: envelopes AND rows.

        Envelopes are swept first, so rows whose envelope just
        vanished are caught in the same pass — the fix for the
        historical ``cache gc`` leaving orphaned database rows.
        """
        disk = runner.active_disk_cache()
        envelopes = {"stale": [], "kept": 0, "removed": 0}
        gc = getattr(disk, "gc", None)
        if callable(gc):
            report = gc(dry_run=dry_run)
            envelopes = {"stale": [list(entry) for entry in report.stale],
                         "kept": report.kept,
                         "removed": report.removed}
        rows = self.db.gc(dry_run=dry_run)
        return {
            "dry_run": dry_run,
            "envelopes": envelopes,
            "rows": {"stale": [list(entry) for entry in rows.stale],
                     "kept": rows.kept, "removed": rows.removed},
        }

    # -- inspection ----------------------------------------------------

    def status(self, job_id: str) -> Optional[Dict]:
        with self._lock:
            job = self._jobs.get(job_id)
        return job.snapshot() if job is not None else None

    def wait(self, job_id: str,
             timeout_s: Optional[float] = None) -> Dict:
        """Block until the job finishes; returns its final snapshot."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if not job.finished.wait(timeout=timeout_s):
            raise TimeoutError(f"job {job_id!r} still {job.state!r} "
                               f"after {timeout_s}s")
        return job.snapshot()

    def jobs(self) -> List[Dict]:
        with self._lock:
            return [job.snapshot() for job in self._jobs.values()]

    def query(self, **filters) -> List[Dict]:
        """Delegate to :meth:`ResultsDatabase.query`."""
        return self.db.query(**filters)

    def health(self) -> Dict:
        with self._lock:
            n_jobs = len(self._jobs)
            inflight = len(self._inflight)
        return {
            "ok": True,
            "database": self.db.path,
            "rows": self.db.count(),
            "done": self.db.count("done"),
            "pending": self.db.count("pending"),
            "jobs": n_jobs,
            "inflight_keys": inflight,
        }
