"""Simulation-as-a-service layer (DESIGN.md section 9).

Turns the one-shot harness into a persistent, multi-client service:

* :mod:`repro.service.locking` — advisory cross-process file locks;
* :mod:`repro.service.database` — the locked SQLite results store
  indexing content-addressed envelopes by spec payload fields;
* :mod:`repro.service.daemon` — the run queue scheduling deduped
  submissions on the shared sweep executor;
* :mod:`repro.service.api` — the stdlib HTTP API
  (``submit``/``status``/``query``/``health``);
* :mod:`repro.service.client` — the matching thin client.

CLI: ``chargecache-harness serve | submit | query``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import Job, RunService
from repro.service.database import (
    ResultsDatabase,
    build_run_table,
    spec_standard,
)
from repro.service.locking import FileLock, LockTimeout

__all__ = [
    "FileLock",
    "Job",
    "LockTimeout",
    "ResultsDatabase",
    "RunService",
    "ServiceClient",
    "ServiceError",
    "build_run_table",
    "spec_standard",
]
