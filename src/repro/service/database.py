"""Concurrency-safe SQLite results store for the simulation service.

The content-addressed run cache (:mod:`repro.harness.cache`) already
holds every result as a JSON envelope, but it answers exactly one
question — "is this key done?" — by hashing a fully-formed spec.  The
service needs the inverse queries: *which* runs exist for a scenario,
a mechanism, a DRAM standard; which submissions are still in flight;
which client owns them.  :class:`ResultsDatabase` indexes the
envelopes by their cache key plus the spec payload fields that clients
filter on, so dashboards and CI fleets query in milliseconds without
ever parsing an envelope.

Concurrency model (DESIGN.md section 9):

* **Readers never lock.**  Every read opens a fresh SQLite connection
  and sees a consistent snapshot; rows are only ever inserted or
  monotonically promoted (``pending`` -> ``done``), never mutated into
  inconsistency.
* **Writers take one advisory file lock**
  (:class:`~repro.service.locking.FileLock` on ``<db>.lock``) around
  the whole transaction.  SQLite alone would serialize the SQL, but
  the lock also covers the *compound* invariants — claim-then-simulate
  (:meth:`claim` must admit exactly one winner per key across
  processes) and envelope-then-row ordering on :meth:`record`.
* **Lock ordering**: the JSON envelope is written *before* the
  database row that advertises it.  A row with ``status='done'``
  therefore always points at a complete, fsync-hardened envelope; a
  crash between the two leaves an envelope without a row, which the
  backfill (:meth:`import_run_cache`) repairs idempotently.

The store is deliberately insert-only from the service's perspective;
:meth:`release` (undo a claim after a failed run) and
:meth:`forget` are the only deletes.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.system import RunResult
from repro.harness import cache as run_cache
from repro.harness.cache import RunCache
from repro.harness.spec import RunSpec, spec_from_payload
from repro.service.locking import FileLock

#: Bump when the table layout changes; mismatched stores refuse to
#: open rather than mis-read (the data is rebuildable from the cache
#: directory via ``import_run_cache``).
DB_SCHEMA_VERSION = 1

#: Spec-payload fields surfaced as queryable columns, in table order.
QUERY_FIELDS = ("kind", "name", "scenario", "mechanism", "standard",
                "engine", "seed")

#: Result metrics denormalized into the row for query-time filtering
#: and table rendering without opening the envelope.
METRIC_FIELDS = ("total_ipc", "row_hit_rate", "mechanism_hit_rate",
                 "mem_cycles", "activations")

_TABLE_SQL = """
CREATE TABLE IF NOT EXISTS runs (
    cache_key          TEXT PRIMARY KEY,
    kind               TEXT NOT NULL,
    name               TEXT NOT NULL,
    scenario           TEXT,
    mechanism          TEXT NOT NULL,
    standard           TEXT NOT NULL,
    engine             TEXT NOT NULL,
    seed               INTEGER NOT NULL,
    spec_json          TEXT NOT NULL,
    fingerprint        TEXT NOT NULL,
    result_schema      INTEGER NOT NULL,
    status             TEXT NOT NULL,
    owner              TEXT,
    total_ipc          REAL,
    row_hit_rate       REAL,
    mechanism_hit_rate REAL,
    mem_cycles         INTEGER,
    activations        INTEGER,
    envelope_path      TEXT,
    created_at         REAL NOT NULL,
    updated_at         REAL NOT NULL
)
"""

_INDEX_SQL = (
    "CREATE INDEX IF NOT EXISTS idx_runs_scenario ON runs(scenario)",
    "CREATE INDEX IF NOT EXISTS idx_runs_mechanism ON runs(mechanism)",
    "CREATE INDEX IF NOT EXISTS idx_runs_standard ON runs(standard)",
    "CREATE INDEX IF NOT EXISTS idx_runs_status ON runs(status)",
)


def spec_standard(spec: RunSpec) -> str:
    """The DRAM standard ``spec`` resolves to (a queryable axis).

    Scenario runs carry it in the scenario registry; the paper's fixed
    single/eight/alone platforms are all DDR3-1600.
    """
    if spec.kind == "scenario":
        from repro.harness import scenarios
        return scenarios.scenario(spec.scenario).standard
    return "DDR3-1600"


def _metrics_for(result: RunResult) -> Dict[str, float]:
    return {
        "total_ipc": result.total_ipc,
        "row_hit_rate": result.row_hit_rate,
        "mechanism_hit_rate": result.mechanism_hit_rate,
        "mem_cycles": result.mem_cycles,
        "activations": result.activations,
    }


def build_run_table(rows: Sequence[Dict],
                    columns: Optional[Sequence[str]] = None
                    ) -> Tuple[List[Dict], List[Dict]]:
    """DataTable-style (columns, rows) for a query result set.

    ``columns`` defaults to the queryable spec fields plus the
    denormalized metrics; each column is ``{"name", "id"}`` and each
    row a plain dict keyed by column id — the shape dashboards and the
    CLI's table renderer both consume directly.
    """
    if columns is None:
        columns = list(QUERY_FIELDS) + ["status"] + list(METRIC_FIELDS)
    cols = [{"name": c.replace("_", " "), "id": c} for c in columns]
    out = [{c: row.get(c) for c in columns} for row in rows]
    return cols, out


class ResultsDatabase:
    """One SQLite file of indexed run rows, safe for many processes.

    All writes funnel through :meth:`_write`, which takes the advisory
    file lock, opens a fresh connection, runs the mutation and commits
    — so a row is either fully present or absent, never half-written,
    and compound claim/record invariants hold across processes.
    """

    def __init__(self, path: str, lock_timeout_s: float = 30.0):
        self.path = os.path.abspath(path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self.lock = FileLock(self.path + ".lock",
                             timeout_s=lock_timeout_s)
        with self.lock:
            conn = self._connect()
            try:
                conn.execute(_TABLE_SQL)
                for sql in _INDEX_SQL:
                    conn.execute(sql)
                cur = conn.execute("PRAGMA user_version").fetchone()
                version = cur[0]
                if version == 0:
                    conn.execute(
                        f"PRAGMA user_version = {DB_SCHEMA_VERSION}")
                elif version != DB_SCHEMA_VERSION:
                    raise ValueError(
                        f"results database {self.path!r} has schema "
                        f"{version}, this code expects "
                        f"{DB_SCHEMA_VERSION}; rebuild it with "
                        "import_run_cache from the cache directory")
                conn.commit()
            finally:
                conn.close()

    # -- connections ---------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=self.lock.timeout_s)
        conn.row_factory = sqlite3.Row
        return conn

    def _write(self, fn):
        """Run ``fn(conn)`` under the file lock in one transaction."""
        with self.lock:
            conn = self._connect()
            try:
                out = fn(conn)
                conn.commit()
                return out
            finally:
                conn.close()

    # -- row construction ----------------------------------------------

    def _spec_columns(self, spec: RunSpec) -> Dict:
        payload = spec.key_payload()
        return {
            "kind": payload["kind"],
            "name": payload["name"],
            "scenario": payload["scenario"],
            "mechanism": payload["mechanism"],
            "standard": spec_standard(spec),
            "engine": payload["engine"],
            "seed": payload["seed"],
            "spec_json": json.dumps(payload, sort_keys=True,
                                    separators=(",", ":")),
        }

    # -- writes --------------------------------------------------------

    def claim(self, spec: RunSpec, owner: Optional[str] = None,
              key: Optional[str] = None,
              steal_stale_s: Optional[float] = None) -> bool:
        """Atomically claim ``spec`` for computation.

        Inserts a ``pending`` row; returns True iff *this* call
        created it — across any number of racing processes exactly one
        caller wins and should simulate, everyone else should wait for
        the row to turn ``done`` (or for the envelope to appear).  A
        key that is already ``done`` is never re-claimed.

        ``steal_stale_s`` lets a claim *steal* a pending row whose
        ``updated_at`` is older than that many seconds — the recovery
        path for claims stranded by a dead worker.  Staleness is
        judged against this host's clock writing to the shared file;
        workers touch rows only at claim/record time, so any value
        comfortably above one chunk's runtime is safe.
        """
        keys = [key] if key is not None else None
        return self.claim_many([spec], owner=owner, keys=keys,
                               steal_stale_s=steal_stale_s)[0]

    def claim_many(self, specs: Sequence[RunSpec],
                   owner: Optional[str] = None,
                   keys: Optional[Sequence[str]] = None,
                   steal_stale_s: Optional[float] = None) -> List[bool]:
        """Claim a chunk of specs in ONE locked transaction.

        Returns one win/lose flag per spec.  Racing processes
        serialize on the file lock, so for every key exactly one
        process across the fleet sees True — the work-stealing
        primitive distributed sweeps partition on.  See :meth:`claim`
        for ``steal_stale_s``.
        """
        if keys is None:
            keys = [run_cache.cache_key(spec) for spec in specs]
        cols = [self._spec_columns(spec) for spec in specs]
        fingerprint = run_cache.code_fingerprint()
        now = time.time()  # repro: allow(determinism) -- row timestamp, not result data

        def txn(conn: sqlite3.Connection) -> List[bool]:
            wins = []
            for spec_key, col in zip(keys, cols):
                cur = conn.execute(
                    "INSERT OR IGNORE INTO runs (cache_key, kind, "
                    "name, scenario, mechanism, standard, engine, "
                    "seed, spec_json, fingerprint, result_schema, "
                    "status, owner, created_at, updated_at) VALUES "
                    "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                    (spec_key, col["kind"], col["name"],
                     col["scenario"], col["mechanism"], col["standard"],
                     col["engine"], col["seed"], col["spec_json"],
                     fingerprint, run_cache.SCHEMA_VERSION, "pending",
                     owner, now, now))
                won = cur.rowcount == 1
                if not won and steal_stale_s is not None:
                    cur = conn.execute(
                        "UPDATE runs SET owner = ?, updated_at = ? "
                        "WHERE cache_key = ? AND status = 'pending' "
                        "AND updated_at <= ?",
                        (owner, now, spec_key, now - steal_stale_s))
                    won = cur.rowcount == 1
                wins.append(won)
            return wins

        return self._write(txn)

    def release(self, key: str) -> bool:
        """Undo a claim whose computation failed (pending rows only)."""
        def txn(conn: sqlite3.Connection) -> bool:
            cur = conn.execute(
                "DELETE FROM runs WHERE cache_key = ? "
                "AND status = 'pending'", (key,))
            return cur.rowcount == 1
        return self._write(txn)

    def record(self, spec: RunSpec, result: RunResult,
               key: Optional[str] = None,
               envelope_path: Optional[str] = None,
               owner: Optional[str] = None,
               fingerprint: Optional[str] = None) -> str:
        """Upsert the ``done`` row for one finished run; returns key.

        Idempotent: recording the same key again refreshes metrics and
        ``updated_at`` (results are content-addressed, so the values
        can only be bit-identical).  The caller must have written the
        envelope first — see the module docstring's lock ordering.
        ``fingerprint`` defaults to the current sources; the backfill
        passes the envelope's own so imported rows stay truthful.
        """
        key = key or run_cache.cache_key(spec)
        cols = self._spec_columns(spec)
        metrics = _metrics_for(result)
        fingerprint = fingerprint or run_cache.code_fingerprint()
        now = time.time()  # repro: allow(determinism) -- row timestamp, not result data

        def txn(conn: sqlite3.Connection) -> str:
            conn.execute(
                "INSERT INTO runs (cache_key, kind, name, scenario, "
                "mechanism, standard, engine, seed, spec_json, "
                "fingerprint, result_schema, status, owner, total_ipc, "
                "row_hit_rate, mechanism_hit_rate, mem_cycles, "
                "activations, envelope_path, created_at, updated_at) "
                "VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?) "
                "ON CONFLICT(cache_key) DO UPDATE SET "
                "status='done', owner=excluded.owner, "
                "fingerprint=excluded.fingerprint, "
                "total_ipc=excluded.total_ipc, "
                "row_hit_rate=excluded.row_hit_rate, "
                "mechanism_hit_rate=excluded.mechanism_hit_rate, "
                "mem_cycles=excluded.mem_cycles, "
                "activations=excluded.activations, "
                "envelope_path=excluded.envelope_path, "
                "updated_at=excluded.updated_at",
                (key, cols["kind"], cols["name"], cols["scenario"],
                 cols["mechanism"], cols["standard"], cols["engine"],
                 cols["seed"], cols["spec_json"], fingerprint,
                 run_cache.SCHEMA_VERSION, "done", owner,
                 metrics["total_ipc"], metrics["row_hit_rate"],
                 metrics["mechanism_hit_rate"], metrics["mem_cycles"],
                 metrics["activations"], envelope_path, now, now))
            return key

        return self._write(txn)

    def forget(self, key: str) -> bool:
        """Drop one row outright (maintenance; envelopes untouched)."""
        def txn(conn: sqlite3.Connection) -> bool:
            cur = conn.execute("DELETE FROM runs WHERE cache_key = ?",
                               (key,))
            return cur.rowcount == 1
        return self._write(txn)

    def gc(self, fingerprint: Optional[str] = None,
           dry_run: bool = False) -> run_cache.GCReport:
        """Prune rows orphaned by source changes or envelope gc.

        The companion to :meth:`RunCache.gc <repro.harness.cache.
        RunCache.gc>`: a row is stale when its fingerprint no longer
        matches the current sources, its result schema is obsolete, or
        it advertises an envelope file that was pruned out from under
        it.  Historically ``repro cache gc`` swept only envelopes and
        left these rows behind; the store protocol sweeps both.
        Returns the same :class:`~repro.harness.cache.GCReport` shape
        as the envelope gc, with (key, reason) stale entries.
        """
        fingerprint = fingerprint or run_cache.code_fingerprint()
        conn = self._connect()
        try:
            rows = conn.execute(
                "SELECT cache_key, fingerprint, result_schema, status, "
                "envelope_path FROM runs ORDER BY cache_key").fetchall()
        finally:
            conn.close()
        stale: List[Tuple[str, str]] = []
        kept = 0
        for row in rows:
            if row["fingerprint"] != fingerprint:
                stale.append((row["cache_key"],
                              "code fingerprint mismatch"))
            elif row["result_schema"] != run_cache.SCHEMA_VERSION:
                stale.append((row["cache_key"],
                              f"schema {row['result_schema']} != "
                              f"{run_cache.SCHEMA_VERSION}"))
            elif (row["status"] == "done" and row["envelope_path"]
                    and not os.path.exists(row["envelope_path"])):
                stale.append((row["cache_key"], "envelope missing"))
            else:
                kept += 1
        removed = 0
        if stale and not dry_run:
            stale_keys = [key for key, _ in stale]

            def txn(conn: sqlite3.Connection) -> int:
                deleted = 0
                for stale_key in stale_keys:
                    cur = conn.execute(
                        "DELETE FROM runs WHERE cache_key = ?",
                        (stale_key,))
                    deleted += cur.rowcount
                return deleted

            removed = self._write(txn)
        return run_cache.GCReport(stale=stale, kept=kept,
                                  removed=removed)

    # -- reads (lock-free) ---------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The row for ``key`` as a plain dict, or None."""
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT * FROM runs WHERE cache_key = ?",
                (key,)).fetchone()
        finally:
            conn.close()
        return dict(row) if row is not None else None

    def status_of(self, key: str) -> Optional[str]:
        row = self.get(key)
        return row["status"] if row else None

    def has_result(self, key: str) -> bool:
        return self.status_of(key) == "done"

    def query(self, scenario: Optional[str] = None,
              mechanism: Optional[str] = None,
              standard: Optional[str] = None,
              kind: Optional[str] = None,
              name: Optional[str] = None,
              engine: Optional[str] = None,
              status: Optional[str] = "done",
              limit: Optional[int] = None) -> List[Dict]:
        """Rows matching every given filter (exact match per column).

        ``status`` defaults to ``"done"`` — clients asking "what
        results exist" should not see half-finished claims; pass
        ``status=None`` to include pending rows.  Rows come back
        ordered by (scenario, name, mechanism, seed) so repeated
        queries render stable tables.
        """
        clauses, params = [], []
        for column, value in (("scenario", scenario),
                              ("mechanism", mechanism),
                              ("standard", standard), ("kind", kind),
                              ("name", name), ("engine", engine),
                              ("status", status)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += (" ORDER BY scenario IS NULL, scenario, kind, name, "
                "mechanism, seed")
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        conn = self._connect()
        try:
            rows = conn.execute(sql, params).fetchall()
        finally:
            conn.close()
        return [dict(row) for row in rows]

    def spec_for(self, key: str) -> Optional[RunSpec]:
        """Re-materialize the RunSpec a row indexed, or None."""
        row = self.get(key)
        if row is None:
            return None
        return spec_from_payload(json.loads(row["spec_json"]))

    def count(self, status: Optional[str] = None) -> int:
        sql = "SELECT COUNT(*) FROM runs"
        params: List = []
        if status is not None:
            sql += " WHERE status = ?"
            params.append(status)
        conn = self._connect()
        try:
            return conn.execute(sql, params).fetchone()[0]
        finally:
            conn.close()

    def __len__(self) -> int:
        return self.count()

    # -- backfill ------------------------------------------------------

    def import_run_cache(self, cache: RunCache) -> Tuple[int, int]:
        """Index every readable envelope in ``cache``.

        Returns ``(imported, skipped)``: corrupt, schema-mismatched or
        otherwise unreadable envelopes are skipped (they are misses to
        the cache layer too), and re-importing is idempotent — rows
        are upserted under their content-addressed key.  This is both
        the migration path for pre-service cache directories and the
        crash-repair path for envelopes whose row never landed.
        """
        imported = skipped = 0
        for key in cache.keys():
            try:
                with open(cache.path_for(key), "r",
                          encoding="ascii") as fh:
                    envelope = json.load(fh)
                if (not isinstance(envelope, dict)
                        or envelope.get("schema")
                        != run_cache.SCHEMA_VERSION):
                    raise ValueError("schema mismatch")
                spec = spec_from_payload(envelope["spec"])
                result = run_cache.result_from_json(envelope["result"])
            except (OSError, ValueError, KeyError, TypeError,
                    AttributeError):
                skipped += 1
                continue
            self.record(spec, result, key=key,
                        envelope_path=cache.path_for(key),
                        owner="import",
                        fingerprint=envelope.get("fingerprint"))
            imported += 1
        return imported, skipped
