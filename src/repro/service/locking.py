"""Cross-process file locks for the results-service writer path.

SQLite serializes writers internally, but the service layers one more
invariant on top: a result row and its content-addressed JSON envelope
(:mod:`repro.harness.cache`) must land as one unit, and only one
process may claim a pending run.  :class:`FileLock` provides the
advisory cross-process mutex those compound operations take — a
``flock``-held sidecar file next to the database (lock ordering is
documented in DESIGN.md section 9: envelope write first, then the
locked database transaction).

``fcntl.flock`` is used where available (every POSIX platform); the
fallback is an exclusive-create lockfile spun with a timeout, which is
correct — if slower — on any filesystem with atomic ``O_EXCL``.
Locks are *advisory*: every cooperating writer must go through this
class, and readers never lock at all (SQLite snapshots and the cache's
atomic renames keep reads consistent).
"""

from __future__ import annotations

import errno
import os
import time
from types import TracebackType
from typing import Optional, Type

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


class LockTimeout(TimeoutError):
    """The lock could not be acquired within the caller's budget."""


class FileLock:
    """An advisory, exclusive, cross-process lock on a sidecar file.

    Usable as a context manager and re-entrant within one instance is
    deliberately *not* supported: acquiring an already-held instance
    raises, which turns lock-ordering mistakes into immediate errors
    instead of silent self-deadlocks.
    """

    def __init__(self, path: str, timeout_s: float = 30.0,
                 poll_s: float = 0.02):
        if timeout_s < 0:
            raise ValueError("timeout_s must be >= 0")
        self.path = os.path.abspath(path)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        # Distributed sweeps put dozens of workers on one lock file;
        # identical poll periods make them retry in convoy (every loser
        # wakes into the same contention window).  A small pid-derived
        # stagger (deterministic per process, up to +50%, never part of
        # any result) de-synchronizes the herd.  ``poll_s`` itself is
        # kept as configured for introspection and tests.
        self._poll_stagger_s = poll_s * ((os.getpid() % 16) / 32.0)
        self._fd: Optional[int] = None
        self._exclusive_created = False

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> None:
        if self.held:
            raise RuntimeError(f"lock {self.path!r} is already held "
                               "by this instance")
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        deadline = time.monotonic() + self.timeout_s
        if fcntl is not None:
            self._acquire_flock(deadline)
        else:  # pragma: no cover - non-POSIX fallback
            self._acquire_exclusive_create(deadline)

    def _acquire_flock(self, deadline: float) -> None:
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except OSError as exc:
                    if exc.errno not in (errno.EAGAIN, errno.EACCES):
                        raise
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not lock {self.path!r} within "
                        f"{self.timeout_s:.1f}s")
                time.sleep(self.poll_s + self._poll_stagger_s)
        except BaseException:
            os.close(fd)
            raise

    def _acquire_exclusive_create(self, deadline: float) -> None:
        """O_EXCL spin-lock fallback (no flock on this platform)."""
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
                os.write(fd, str(os.getpid()).encode("ascii"))
                self._fd = fd
                self._exclusive_created = True
                return
            except FileExistsError:
                pass
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not lock {self.path!r} within "
                    f"{self.timeout_s:.1f}s")
            time.sleep(self.poll_s + self._poll_stagger_s)

    def release(self) -> None:
        if not self.held:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
            if self._exclusive_created:
                self._exclusive_created = False
                try:
                    os.unlink(self.path)
                except OSError:  # pragma: no cover
                    pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.release()
