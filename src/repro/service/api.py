"""Minimal stdlib HTTP API over :class:`~repro.service.daemon.RunService`.

No third-party dependencies: :mod:`http.server`'s threading server
fronts the daemon with a small JSON protocol (versioned under
``/api/v1``) —

``POST /api/v1/submit``
    Body ``{"specs": [<key_payload dict>, ...], "jobs": N,
    "wait": bool, "timeout_s": S}``.  Specs are
    :meth:`~repro.harness.spec.RunSpec.key_payload`-shaped dicts
    (``kind`` and ``name`` required, everything else defaulted);
    malformed specs are a 400 at the boundary.  Returns the job
    snapshot — final if ``wait`` is true, initial otherwise.

``GET /api/v1/status/<job>``
    Snapshot of one job (404 for unknown ids).

``GET /api/v1/query``
    Filter stored results by ``scenario``, ``mechanism``,
    ``standard``, ``kind``, ``name``, ``engine``, ``status``
    (``done`` by default, ``any`` for everything) and ``limit``.
    Returns ``{"columns": [...], "rows": [...], "count": N}`` à la a
    dashboard DataTable (see
    :func:`~repro.service.database.build_run_table`).

``GET /api/v1/health``
    Liveness plus store counts.

Store backend routes (the HTTP face of the ``ResultStore`` protocol —
:mod:`repro.harness.store`'s ``ServiceStore`` is the client side):

``GET /api/v1/store/keys``
    Every stored envelope key, sorted.

``GET /api/v1/store/envelope/<key>``
    The raw envelope (404 when absent — a cache miss, not an error).

``GET /api/v1/store/stat/<key>``
    ``{"exists": bool, "status": "pending"|"done"|null}``.

``POST /api/v1/store/envelope/<key>``
    Body ``{"spec": <key_payload>, "result": <result json>}``.  The
    daemon recomputes the key from its own sources and rejects a
    mismatch with 409; on success both the envelope and the database
    row are recorded (envelope first).

``POST /api/v1/store/claim``
    Body ``{"specs": [<key_payload>, ...], "owner": str|null,
    "steal_stale_s": float|null}`` — exactly-one-winner chunk claim
    for distributed sweeps; returns ``{"keys", "claimed"}``.

``POST /api/v1/store/release``
    Body ``{"key": ...}`` — undo a claim after a failed run.

``POST /api/v1/store/gc``
    Body ``{"dry_run": bool}`` — store-wide gc (envelopes and rows).

Handlers run on one thread per connection; every mutating route
delegates to the daemon, whose queue and locked database keep
concurrent clients safe.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.harness.spec import spec_from_payload
from repro.service.daemon import KeyMismatch, RunService
from repro.service.database import ResultsDatabase, build_run_table

API_PREFIX = "/api/v1"

#: Query-string filters forwarded to ResultsDatabase.query.
_QUERY_PARAMS = ("scenario", "mechanism", "standard", "kind", "name",
                 "engine", "status", "limit")


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """JSON request handler bound to the server's RunService."""

    server_version = "chargecache-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> RunService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "quiet", True):
            return
        super().log_message(fmt, *args)

    def _send_json(self, code: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("ascii")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/"), query

    # -- GET -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        try:
            path, query = self._route()
            if path == f"{API_PREFIX}/health":
                self._send_json(200, self.service.health())
            elif path.startswith(f"{API_PREFIX}/status/"):
                job_id = path[len(f"{API_PREFIX}/status/"):]
                snapshot = self.service.status(job_id)
                if snapshot is None:
                    self._error(404, f"unknown job {job_id!r}")
                else:
                    self._send_json(200, snapshot)
            elif path == f"{API_PREFIX}/query":
                self._send_json(200, self._query(query))
            elif path == f"{API_PREFIX}/jobs":
                self._send_json(200, {"jobs": self.service.jobs()})
            elif path == f"{API_PREFIX}/store/keys":
                self._send_json(200,
                                {"keys": self.service.store_keys()})
            elif path.startswith(f"{API_PREFIX}/store/envelope/"):
                key = path[len(f"{API_PREFIX}/store/envelope/"):]
                envelope = self.service.store_envelope(key)
                if envelope is None:
                    self._error(404, f"no envelope for key {key!r}")
                else:
                    self._send_json(200, envelope)
            elif path.startswith(f"{API_PREFIX}/store/stat/"):
                key = path[len(f"{API_PREFIX}/store/stat/"):]
                self._send_json(200, self.service.store_stat(key))
            else:
                self._error(404, f"no such endpoint {path!r}")
        except ValueError as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _query(self, query: Dict[str, str]) -> Dict:
        unknown = sorted(set(query) - set(_QUERY_PARAMS))
        if unknown:
            raise ValueError(f"unknown query parameter(s) {unknown}; "
                             f"expected a subset of {_QUERY_PARAMS}")
        filters: Dict = {k: v for k, v in query.items()
                         if k in _QUERY_PARAMS}
        if filters.get("status") == "any":
            filters["status"] = None
        if "limit" in filters:
            try:
                filters["limit"] = int(filters["limit"])
            except ValueError:
                raise ValueError(
                    f"limit must be an integer, got {filters['limit']!r}")
        rows = self.service.query(**filters)
        columns, table = build_run_table(rows)
        return {"columns": columns, "rows": table, "count": len(table)}

    # -- POST ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        try:
            path, _ = self._route()
            if path == f"{API_PREFIX}/submit":
                self._submit()
            elif path.startswith(f"{API_PREFIX}/store/envelope/"):
                key = path[len(f"{API_PREFIX}/store/envelope/"):]
                self._store_put(key)
            elif path == f"{API_PREFIX}/store/claim":
                self._store_claim()
            elif path == f"{API_PREFIX}/store/release":
                body = self._read_body()
                key = body.get("key")
                if not isinstance(key, str) or not key:
                    raise ValueError("body must carry a 'key' string")
                self._send_json(200, self.service.store_release(key))
            elif path == f"{API_PREFIX}/store/gc":
                body = self._read_body()
                self._send_json(200, self.service.store_gc(
                    dry_run=bool(body.get("dry_run"))))
            else:
                self._error(404, f"no such endpoint {path!r}")
        except KeyMismatch as exc:
            self._error(409, str(exc))
        except (ValueError, TypeError, KeyError) as exc:
            self._error(400, str(exc))
        except TimeoutError as exc:
            self._error(504, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _submit(self) -> None:
        body = self._read_body()
        payloads = body.get("specs")
        if not isinstance(payloads, list) or not payloads:
            raise ValueError(
                "body must carry a non-empty 'specs' list")
        specs = [spec_from_payload(p) for p in payloads]
        jobs = body.get("jobs")
        if jobs is not None and (not isinstance(jobs, int)
                                 or jobs < 0):
            raise ValueError("'jobs' must be a non-negative int")
        snapshot = self.service.submit(specs, jobs=jobs)
        if body.get("wait"):
            timeout = body.get("timeout_s")
            snapshot = self.service.wait(
                snapshot["job"],
                timeout_s=float(timeout) if timeout else None)
        self._send_json(200, snapshot)

    def _store_put(self, key: str) -> None:
        body = self._read_body()
        spec_payload = body.get("spec")
        result_json = body.get("result")
        if not isinstance(spec_payload, dict) \
                or not isinstance(result_json, dict):
            raise ValueError(
                "body must carry 'spec' and 'result' objects")
        self._send_json(200, self.service.store_put(
            key, spec_payload, result_json))

    def _store_claim(self) -> None:
        body = self._read_body()
        payloads = body.get("specs")
        if not isinstance(payloads, list) or not payloads:
            raise ValueError(
                "body must carry a non-empty 'specs' list")
        owner = body.get("owner")
        steal = body.get("steal_stale_s")
        self._send_json(200, self.service.store_claim(
            payloads, owner=owner,
            steal_stale_s=float(steal) if steal is not None else None))


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying its RunService reference."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: RunService,
                 quiet: bool = True):
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.quiet = quiet


def make_server(service: RunService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> ServiceHTTPServer:
    """Bind (but do not start) the API server; ``port=0`` picks one."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


def serve(database: str, cache_dir: Optional[str] = None,
          host: str = "127.0.0.1", port: int = 8023,
          jobs: Optional[int] = None, import_cache: bool = False,
          quiet: bool = False) -> None:
    """The blocking daemon entry point (CLI ``serve`` subcommand).

    Binds the harness's persistent cache for the whole daemon process,
    optionally backfills the database from an existing cache
    directory, then serves until interrupted.
    """
    import sys

    from repro.harness import runner

    runner.configure_disk_cache(cache_dir)
    db = ResultsDatabase(database)
    if import_cache:
        disk = runner.active_disk_cache()
        # Backfill needs a local envelope directory; URL-backed
        # bindings (a daemon fronting another daemon) have none.
        if disk is not None and hasattr(disk, "root"):
            imported, skipped = db.import_run_cache(disk)
            print(f"backfilled {imported} envelope(s) from "
                  f"{disk.root} ({skipped} skipped)", file=sys.stderr)
    service = RunService(db, jobs=jobs).start()
    server = make_server(service, host, port, quiet=quiet)
    bound = server.server_address
    print(f"chargecache service on http://{bound[0]}:{bound[1]}"
          f"{API_PREFIX} (db {db.path})", file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
