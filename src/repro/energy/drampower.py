"""Command-level DRAM energy model (the paper's DRAMPower substitute).

Energy is computed from the simulator's post-warmup command counts and
state-residency using the standard IDDx current-class decomposition
(Micron DDR3 datasheet / DRAMPower methodology):

* **ACT/PRE pair**: ``(IDD0*tRC - IDD3N*tRAS - IDD2N*(tRC-tRAS)) * VDD``
  per activation - the charge above the standby floor.
* **Read / write burst**: ``(IDD4R/W - IDD3N) * VDD * tBurst``.
* **Refresh**: ``(IDD5B - IDD2N) * VDD * tRFC``.
* **Background**: ``IDD3N`` while >= 1 bank is open (active standby),
  ``IDD2N`` otherwise (precharged standby).

ChargeCache reduces DRAM energy through exactly two terms the model
captures: a shorter run (less background energy for the same work) and
earlier precharges on reduced-tRAS activations (less active standby).
The ChargeCache table's own power (from :mod:`repro.energy.mcpat`) is
charged against the mechanism, as the paper does in Section 6.2.

Currents are per DRAM device; a rank has ``chips_per_rank`` devices
sharing the 64-bit bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class DDR3PowerParameters:
    """IDD current classes (mA) and supply voltage for one device.

    Values follow a Micron DDR3-1600 4 Gb x8 datasheet (the device the
    paper's Table 1 cites [57]).
    """

    vdd: float = 1.5
    idd0_ma: float = 55.0    # one-bank ACT->PRE cycling
    idd2n_ma: float = 32.0   # precharged standby
    idd3n_ma: float = 38.0   # active standby
    idd4r_ma: float = 157.0  # burst read
    idd4w_ma: float = 128.0  # burst write
    idd5b_ma: float = 210.0  # burst refresh
    chips_per_rank: int = 8

    def validate(self) -> None:
        if self.idd3n_ma < self.idd2n_ma:
            raise ValueError("IDD3N must be >= IDD2N")
        if self.idd0_ma <= 0 or self.vdd <= 0 or self.chips_per_rank < 1:
            raise ValueError("currents/voltage/chips must be positive")


@dataclass
class EnergyBreakdown:
    """Per-component DRAM energy for one run, in picojoules."""

    act_pre_pj: float
    read_pj: float
    write_pj: float
    refresh_pj: float
    background_active_pj: float
    background_precharged_pj: float
    mechanism_pj: float = 0.0

    @property
    def background_pj(self) -> float:
        return self.background_active_pj + self.background_precharged_pj

    @property
    def total_pj(self) -> float:
        return (self.act_pre_pj + self.read_pj + self.write_pj
                + self.refresh_pj + self.background_pj + self.mechanism_pj)

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9

    def as_dict(self) -> dict:
        return {
            "act_pre_pj": self.act_pre_pj,
            "read_pj": self.read_pj,
            "write_pj": self.write_pj,
            "refresh_pj": self.refresh_pj,
            "background_active_pj": self.background_active_pj,
            "background_precharged_pj": self.background_precharged_pj,
            "mechanism_pj": self.mechanism_pj,
            "total_pj": self.total_pj,
        }


def _pj(current_ma: float, vdd: float, time_ns: float) -> float:
    """mA * V * ns = pJ."""
    return current_ma * vdd * time_ns


def energy_components(activations: int, reads: int, writes: int,
                      refreshes: int, rank_active_cycles: int,
                      total_rank_cycles: int,
                      timing: TimingParameters,
                      power: DDR3PowerParameters = DDR3PowerParameters(),
                      mechanism_pj: float = 0.0) -> EnergyBreakdown:
    """Energy breakdown from raw counts (all ranks aggregated).

    Args:
        rank_active_cycles: sum over ranks of any-bank-open cycles.
        total_rank_cycles: ranks * run-length cycles.
    """
    power.validate()
    if rank_active_cycles > total_rank_cycles:
        raise ValueError("active cycles exceed total rank cycles")
    tck = timing.tCK_ns
    chips = power.chips_per_rank
    vdd = power.vdd

    act_each = (power.idd0_ma * timing.tRC
                - power.idd3n_ma * timing.tRAS
                - power.idd2n_ma * timing.tRP) * vdd * tck
    act_pre = max(0.0, act_each) * activations * chips

    read = _pj(power.idd4r_ma - power.idd3n_ma, vdd,
               reads * timing.tBL * tck) * chips
    write = _pj(power.idd4w_ma - power.idd3n_ma, vdd,
                writes * timing.tBL * tck) * chips
    refresh = _pj(power.idd5b_ma - power.idd2n_ma, vdd,
                  refreshes * timing.tRFC * tck) * chips

    bg_active = _pj(power.idd3n_ma, vdd,
                    rank_active_cycles * tck) * chips
    bg_pre = _pj(power.idd2n_ma, vdd,
                 (total_rank_cycles - rank_active_cycles) * tck) * chips

    return EnergyBreakdown(act_pre, read, write, refresh, bg_active,
                           bg_pre, mechanism_pj)


def energy_for_run(result, timing: TimingParameters,
                   power: DDR3PowerParameters = DDR3PowerParameters(),
                   mechanism_power_w: float = 0.0) -> EnergyBreakdown:
    """Energy breakdown for a :class:`repro.cpu.system.RunResult`.

    ``mechanism_power_w`` is the average power of the latency
    mechanism's hardware (e.g. ChargeCache's HCRAC from
    :func:`repro.energy.mcpat.hcrac_overhead`), integrated over the run.
    """
    cfg = result.config
    ranks = cfg.dram.channels * cfg.dram.ranks_per_channel
    total_rank_cycles = ranks * result.mem_cycles
    run_seconds = result.mem_cycles * timing.tCK_ns * 1e-9
    mechanism_pj = mechanism_power_w * run_seconds * 1e12
    return energy_components(
        activations=result.activations,
        reads=result.reads,
        writes=result.writes,
        refreshes=result.refreshes,
        rank_active_cycles=result.rank_active_cycles,
        total_rank_cycles=total_rank_cycles,
        timing=timing,
        power=power,
        mechanism_pj=mechanism_pj,
    )
