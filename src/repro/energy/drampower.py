"""Command-level DRAM energy model (the paper's DRAMPower substitute).

Energy is computed from the simulator's post-warmup command counts and
state-residency using the standard IDDx current-class decomposition
(DRAMPower methodology, shared by the DDRx/LPDDRx/GDDRx family):

* **ACT/PRE pair**: ``(IDD0*tRC - IDD3N*tRAS - IDD2N*(tRC-tRAS)) * VDD``
  per activation - the charge above the standby floor.
* **Read / write burst**: ``(IDD4R/W - IDD3N) * VDD * tBurst``.
* **Refresh**: ``(IDD5B - IDD2N) * VDD * tRFC``.
* **Background**: ``IDD3N`` while >= 1 bank is open (active standby),
  ``IDD2N`` otherwise (precharged standby).

The decomposition is standard-independent; only the parameters change.
:class:`PowerParameters` holds one device's IDD classes and supply
voltage, and :mod:`repro.dram.standards` registers a datasheet-
representative preset per timing grade inside each
:class:`~repro.dram.standards.StandardProfile`, so a run's energy is
always computed with the IDD set *and* clock of the standard the run
was simulated on.  :func:`energy_for_run` resolves both from
``result.config`` — callers only pass timing/power explicitly to model
a hypothetical device.

ChargeCache reduces DRAM energy through exactly two terms the model
captures: a shorter run (less background energy for the same work) and
earlier precharges on reduced-tRAS activations (less active standby).
The ChargeCache table's own power (from :mod:`repro.energy.mcpat`) is
charged against the mechanism, as the paper does in Section 6.2.

Currents are per DRAM device; a rank has ``chips_per_rank`` devices
sharing the 64-bit bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class PowerParameters:
    """IDD current classes (mA) and supply voltage for one device.

    The defaults follow a Micron DDR3-1600 4 Gb x8 datasheet (the
    device the paper's Table 1 cites [57]); the other standards'
    presets live next to their timing presets in
    :mod:`repro.dram.standards`.
    """

    name: str = "DDR3-1600"
    vdd: float = 1.5
    idd0_ma: float = 55.0    # one-bank ACT->PRE cycling
    idd2n_ma: float = 32.0   # precharged standby
    idd3n_ma: float = 38.0   # active standby
    idd4r_ma: float = 157.0  # burst read
    idd4w_ma: float = 128.0  # burst write
    idd5b_ma: float = 210.0  # burst refresh
    chips_per_rank: int = 8

    def validate(self) -> None:
        if self.vdd <= 0 or self.chips_per_rank < 1:
            raise ValueError("voltage/chips must be positive")
        for field in ("idd0_ma", "idd2n_ma", "idd3n_ma", "idd4r_ma",
                      "idd4w_ma", "idd5b_ma"):
            if getattr(self, field) <= 0:
                raise ValueError(
                    f"{self.name}: {field} must be positive, "
                    f"got {getattr(self, field)}")
        if self.idd3n_ma < self.idd2n_ma:
            raise ValueError(
                f"{self.name}: IDD3N ({self.idd3n_ma} mA) must be >= "
                f"IDD2N ({self.idd2n_ma} mA)")
        # Burst terms subtract the standby floor they sit on top of; a
        # burst current below it would yield silently negative read/
        # write/refresh energy components.
        if self.idd4r_ma < self.idd3n_ma or self.idd4w_ma < self.idd3n_ma:
            raise ValueError(
                f"{self.name}: IDD4R/IDD4W ({self.idd4r_ma}/"
                f"{self.idd4w_ma} mA) must be >= IDD3N "
                f"({self.idd3n_ma} mA)")
        if self.idd5b_ma < self.idd2n_ma:
            raise ValueError(
                f"{self.name}: IDD5B ({self.idd5b_ma} mA) must be >= "
                f"IDD2N ({self.idd2n_ma} mA)")


#: Backward-compatible alias: the original model was DDR3-only and the
#: class defaults still describe that device.
DDR3PowerParameters = PowerParameters


@dataclass
class EnergyBreakdown:
    """Per-component DRAM energy for one run, in picojoules."""

    act_pre_pj: float
    read_pj: float
    write_pj: float
    refresh_pj: float
    background_active_pj: float
    background_precharged_pj: float
    mechanism_pj: float = 0.0

    @property
    def background_pj(self) -> float:
        return self.background_active_pj + self.background_precharged_pj

    @property
    def total_pj(self) -> float:
        return (self.act_pre_pj + self.read_pj + self.write_pj
                + self.refresh_pj + self.background_pj + self.mechanism_pj)

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9

    def as_dict(self) -> dict:
        return {
            "act_pre_pj": self.act_pre_pj,
            "read_pj": self.read_pj,
            "write_pj": self.write_pj,
            "refresh_pj": self.refresh_pj,
            "background_active_pj": self.background_active_pj,
            "background_precharged_pj": self.background_precharged_pj,
            "mechanism_pj": self.mechanism_pj,
            "total_pj": self.total_pj,
        }


def _pj(current_ma: float, vdd: float, time_ns: float) -> float:
    """mA * V * ns = pJ."""
    return current_ma * vdd * time_ns


def energy_components(activations: int, reads: int, writes: int,
                      refreshes: int, rank_active_cycles: int,
                      total_rank_cycles: int,
                      timing: TimingParameters,
                      power: Optional[PowerParameters] = None,
                      mechanism_pj: float = 0.0) -> EnergyBreakdown:
    """Energy breakdown from raw counts (all ranks aggregated).

    Args:
        rank_active_cycles: sum over ranks of any-bank-open cycles.
        total_rank_cycles: ranks * run-length cycles.
    """
    if power is None:
        power = PowerParameters()
    power.validate()
    for what, value in (("activations", activations), ("reads", reads),
                        ("writes", writes), ("refreshes", refreshes),
                        ("rank_active_cycles", rank_active_cycles),
                        ("total_rank_cycles", total_rank_cycles)):
        if value < 0:
            raise ValueError(f"{what} must be non-negative, got {value}")
    if rank_active_cycles > total_rank_cycles:
        raise ValueError("active cycles exceed total rank cycles")
    if mechanism_pj < 0:
        raise ValueError("mechanism energy must be non-negative")
    tck = timing.tCK_ns
    chips = power.chips_per_rank
    vdd = power.vdd

    act_each = (power.idd0_ma * timing.tRC
                - power.idd3n_ma * timing.tRAS
                - power.idd2n_ma * timing.tRP) * vdd * tck
    act_pre = max(0.0, act_each) * activations * chips

    read = _pj(power.idd4r_ma - power.idd3n_ma, vdd,
               reads * timing.tBL * tck) * chips
    write = _pj(power.idd4w_ma - power.idd3n_ma, vdd,
                writes * timing.tBL * tck) * chips
    refresh = _pj(power.idd5b_ma - power.idd2n_ma, vdd,
                  refreshes * timing.tRFC * tck) * chips

    bg_active = _pj(power.idd3n_ma, vdd,
                    rank_active_cycles * tck) * chips
    bg_pre = _pj(power.idd2n_ma, vdd,
                 (total_rank_cycles - rank_active_cycles) * tck) * chips

    return EnergyBreakdown(act_pre, read, write, refresh, bg_active,
                           bg_pre, mechanism_pj)


def _resolve(result, timing: Optional[TimingParameters],
             power: Optional[PowerParameters]):
    """Fill missing timing/power from the run config's standard."""
    if timing is None or power is None:
        from repro.dram.standards import profile_for_config
        prof = profile_for_config(result.config)
        timing = timing if timing is not None else prof.timing
        power = power if power is not None else prof.power
    return timing, power


def run_seconds(result, timing: Optional[TimingParameters] = None) -> float:
    """Wall-clock length of a run in its own standard's bus clock."""
    if timing is None:
        from repro.dram.standards import profile_for_config
        timing = profile_for_config(result.config).timing
    return result.mem_cycles * timing.tCK_ns * 1e-9


def access_rate_for_run(result,
                        timing: Optional[TimingParameters] = None) -> float:
    """HCRAC accesses (ACT + RD + WR) per second of run time.

    Feeds :meth:`repro.energy.mcpat.HCRACOverhead.average_power_w`;
    the denominator uses the run's own clock, so the rate is correct
    on every standard, not just DDR3.
    """
    seconds = run_seconds(result, timing)
    if seconds <= 0:
        return 0.0
    return (result.activations + result.reads + result.writes) / seconds


def energy_for_run(result, timing: Optional[TimingParameters] = None,
                   power: Optional[PowerParameters] = None,
                   mechanism_power_w: float = 0.0) -> EnergyBreakdown:
    """Energy breakdown for a :class:`repro.cpu.system.RunResult`.

    Timing and IDD parameters default to the
    :class:`~repro.dram.standards.StandardProfile` of the standard the
    run's config names, so a DDR4/LPDDR3/GDDR5 run is charged with its
    own clock and currents.  Pass ``timing``/``power`` explicitly only
    to model a hypothetical device.

    ``mechanism_power_w`` is the average power of the latency
    mechanism's hardware (e.g. ChargeCache's HCRAC from
    :func:`repro.energy.mcpat.hcrac_overhead`), integrated over the run.
    """
    timing, power = _resolve(result, timing, power)
    cfg = result.config
    ranks = cfg.dram.channels * cfg.dram.ranks_per_channel
    total_rank_cycles = ranks * result.mem_cycles
    mechanism_pj = mechanism_power_w * run_seconds(result, timing) * 1e12
    return energy_components(
        activations=result.activations,
        reads=result.reads,
        writes=result.writes,
        refreshes=result.refreshes,
        rank_active_cycles=result.rank_active_cycles,
        total_rank_cycles=total_rank_cycles,
        timing=timing,
        power=power,
        mechanism_pj=mechanism_pj,
    )
