"""ChargeCache hardware overhead model (paper Section 6.3).

Implements the paper's storage equations exactly:

    Storage_bits = C * MC * Entries * (EntrySize_bits + LRU_bits)    (1)
    EntrySize_bits = log2(R) + log2(B) + log2(Ro) + 1                (2)

where C = cores, MC = memory channels, R/B/Ro = ranks, banks and rows.
For the paper's 8-core, 2-channel, 128-entry configuration this gives
5376 bytes (they report the same), 0.022 mm^2 at 22 nm and 0.149 mW
average power - 0.24% of the area and 0.23% of the power of the 4 MB
LLC.  The area/power constants below are calibrated to those McPAT
results and scale linearly with storage bits (SRAM tag arrays this
small are wire/cell dominated).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Calibrated 22 nm constants (see module docstring).
AREA_UM2_PER_BIT_22NM = 0.022e6 / 43008        # ~0.5116 um^2/bit
LEAKAGE_W_PER_BIT_22NM = 0.127e-3 / 43008      # ~2.95 nW/bit
DYNAMIC_PJ_PER_ACCESS_PER_ENTRY_BIT = 0.042    # pJ per access per tag bit

#: 4 MB, 16-way LLC reference points at 22 nm (for the paper's "only
#: 0.24% of the LLC" comparisons).
LLC_AREA_MM2_4MB_22NM = 9.17
LLC_POWER_W_4MB_22NM = 0.065


def _log2_int(value: int, what: str) -> int:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


def hcrac_entry_bits(ranks: int, banks: int, rows: int,
                     valid_bit: bool = True) -> int:
    """Equation (2): bits per HCRAC entry (tag + valid)."""
    bits = _log2_int(ranks, "ranks") + _log2_int(banks, "banks") \
        + _log2_int(rows, "rows")
    return bits + (1 if valid_bit else 0)


def hcrac_storage_bits(cores: int, channels: int, entries: int,
                       associativity: int, ranks: int, banks: int,
                       rows: int) -> int:
    """Equation (1): total ChargeCache storage in bits."""
    if cores < 1 or channels < 1 or entries < 1:
        raise ValueError("cores/channels/entries must be >= 1")
    if associativity < 1:
        raise ValueError("associativity must be >= 1")
    lru_bits = max(0, math.ceil(math.log2(associativity)))
    entry = hcrac_entry_bits(ranks, banks, rows)
    return cores * channels * entries * (entry + lru_bits)


@dataclass(frozen=True)
class HCRACOverhead:
    """Area/power summary for one ChargeCache configuration."""

    storage_bits: int
    area_mm2: float
    leakage_w: float
    dynamic_pj_per_access: float

    @property
    def storage_bytes(self) -> int:
        return self.storage_bits // 8

    def average_power_w(self, accesses_per_second: float) -> float:
        """Leakage plus dynamic power at the given access rate.

        An "access" is one HCRAC operation: a lookup (per ACT), an
        insert (per PRE) or an invalidation sweep step.
        """
        if accesses_per_second < 0:
            raise ValueError("access rate must be non-negative")
        dynamic = accesses_per_second * self.dynamic_pj_per_access * 1e-12
        return self.leakage_w + dynamic

    def area_fraction_of_llc(self) -> float:
        return self.area_mm2 / LLC_AREA_MM2_4MB_22NM

    def power_fraction_of_llc(self, accesses_per_second: float) -> float:
        return self.average_power_w(accesses_per_second) \
            / LLC_POWER_W_4MB_22NM


def hcrac_overhead(cores: int = 8, channels: int = 2, entries: int = 128,
                   associativity: int = 2, ranks: int = 1, banks: int = 8,
                   rows: int = 64 * 1024) -> HCRACOverhead:
    """Overhead for a ChargeCache configuration (defaults: paper's).

    >>> o = hcrac_overhead()
    >>> o.storage_bytes
    5376
    >>> round(o.area_mm2, 3)
    0.022
    """
    bits = hcrac_storage_bits(cores, channels, entries, associativity,
                              ranks, banks, rows)
    entry = hcrac_entry_bits(ranks, banks, rows)
    return HCRACOverhead(
        storage_bits=bits,
        area_mm2=bits * AREA_UM2_PER_BIT_22NM * 1e-6,
        leakage_w=bits * LEAKAGE_W_PER_BIT_22NM,
        dynamic_pj_per_access=entry * DYNAMIC_PJ_PER_ACCESS_PER_ENTRY_BIT,
    )


def overhead_for_config(config) -> HCRACOverhead:
    """Overhead for a :class:`repro.config.SimulationConfig`.

    Honours the ChargeCache ``sharing`` mode: equation (1)'s per-core
    factor C applies to the paper's replicated per-(core, channel)
    tables; ``sharing="shared"`` keeps one table per channel
    (:class:`repro.core.chargecache.ChargeCache` builds exactly one),
    so C = 1.
    """
    per_core = config.chargecache.sharing != "shared"
    return hcrac_overhead(
        cores=config.processor.num_cores if per_core else 1,
        channels=config.dram.channels,
        entries=config.chargecache.entries,
        associativity=config.chargecache.associativity,
        ranks=config.dram.ranks_per_channel,
        banks=config.dram.banks_per_rank,
        rows=config.dram.rows_per_bank,
    )
