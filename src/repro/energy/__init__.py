"""Energy and area models.

* :mod:`repro.energy.drampower` - command-level DRAM energy (the
  paper's DRAMPower substitute, Section 6.2 / Figure 8), parameterized
  by the per-standard IDD presets of :mod:`repro.dram.standards`.
* :mod:`repro.energy.mcpat` - ChargeCache storage/area/power overhead
  (the paper's McPAT substitute, Section 6.3, equations 1-2).
"""

from repro.energy.drampower import (
    DDR3PowerParameters,
    EnergyBreakdown,
    PowerParameters,
    access_rate_for_run,
    energy_components,
    energy_for_run,
    run_seconds,
)
from repro.energy.mcpat import (
    hcrac_storage_bits,
    hcrac_entry_bits,
    HCRACOverhead,
    hcrac_overhead,
    overhead_for_config,
    LLC_AREA_MM2_4MB_22NM,
    LLC_POWER_W_4MB_22NM,
)

__all__ = [
    "DDR3PowerParameters",
    "EnergyBreakdown",
    "PowerParameters",
    "access_rate_for_run",
    "energy_components",
    "energy_for_run",
    "run_seconds",
    "hcrac_storage_bits",
    "hcrac_entry_bits",
    "HCRACOverhead",
    "hcrac_overhead",
    "overhead_for_config",
    "LLC_AREA_MM2_4MB_22NM",
    "LLC_POWER_W_4MB_22NM",
]
