"""Real-trace ingestion and workload fingerprinting.

External memory traces (gem5/Ramulator-style ``<cycle> <addr> <R|W>``
files) enter the repro here: :mod:`formats` parses them,
:mod:`normalize` maps them through the configured address mapping into
internal request streams, and :mod:`fingerprint` measures the locality
signature (RLTL distribution, RMPKC, row-hit rate) of any stream -
ingested or synthetic - against the reference table in
:mod:`reference`.
"""

from repro.workloads.ingest.formats import (
    MemTraceRecord,
    TraceFormatError,
    iter_mem_trace,
    read_gem5_stats,
    read_mem_trace,
    write_mem_trace,
)
from repro.workloads.ingest.normalize import (
    denormalize_records,
    ingest_trace_file,
    normalize_records,
    trace_file_sha256,
)
from repro.workloads.ingest.fingerprint import (
    DEFAULT_FINGERPRINT_RECORDS,
    WorkloadFingerprint,
    fingerprint_file,
    fingerprint_records,
    fingerprint_workload,
)
from repro.workloads.ingest.reference import (
    REFERENCE_FINGERPRINTS,
    REFERENCE_INTERVAL_MS,
    fingerprint_delta,
    reference_for,
)

__all__ = [
    "MemTraceRecord",
    "TraceFormatError",
    "iter_mem_trace",
    "read_gem5_stats",
    "read_mem_trace",
    "write_mem_trace",
    "denormalize_records",
    "ingest_trace_file",
    "normalize_records",
    "trace_file_sha256",
    "DEFAULT_FINGERPRINT_RECORDS",
    "WorkloadFingerprint",
    "fingerprint_file",
    "fingerprint_records",
    "fingerprint_workload",
    "REFERENCE_FINGERPRINTS",
    "REFERENCE_INTERVAL_MS",
    "fingerprint_delta",
    "reference_for",
]
