"""Parsers for external memory-trace formats.

Two on-disk formats are understood:

* **Memory trace** - the gem5/Ramulator-style line format::

      <cycle> <address> <R|W>

  one access per line: the CPU cycle the access issued at
  (non-decreasing), the physical *byte* address (decimal or
  ``0x``-prefixed hex) and the operation.  Blank lines and ``#``
  comments are ignored.  This is the interchange format of the
  ingestion pipeline; :mod:`repro.workloads.ingest.normalize` maps it
  into the repro's internal request stream.

* **gem5 ``stats.txt``** - the flat ``<name> <value> [# comment]``
  statistics dump, including its ``Begin/End Simulation Statistics``
  snapshot markers.  :func:`read_gem5_stats` returns one snapshot as a
  name -> float dict, which is enough to cross-check a fingerprint
  (row hits, activations, cycle counts) against the simulator that
  produced the trace.

All parse failures raise :class:`TraceFormatError` with a precise
``path:line: reason`` message, so a malformed external trace fails
loudly at ingestion time rather than as a silent workload mutation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, NamedTuple, Optional


class TraceFormatError(ValueError):
    """A trace or stats file violates its format contract.

    ``str(exc)`` is always ``<path>:<line>: <reason>`` (or
    ``<path>: <reason>`` for whole-file problems such as an empty
    trace), so messages are grep-able and point at the offending line.
    """

    def __init__(self, path: str, line_no: Optional[int], reason: str):
        self.path = path
        self.line_no = line_no
        self.reason = reason
        where = f"{path}:{line_no}" if line_no is not None else str(path)
        super().__init__(f"{where}: {reason}")


class MemTraceRecord(NamedTuple):
    """One line of the external memory-trace format."""

    cycle: int
    address: int        # physical byte address
    is_write: bool


def _parse_int(text: str, what: str, base: int = 10) -> int:
    try:
        # base 0 accepts decimal and 0x-prefixed hex.
        value = int(text, 0 if base == 0 else base)
    except ValueError:
        raise ValueError(f"bad {what} {text!r}") from None
    if value < 0:
        raise ValueError(f"bad {what} {text!r} (must be non-negative)")
    return value


def iter_mem_trace(path: str) -> Iterable[MemTraceRecord]:
    """Stream records from a ``<cycle> <address> <R|W>`` trace file.

    Validates as it goes: field count, cycle and address syntax, the
    operation letter, and cycle monotonicity (cycles must never
    decrease; equal cycles are legal - two accesses can issue in the
    same cycle).  Raises :class:`TraceFormatError` on the first
    violation.
    """
    last_cycle = None
    with open(path, encoding="ascii", errors="replace") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise TraceFormatError(
                    path, line_no,
                    f"expected '<cycle> <address> <R|W>', "
                    f"got {len(parts)} field(s): {line!r}")
            try:
                cycle = _parse_int(parts[0], "cycle")
                address = _parse_int(parts[1], "address", base=0)
            except ValueError as exc:
                raise TraceFormatError(path, line_no, str(exc)) from None
            if parts[2] not in ("R", "W"):
                raise TraceFormatError(
                    path, line_no,
                    f"bad op {parts[2]!r} (expected R or W)")
            if last_cycle is not None and cycle < last_cycle:
                raise TraceFormatError(
                    path, line_no,
                    f"non-monotonic cycle {cycle} after {last_cycle}")
            last_cycle = cycle
            yield MemTraceRecord(cycle, address, parts[2] == "W")


def read_mem_trace(path: str) -> List[MemTraceRecord]:
    """Read a whole memory-trace file; empty traces are an error."""
    records = list(iter_mem_trace(path))
    if not records:
        raise TraceFormatError(path, None, "no records")
    return records


def write_mem_trace(path: str, records: Iterable[MemTraceRecord]) -> int:
    """Write records in the ``<cycle> <address> <R|W>`` format."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for rec in records:
            op = "W" if rec.is_write else "R"
            fh.write(f"{rec.cycle} {rec.address:#x} {op}\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# gem5 stats.txt
# ----------------------------------------------------------------------

_SNAPSHOT_BEGIN = "Begin Simulation Statistics"
_SNAPSHOT_END = "End Simulation Statistics"


def _parse_stat_value(text: str) -> float:
    if text.endswith("%"):
        return float(text[:-1]) / 100.0
    if text in ("nan", "-nan", "inf", "-inf"):
        return float(text.replace("-nan", "nan"))
    return float(text)


def read_gem5_stats(path: str, snapshot: int = 0) -> Dict[str, float]:
    """Parse one snapshot of a gem5 ``stats.txt`` dump.

    gem5 appends a ``Begin/End Simulation Statistics`` block per stats
    dump; ``snapshot`` selects which one (0 = first, -1 = last).  Each
    stat line is ``<name> <value> [# comment]``; percent values are
    returned as fractions, ``nan`` stays NaN.  A value that does not
    parse as a number raises :class:`TraceFormatError`; a snapshot
    index past the end of the file raises it with the snapshot count.
    """
    snapshots: List[Dict[str, float]] = []
    current: Optional[Dict[str, float]] = None
    with open(path, encoding="ascii", errors="replace") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if _SNAPSHOT_BEGIN in line:
                current = {}
                snapshots.append(current)
                continue
            if _SNAPSHOT_END in line:
                current = None
                continue
            if line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise TraceFormatError(
                    path, line_no,
                    f"expected '<name> <value>', got {line!r}")
            try:
                value = _parse_stat_value(parts[1])
            except ValueError:
                raise TraceFormatError(
                    path, line_no,
                    f"bad stat value {parts[1]!r} for {parts[0]!r}"
                ) from None
            if current is None:
                # Stats before any Begin marker form an implicit
                # snapshot (plain dumps have no markers at all).
                current = {}
                snapshots.append(current)
            current[parts[0]] = value
    if not snapshots:
        raise TraceFormatError(path, None, "no statistics")
    try:
        chosen = snapshots[snapshot]
    except IndexError:
        raise TraceFormatError(
            path, None,
            f"snapshot {snapshot} out of range "
            f"({len(snapshots)} snapshot(s) in file)") from None
    if not chosen:
        raise TraceFormatError(path, None, "empty statistics snapshot")
    return chosen


def stats_sanity(stats: Dict[str, float]) -> Dict[str, float]:
    """Best-effort extraction of fingerprint-comparable gem5 stats.

    Looks for the conventional memory-controller counter names (row
    hits/misses under any controller prefix) and returns whichever of
    ``row_hit_rate`` / ``activations`` / ``cpu_cycles`` it can derive.
    Missing counters are simply absent - callers treat this as hints,
    not a contract.
    """
    out: Dict[str, float] = {}
    hits = sum(v for k, v in stats.items()
               if k.endswith("readRowHits") or k.endswith("writeRowHits"))
    total = sum(v for k, v in stats.items()
                if k.endswith("readBursts") or k.endswith("writeBursts"))
    if total > 0:
        out["row_hit_rate"] = hits / total
        out["activations"] = total - hits
    for key in ("system.cpu.numCycles", "sim_ticks", "simTicks"):
        if key in stats and not math.isnan(stats[key]):
            out["cpu_cycles"] = stats[key]
            break
    return out
