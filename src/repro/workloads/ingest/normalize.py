"""Normalization: external memory traces -> internal request streams.

The repro's simulators consume :class:`repro.cpu.trace.TraceRecord`
streams - (bubbles, cache-line address, is_write) - while external
traces speak (cycle, byte address, op).  This layer converts between
the two against a concrete DRAM :class:`~repro.dram.organization.
Organization`:

* **Addresses**: byte address -> cache-line address (``>> log2(line)``),
  then wrapped through the organization's configured address mapping
  (``encode(decode(line))``), so an ingested request lands on exactly
  the channel/rank/bank/row the simulated platform would decode it to.
  Addresses beyond the modelled capacity wrap, like every other
  workload source.
* **Time**: the cycle gap between consecutive accesses becomes the
  record's ``bubbles`` (non-memory instructions before the access)
  under an IPC=1 idealization: a gap of ``g`` CPU cycles is
  ``g/cycles_per_instruction - 1`` bubbles (floored at 0).  The
  inverse, :func:`denormalize_records`, regenerates cycles by the same
  rule, so normalize(denormalize(t)) round-trips bit-identically for
  in-range addresses.

The external format has no dependence channel, so ingested records
are never ``dependent`` (synthetic pointer-chase workloads remain the
way to model that).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional

from repro.cpu.trace import TraceRecord
from repro.dram.organization import Organization
from repro.workloads.ingest.formats import (
    MemTraceRecord,
    TraceFormatError,
    read_mem_trace,
)


def trace_file_sha256(path: str) -> str:
    """Streaming SHA-256 of a trace file's bytes (the content hash
    folded into trace-run cache keys)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _line_shift(org: Organization) -> int:
    shift = org.line_bytes.bit_length() - 1
    if 1 << shift != org.line_bytes:
        raise ValueError(f"line_bytes must be a power of two, "
                         f"got {org.line_bytes}")
    return shift


def normalize_records(records: Iterable[MemTraceRecord],
                      org: Organization, *,
                      cycles_per_instruction: float = 1.0
                      ) -> List[TraceRecord]:
    """Map external (cycle, byte address, op) records into the internal
    request stream for one DRAM organization."""
    if cycles_per_instruction <= 0:
        raise ValueError("cycles_per_instruction must be positive")
    shift = _line_shift(org)
    mask = org.total_lines - 1
    out: List[TraceRecord] = []
    prev_cycle = 0
    for rec in records:
        gap = rec.cycle - prev_cycle
        bubbles = max(0, round(gap / cycles_per_instruction) - 1)
        prev_cycle = rec.cycle
        out.append(TraceRecord(bubbles, (rec.address >> shift) & mask,
                               rec.is_write))
    return out


def denormalize_records(records: Iterable[TraceRecord],
                        org: Organization, *,
                        cycles_per_instruction: float = 1.0
                        ) -> List[MemTraceRecord]:
    """Inverse of :func:`normalize_records`: regenerate external
    records from an internal stream (fixture generation, round-trip
    tests).  Dependence flags do not survive - the external format
    cannot express them."""
    if cycles_per_instruction <= 0:
        raise ValueError("cycles_per_instruction must be positive")
    shift = _line_shift(org)
    mask = org.total_lines - 1
    out: List[MemTraceRecord] = []
    cycle = 0
    for rec in records:
        cycle += max(1, round((rec.bubbles + 1) * cycles_per_instruction))
        out.append(MemTraceRecord(cycle,
                                  (rec.line_address & mask) << shift,
                                  rec.is_write))
    return out


def ingest_trace_file(path: str, org: Organization, *,
                      cycles_per_instruction: float = 1.0,
                      expected_sha256: Optional[str] = None
                      ) -> List[TraceRecord]:
    """Read, verify and normalize one external trace file.

    When ``expected_sha256`` is given (the hash a trace RunSpec was
    keyed with), the file's current content hash must match - a trace
    file silently edited after its spec was built would otherwise
    poison the content-addressed run cache with results keyed to the
    old bytes.
    """
    if expected_sha256 is not None:
        actual = trace_file_sha256(path)
        if actual != expected_sha256:
            raise TraceFormatError(
                path, None,
                f"content hash mismatch: spec was keyed to "
                f"{expected_sha256[:12]}..., file now hashes to "
                f"{actual[:12]}...")
    return normalize_records(read_mem_trace(path), org,
                             cycles_per_instruction=cycles_per_instruction)
