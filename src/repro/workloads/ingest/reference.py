"""Reference fingerprint table and calibration deltas.

Each of the 22 evaluated workloads has a **reference fingerprint** -
the locality signature its synthetic substitute is pinned to.
Provenance (also documented in DESIGN.md section 2):

* The three per-workload values (``rltl_1ms``, ``rmpkc``,
  ``row_hit``) are **measured** from the substitution-table generators
  at the fingerprint defaults - 20 000 records, seed 1, the paper's
  single-channel organization, ``time_scale`` 64 - and rounded.  They
  are regression anchors: ``calibrate`` re-measures the same pass and
  reports signed deltas, so any change to a generator, the address
  mapping or the fingerprint model shows up as drift per workload.
* The **paper** supplies the qualitative cross-checks the anchors were
  validated against before pinning: Figure 4a's average 1 ms-RLTL
  (86%; :data:`PAPER_AVG_RLTL_1MS`), Figure 7a's RMPKC *ordering*
  (light -> heavy left to right, reproduced by the table's ordering
  here), and Section 6.1's observation that mcf/omnetpp have the
  weakest row-level temporal locality (mcf is the smallest
  ``rltl_1ms`` below, omnetpp among the bottom three).
* ``rmpkc`` is in the fingerprint pass's IPC=1 unit (misses per kilo
  *instruction*), not simulated-cycle RMPKC - the two differ by the
  workload's achieved IPC, so RMPKC deltas are judged on a ratio.
* ``row_hit`` is the idealized in-order open-row model's hit rate;
  scheduler reordering (FR-FCFS) recovers hits the idealized model
  misses, so simulated hit rates sit above these for interleaved
  streams.

A workload whose measured fingerprint lands within the tolerances
below "calibrates"; the ``calibrate`` experiment reports the signed
deltas either way, so drift is visible long before it crosses a
threshold.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.workloads.ingest.fingerprint import WorkloadFingerprint

#: Absolute tolerance on the 1 ms-RLTL fraction.
RLTL_TOLERANCE = 0.10
#: Absolute tolerance on the row-hit rate.
ROW_HIT_TOLERANCE = 0.15
#: Ratio tolerance on RMPKC: measured must be within [ref/F, ref*F].
RMPKC_RATIO_TOLERANCE = 1.5

#: Interval the headline RLTL delta is evaluated at (Figure 4a's 1 ms).
REFERENCE_INTERVAL_MS = 1.0

#: workload -> {rltl_1ms, rmpkc, row_hit} reference values, in the
#: paper's Figure 7a light-to-heavy order (see module docstring for
#: provenance and units).
REFERENCE_FINGERPRINTS: Dict[str, Dict[str, float]] = {
    # --- light (low RMPKC; Fig 7a left) -----------------------------
    "tpch6":      {"rltl_1ms": 0.742, "rmpkc": 4.5,   "row_hit": 0.585},
    "apache20":   {"rltl_1ms": 0.716, "rmpkc": 6.4,   "row_hit": 0.490},
    "hmmer":      {"rltl_1ms": 0.996, "rmpkc": 3.2,   "row_hit": 0.801},
    "tonto":      {"rltl_1ms": 0.769, "rmpkc": 5.8,   "row_hit": 0.590},
    "bzip2":      {"rltl_1ms": 0.754, "rmpkc": 15.4,  "row_hit": 0.052},
    "sjeng":      {"rltl_1ms": 0.505, "rmpkc": 17.7,  "row_hit": 0.005},
    "GemsFDTD":   {"rltl_1ms": 0.992, "rmpkc": 21.9,  "row_hit": 0.000},
    "sphinx3":    {"rltl_1ms": 0.753, "rmpkc": 22.9,  "row_hit": 0.051},
    # --- medium ------------------------------------------------------
    "tpch2":      {"rltl_1ms": 0.749, "rmpkc": 16.0,  "row_hit": 0.425},
    "astar":      {"rltl_1ms": 0.554, "rmpkc": 27.9,  "row_hit": 0.004},
    "mcf":        {"rltl_1ms": 0.389, "rmpkc": 52.7,  "row_hit": 0.001},
    "milc":       {"rltl_1ms": 0.984, "rmpkc": 31.9,  "row_hit": 0.000},
    "bwaves":     {"rltl_1ms": 0.984, "rmpkc": 38.6,  "row_hit": 0.000},
    "cactusADM":  {"rltl_1ms": 0.984, "rmpkc": 34.5,  "row_hit": 0.000},
    "omnetpp":    {"rltl_1ms": 0.541, "rmpkc": 58.3,  "row_hit": 0.002},
    "tpcc64":     {"rltl_1ms": 0.644, "rmpkc": 34.3,  "row_hit": 0.219},
    # --- heavy (high RMPKC; Fig 7a right) ---------------------------
    "lbm":        {"rltl_1ms": 0.969, "rmpkc": 67.0,  "row_hit": 0.000},
    "leslie3d":   {"rltl_1ms": 0.969, "rmpkc": 66.8,  "row_hit": 0.000},
    "libquantum": {"rltl_1ms": 0.875, "rmpkc": 111.9, "row_hit": 0.000},
    "soplex":     {"rltl_1ms": 0.775, "rmpkc": 95.3,  "row_hit": 0.050},
    "tpch17":     {"rltl_1ms": 0.770, "rmpkc": 71.6,  "row_hit": 0.290},
    "STREAMcopy": {"rltl_1ms": 0.875, "rmpkc": 141.0, "row_hit": 0.000},
}

#: Figure 4a's printed average 1 ms-RLTL (single-core, open-row).
PAPER_AVG_RLTL_1MS = 0.86


def reference_for(name: str) -> Dict[str, float]:
    try:
        return REFERENCE_FINGERPRINTS[name]
    except KeyError:
        raise KeyError(
            f"no reference fingerprint for {name!r}; "
            f"known: {sorted(REFERENCE_FINGERPRINTS)}") from None


def fingerprint_delta(fp: WorkloadFingerprint,
                      ref: Mapping[str, float]) -> Dict[str, float]:
    """Signed deltas of a measured fingerprint against a reference.

    Returns the measured values, the references, the deltas
    (``d_rltl``/``d_row_hit`` absolute, ``rmpkc_ratio`` as
    measured/reference), and a ``status`` of "ok" or "drift" judged
    against the module tolerances.  A zero-reference RMPKC compares on
    the absolute value instead of the ratio.
    """
    rltl = fp.rltl(REFERENCE_INTERVAL_MS)
    rmpkc = fp.rmpkc
    row_hit = fp.row_hit_rate
    if ref["rmpkc"] > 0:
        ratio = rmpkc / ref["rmpkc"]
        rmpkc_ok = (1.0 / RMPKC_RATIO_TOLERANCE <= ratio
                    <= RMPKC_RATIO_TOLERANCE)
    else:
        ratio = float("inf") if rmpkc else 1.0
        rmpkc_ok = rmpkc == 0
    ok = (abs(rltl - ref["rltl_1ms"]) <= RLTL_TOLERANCE
          and abs(row_hit - ref["row_hit"]) <= ROW_HIT_TOLERANCE
          and rmpkc_ok)
    return {
        "rltl_1ms": rltl,
        "ref_rltl_1ms": ref["rltl_1ms"],
        "d_rltl": rltl - ref["rltl_1ms"],
        "rmpkc": rmpkc,
        "ref_rmpkc": ref["rmpkc"],
        "rmpkc_ratio": ratio,
        "row_hit": row_hit,
        "ref_row_hit": ref["row_hit"],
        "d_row_hit": row_hit - ref["row_hit"],
        "status": "ok" if ok else "drift",
    }
