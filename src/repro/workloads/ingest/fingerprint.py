"""Workload fingerprints: RLTL distribution, RMPKC, row-hit rate.

A fingerprint characterises a request stream - synthetic or ingested -
by the three metrics the paper's motivation rests on (Figures 4a/7a
and the RLTL companion paper, arXiv 1805.03969):

* **t-RLTL** per interval: the fraction of row activations that occur
  within ``t`` of the *previous precharge of the same row* (charge
  leaks from precharge, so this is the fraction ChargeCache can
  accelerate).  Buckets are the paper's 0.125/0.25/0.5/1/8/32 ms set.
* **RMPKC**: activations per kilo CPU cycle - the memory-intensity
  axis of Figure 7a.
* **Row-hit rate**: fraction of accesses served from the open row.

The pass is a trace-level analytical model, not a simulation: one
idealized open-row bank model (the row stays open until a conflicting
activation, which precharges it), an IPC=1 clock (one CPU cycle per
instruction, so time is ``sum(bubbles+1)``), and the same
``time_scale`` convention as :class:`repro.stats.rltl.RLTLProbe`
(interval edges divided by ``time_scale`` so short scaled traces still
resolve the millisecond buckets).  Because it touches no controller,
scheduler or engine state, a fingerprint is deterministic for a given
record sequence - identical whichever simulation engine later replays
the trace, which is exactly what makes it usable as a calibration
reference.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.config import DEFAULT_CPU_FREQ_GHZ
from repro.cpu.trace import TraceRecord
from repro.dram.organization import Organization
from repro.stats.metrics import rmpki
from repro.stats.rltl import RLTL_INTERVALS_MS

#: Mirrors :data:`repro.harness.spec.DEFAULT_TIME_SCALE` without
#: importing the harness layer (workloads must stay below it); a
#: calibration test asserts the two never drift apart.
DEFAULT_TIME_SCALE = 64.0

#: Records fingerprinted by default when a caller gives no budget.
DEFAULT_FINGERPRINT_RECORDS = 20_000


@dataclass(frozen=True)
class WorkloadFingerprint:
    """The measured locality signature of one request stream."""

    name: str
    records: int
    instructions: int
    activations: int
    cold_activations: int
    row_hits: int
    writes: int
    footprint_lines: int
    intervals_ms: Tuple[float, ...]
    rltl_counts: Tuple[int, ...]
    time_scale: float
    cpu_freq_ghz: float

    def rltl(self, interval_ms: float) -> float:
        """t-RLTL: fraction of activations within ``t`` of the same
        row's previous precharge (cold activations count in the
        denominator, as in :class:`~repro.stats.rltl.RLTLProbe`)."""
        try:
            idx = self.intervals_ms.index(interval_ms)
        except ValueError:
            raise KeyError(
                f"interval {interval_ms} ms not tracked; "
                f"tracked: {self.intervals_ms}") from None
        if not self.activations:
            return 0.0
        return self.rltl_counts[idx] / self.activations

    def rltl_series(self) -> Tuple[Tuple[float, float], ...]:
        return tuple((ms, self.rltl(ms)) for ms in self.intervals_ms)

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.records if self.records else 0.0

    @property
    def rmpkc(self) -> float:
        """RMPKC under the pass's IPC=1 clock (see module docstring)."""
        return rmpki(self.activations, self.instructions)

    @property
    def write_fraction(self) -> float:
        return self.writes / self.records if self.records else 0.0

    def to_json(self) -> Dict:
        data = asdict(self)
        data["intervals_ms"] = list(self.intervals_ms)
        data["rltl_counts"] = list(self.rltl_counts)
        # Derived metrics inlined so the JSON is directly plottable.
        data["rltl"] = {str(ms): self.rltl(ms) for ms in self.intervals_ms}
        data["row_hit_rate"] = self.row_hit_rate
        data["rmpkc"] = self.rmpkc
        data["write_fraction"] = self.write_fraction
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "WorkloadFingerprint":
        kwargs = {f: data[f] for f in (
            "name", "records", "instructions", "activations",
            "cold_activations", "row_hits", "writes", "footprint_lines",
            "time_scale", "cpu_freq_ghz")}
        kwargs["intervals_ms"] = tuple(data["intervals_ms"])
        kwargs["rltl_counts"] = tuple(data["rltl_counts"])
        return cls(**kwargs)


def fingerprint_records(records: Iterable[TraceRecord],
                        org: Organization, *,
                        name: str = "trace",
                        intervals_ms: Tuple[float, ...] = RLTL_INTERVALS_MS,
                        time_scale: float = DEFAULT_TIME_SCALE,
                        cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ,
                        limit: Optional[int] = None
                        ) -> WorkloadFingerprint:
    """Fingerprint up to ``limit`` records of a request stream.

    The bank model is the idealized open-row policy: each bank holds
    one open row; an access to it is a row hit, an access to any other
    row precharges the open row (timestamping its "previous precharge")
    and activates the new one.  Activations of rows never seen
    precharging are "cold" and excluded from the RLTL numerator by
    definition.  Interval edges are ``ms / time_scale`` converted to
    CPU cycles at ``cpu_freq_ghz``.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    intervals_ms = tuple(sorted(intervals_ms))
    edges = [max(1, round(ms / time_scale * 1e6 * cpu_freq_ghz))
             for ms in intervals_ms]
    open_row: Dict[int, int] = {}
    last_pre: Dict[Tuple[int, int], int] = {}
    rltl_counts = [0] * len(intervals_ms)
    footprint = set()
    now = 0
    count = hits = writes = activations = cold = 0
    stream = records if limit is None else itertools.islice(records, limit)
    for rec in stream:
        now += rec.bubbles + 1
        count += 1
        footprint.add(rec.line_address)
        if rec.is_write:
            writes += 1
        decoded = org.decode(rec.line_address)
        bank = org.bank_index(decoded)
        current = open_row.get(bank)
        if current == decoded.row:
            hits += 1
            continue
        if current is not None:
            last_pre[(bank, current)] = now
        activations += 1
        prev = last_pre.get((bank, decoded.row))
        if prev is None:
            cold += 1
        else:
            gap = now - prev
            for i, edge in enumerate(edges):
                if gap <= edge:
                    rltl_counts[i] += 1
        open_row[bank] = decoded.row
    return WorkloadFingerprint(
        name=name, records=count, instructions=now,
        activations=activations, cold_activations=cold, row_hits=hits,
        writes=writes, footprint_lines=len(footprint),
        intervals_ms=intervals_ms, rltl_counts=tuple(rltl_counts),
        time_scale=time_scale, cpu_freq_ghz=cpu_freq_ghz)


def fingerprint_workload(name: str, org: Optional[Organization] = None, *,
                         seed: int = 1,
                         num_records: int = DEFAULT_FINGERPRINT_RECORDS,
                         time_scale: float = DEFAULT_TIME_SCALE
                         ) -> WorkloadFingerprint:
    """Fingerprint a named synthetic workload profile.

    Deterministic in (name, org, seed, num_records, time_scale): the
    generator is seeded exactly like a harness run's core-0 trace.
    """
    from repro.workloads.spec_like import make_trace
    org = org or Organization()
    trace = make_trace(name, org, seed=seed)
    return fingerprint_records(trace, org, name=name,
                               time_scale=time_scale, limit=num_records)


def fingerprint_file(path: str, org: Optional[Organization] = None, *,
                     cycles_per_instruction: float = 1.0,
                     time_scale: float = DEFAULT_TIME_SCALE,
                     limit: Optional[int] = None) -> WorkloadFingerprint:
    """Ingest an external trace file and fingerprint it."""
    from repro.workloads.ingest.normalize import ingest_trace_file
    org = org or Organization()
    records = ingest_trace_file(
        path, org, cycles_per_instruction=cycles_per_instruction)
    name = os.path.splitext(os.path.basename(path))[0]
    return fingerprint_records(records, org, name=name,
                               time_scale=time_scale, limit=limit)
