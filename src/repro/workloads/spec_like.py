"""SPEC CPU2006 / TPC / STREAM-like workload profiles.

One profile per workload the paper evaluates (Section 5: 22 workloads
from SPEC CPU2006, TPC and STREAM).  We cannot replay the authors'
Pin traces, so each profile parameterises the synthetic generators of
:mod:`repro.workloads.synthetic` to reproduce the workload's
*qualitative* memory behaviour as characterised in the paper and the
literature:

* **hmmer** is LLC-resident (paper footnote 1: "effectively uses the
  on-chip cache hierarchy ... no requests to main memory").
* **mcf / omnetpp** have large footprints with near-uniform row reuse,
  giving ChargeCache a low hit rate and a visible gap to LL-DRAM
  (paper Section 6.1 discusses exactly these two).
* **libquantum / STREAMcopy / lbm / leslie3d / bwaves** are streaming
  and memory-intensive (high RMPKC); multiple concurrent streams and
  write drains produce the bank conflicts behind their high RLTL.
* **tpch/tpcc/apache** reuse hot rows (zipfian row popularity).
* Intensity (mean bubbles per access) is tuned so the RMPKC *ordering*
  follows Figure 7a: tpch6/apache20 lightest, libquantum/soplex/
  tpch17/STREAMcopy heaviest.

The numbers here are calibration constants, not measurements; see
DESIGN.md's substitution table and EXPERIMENTS.md for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.cpu.trace import TraceRecord
from repro.workloads import synthetic

MB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadProfile:
    """Recipe for one named workload."""

    name: str
    pattern: str            # stream | random | chase | zipf | mix
    footprint_bytes: int
    mean_bubbles: float     # non-memory instructions per access
    write_fraction: float = 0.0
    num_streams: int = 2
    stride_lines: int = 1
    zipf_alpha: float = 1.3
    #: For "mix": (stream_weight, random_weight, zipf_weight).
    mix_weights: Tuple[float, float, float] = (1.0, 1.0, 0.0)

    def build(self, org, seed: int) -> Iterator[TraceRecord]:
        """Instantiate the infinite trace for a DRAM organization."""
        if self.pattern == "stream":
            return synthetic.stream_trace(
                org, self.footprint_bytes, self.mean_bubbles, seed,
                num_streams=self.num_streams,
                write_fraction=self.write_fraction,
                stride_lines=self.stride_lines)
        if self.pattern == "random":
            return synthetic.random_trace(
                org, self.footprint_bytes, self.mean_bubbles, seed,
                write_fraction=self.write_fraction)
        if self.pattern == "chase":
            return synthetic.chase_trace(
                org, self.footprint_bytes, self.mean_bubbles, seed)
        if self.pattern == "zipf":
            return synthetic.zipf_trace(
                org, self.footprint_bytes, self.mean_bubbles, seed,
                alpha=self.zipf_alpha,
                write_fraction=self.write_fraction)
        if self.pattern == "mix":
            children = [
                synthetic.stream_trace(org, self.footprint_bytes,
                                       self.mean_bubbles, seed + 1,
                                       num_streams=self.num_streams,
                                       write_fraction=self.write_fraction,
                                       stride_lines=self.stride_lines),
                synthetic.random_trace(org, self.footprint_bytes,
                                       self.mean_bubbles, seed + 2,
                                       write_fraction=self.write_fraction),
                synthetic.zipf_trace(org, self.footprint_bytes,
                                     self.mean_bubbles, seed + 3,
                                     alpha=self.zipf_alpha,
                                     write_fraction=self.write_fraction),
            ]
            return synthetic.mixed_trace(children, self.mix_weights,
                                         seed + 4)
        raise ValueError(f"unknown pattern {self.pattern!r}")


#: The 22 workloads of the paper's evaluation, with qualitative
#: calibration (see module docstring).
PROFILES: Dict[str, WorkloadProfile] = {p.name: p for p in [
    # --- light (low RMPKC) ------------------------------------------
    WorkloadProfile("tpch6", "zipf", 16 * MB, 90.0, 0.05, zipf_alpha=1.5),
    WorkloadProfile("apache20", "zipf", 24 * MB, 80.0, 0.10, zipf_alpha=1.4),
    WorkloadProfile("hmmer", "zipf", 128 * 1024, 60.0, 0.10,
                    zipf_alpha=1.6),
    WorkloadProfile("tonto", "zipf", 12 * MB, 70.0, 0.05, zipf_alpha=1.5),
    WorkloadProfile("bzip2", "mix", 8 * MB, 60.0, 0.15,
                    mix_weights=(2.0, 1.0, 1.0)),
    WorkloadProfile("sjeng", "random", 12 * MB, 55.0, 0.05),
    WorkloadProfile("GemsFDTD", "stream", 32 * MB, 45.0, 0.20,
                    num_streams=3),
    WorkloadProfile("sphinx3", "mix", 12 * MB, 40.0, 0.05,
                    mix_weights=(2.0, 1.0, 1.0)),
    # --- medium ------------------------------------------------------
    WorkloadProfile("tpch2", "zipf", 24 * MB, 35.0, 0.05, zipf_alpha=1.35),
    WorkloadProfile("astar", "chase", 16 * MB, 35.0),
    WorkloadProfile("mcf", "random", 48 * MB, 18.0, 0.05),
    WorkloadProfile("milc", "stream", 32 * MB, 30.0, 0.15, num_streams=2,
                    stride_lines=2),
    WorkloadProfile("bwaves", "stream", 48 * MB, 25.0, 0.10,
                    num_streams=3, stride_lines=2),
    WorkloadProfile("cactusADM", "stream", 24 * MB, 28.0, 0.20,
                    num_streams=2, stride_lines=2),
    WorkloadProfile("omnetpp", "random", 32 * MB, 16.0, 0.10),
    WorkloadProfile("tpcc64", "zipf", 64 * MB, 22.0, 0.25, zipf_alpha=1.2),
    # --- heavy (high RMPKC) -----------------------------------------
    WorkloadProfile("lbm", "stream", 48 * MB, 14.0, 0.30, num_streams=3,
                    stride_lines=4),
    WorkloadProfile("leslie3d", "stream", 32 * MB, 14.0, 0.15,
                    num_streams=3, stride_lines=4),
    WorkloadProfile("libquantum", "stream", 32 * MB, 8.0, 0.05,
                    num_streams=2, stride_lines=16),
    WorkloadProfile("soplex", "mix", 32 * MB, 9.0, 0.10,
                    mix_weights=(2.0, 1.0, 1.0), stride_lines=4),
    WorkloadProfile("tpch17", "zipf", 32 * MB, 9.0, 0.10,
                    zipf_alpha=1.25),
    WorkloadProfile("STREAMcopy", "stream", 32 * MB, 6.0, 0.45,
                    num_streams=2, stride_lines=16),
]}

#: Names in the paper's Figure 4a order (used for report rows).
WORKLOAD_NAMES = tuple(PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(PROFILES)}") from None


def make_trace(name: str, org, seed: int = 1) -> Iterator[TraceRecord]:
    """Build the infinite trace for workload ``name``."""
    profile = get_profile(name)
    # Derive a stable per-workload seed so different workloads never
    # share RNG streams even with the same user seed.
    offset = sum(ord(c) for c in name) * 1009
    return profile.build(org, seed + offset)
