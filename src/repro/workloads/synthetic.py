"""Synthetic trace generators.

These replace the paper's Pin-collected SPEC CPU2006 / TPC / STREAM
traces (see DESIGN.md, substitution table).  Each generator is an
infinite iterator of :class:`~repro.cpu.trace.TraceRecord` and exposes
the three knobs the ChargeCache results are sensitive to:

* **memory intensity** - mean non-memory instructions ("bubbles")
  between accesses,
* **footprint** - how many distinct cache lines are touched (drives
  LLC hit rate and HCRAC reuse distance),
* **row-access structure** - streaming (row hits), multi-stream
  streaming (bank conflicts -> high RLTL), uniform random (low RLTL,
  high reuse distance), zipfian row reuse (high RLTL) and dependent
  pointer chasing (serialised misses).

Generators draw from a seeded ``numpy`` RNG in batches for speed and
are fully reproducible.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.cpu.trace import TraceRecord

#: Records generated per RNG batch.
_BATCH = 2048


def bounded_footprint_lines(org, footprint_bytes: int) -> int:
    """Clamp a byte footprint to the organization's capacity, in lines."""
    lines = max(1, footprint_bytes // org.line_bytes)
    return min(lines, org.total_lines)


def _bubble_batch(rng: np.random.Generator, mean_bubbles: float,
                  size: int) -> np.ndarray:
    """Geometric bubble counts with the requested mean (>= 0)."""
    if mean_bubbles <= 0:
        return np.zeros(size, dtype=np.int64)
    p = 1.0 / (mean_bubbles + 1.0)
    return rng.geometric(p, size=size).astype(np.int64) - 1


def _write_batch(rng: np.random.Generator, write_fraction: float,
                 size: int) -> np.ndarray:
    if write_fraction <= 0:
        return np.zeros(size, dtype=bool)
    return rng.random(size) < write_fraction


# ----------------------------------------------------------------------
# Streaming
# ----------------------------------------------------------------------

def stream_trace(org, footprint_bytes: int, mean_bubbles: float,
                 seed: int, num_streams: int = 2,
                 write_fraction: float = 0.0,
                 stride_lines: int = 1) -> Iterator[TraceRecord]:
    """Interleaved sequential streams.

    ``num_streams`` regions are walked round-robin.  Regions are offset
    by whole DRAM rows in the *same* banks, so concurrent streams
    conflict in the row buffer - the effect that gives streaming
    workloads their high RLTL in the paper (Section 3).  One stream
    yields pure row-hit behaviour.

    ``stride_lines`` > 1 models strided array sweeps (fewer column
    hits per row, hence more activations per access - the
    high-RMPKC streaming behaviour of libquantum/STREAM in Figure 7a).
    """
    if num_streams < 1:
        raise ValueError("num_streams must be >= 1")
    if stride_lines < 1:
        raise ValueError("stride_lines must be >= 1")
    return _stream_impl(org, footprint_bytes, mean_bubbles, seed,
                        num_streams, write_fraction, stride_lines)


def _stream_impl(org, footprint_bytes, mean_bubbles, seed, num_streams,
                 write_fraction, stride_lines):
    rng = np.random.default_rng(seed)
    total = bounded_footprint_lines(org, footprint_bytes)
    region = max(1, total // num_streams)
    # Offset regions by a whole-row stride so streams share banks.
    row_stride = org.encode(0, 0, 0, 1, 0) or 1
    bases = [(i * ((region // row_stride + 1) * row_stride))
             % org.total_lines for i in range(num_streams)]
    positions = [0] * num_streams
    stream = 0
    while True:
        bubbles = _bubble_batch(rng, mean_bubbles, _BATCH)
        writes = _write_batch(rng, write_fraction, _BATCH)
        for i in range(_BATCH):
            line = (bases[stream] + positions[stream]) % org.total_lines
            positions[stream] = (positions[stream] + stride_lines) % region
            stream = (stream + 1) % num_streams
            yield TraceRecord(int(bubbles[i]), line, bool(writes[i]))


# ----------------------------------------------------------------------
# Uniform random
# ----------------------------------------------------------------------

def random_trace(org, footprint_bytes: int, mean_bubbles: float,
                 seed: int, write_fraction: float = 0.0,
                 dependent: bool = False) -> Iterator[TraceRecord]:
    """Uniform random lines over the footprint.

    Low RLTL and high row-reuse distance: the pattern the paper calls
    out for mcf/omnetpp, where ChargeCache trails LL-DRAM because the
    HCRAC cannot retain rows long enough.
    """
    rng = np.random.default_rng(seed)
    total = bounded_footprint_lines(org, footprint_bytes)
    while True:
        lines = rng.integers(0, total, size=_BATCH)
        bubbles = _bubble_batch(rng, mean_bubbles, _BATCH)
        writes = _write_batch(rng, write_fraction, _BATCH)
        for i in range(_BATCH):
            yield TraceRecord(int(bubbles[i]), int(lines[i]),
                              bool(writes[i]), dependent)


def chase_trace(org, footprint_bytes: int, mean_bubbles: float,
                seed: int) -> Iterator[TraceRecord]:
    """Pointer chasing: every load depends on the previous one.

    Serialised misses (memory-level parallelism of one), modelling
    linked-data-structure traversals (astar, parts of mcf).
    """
    return random_trace(org, footprint_bytes, mean_bubbles, seed,
                        write_fraction=0.0, dependent=True)


# ----------------------------------------------------------------------
# Zipfian row reuse
# ----------------------------------------------------------------------

def zipf_trace(org, footprint_bytes: int, mean_bubbles: float,
               seed: int, alpha: float = 1.3,
               write_fraction: float = 0.0) -> Iterator[TraceRecord]:
    """Zipf-distributed *row* popularity with random columns.

    Hot rows are re-activated shortly after being closed (by competing
    accesses or write drains), producing the high RLTL of the
    database/web workloads (tpch*, tpcc64, apache20).
    """
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1 for a proper zipf")
    return _zipf_impl(org, footprint_bytes, mean_bubbles, seed, alpha,
                      write_fraction)


def _zipf_impl(org, footprint_bytes, mean_bubbles, seed, alpha,
               write_fraction):
    rng = np.random.default_rng(seed)
    total = bounded_footprint_lines(org, footprint_bytes)
    lines_per_row = org.columns * org.channels * org.ranks
    num_rows = max(2, total // max(1, lines_per_row))
    # Spread hot ranks over banks with a multiplicative hash.
    spread = 0x9E3779B1
    while True:
        ranks = rng.zipf(alpha, size=_BATCH)
        cols = rng.integers(0, org.columns, size=_BATCH)
        chans = rng.integers(0, org.channels, size=_BATCH)
        bubbles = _bubble_batch(rng, mean_bubbles, _BATCH)
        writes = _write_batch(rng, write_fraction, _BATCH)
        for i in range(_BATCH):
            row_id = (int(ranks[i]) * spread) % num_rows
            bank = row_id % org.banks
            row = (row_id // org.banks) % org.rows
            line = org.encode(int(chans[i]), row_id % org.ranks, bank, row,
                              int(cols[i]))
            yield TraceRecord(int(bubbles[i]), line, bool(writes[i]))


# ----------------------------------------------------------------------
# Mixtures
# ----------------------------------------------------------------------

def mixed_trace(children: Sequence[Iterator[TraceRecord]],
                weights: Sequence[float], seed: int) -> Iterator[TraceRecord]:
    """Probabilistic interleaving of sub-generators."""
    if len(children) != len(weights) or not children:
        raise ValueError("children and weights must match and be non-empty")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    probabilities = [w / total for w in weights]
    return _mixed_impl(list(children), probabilities, seed)


def _mixed_impl(children, probabilities, seed):
    rng = np.random.default_rng(seed)
    while True:
        picks = rng.choice(len(children), size=_BATCH, p=probabilities)
        for i in range(_BATCH):
            yield next(children[picks[i]])


def constant_trace(line: int, mean_bubbles: int = 10,
                   is_write: bool = False) -> Iterator[TraceRecord]:
    """Degenerate single-address trace, used by unit tests."""
    while True:
        yield TraceRecord(mean_bubbles, line, is_write)
