"""Workloads: synthetic trace generators, SPEC/TPC/STREAM-like
profiles and the paper's multiprogrammed 8-core mixes.
"""

from repro.workloads.synthetic import (
    stream_trace,
    random_trace,
    chase_trace,
    zipf_trace,
    mixed_trace,
    bounded_footprint_lines,
)
from repro.workloads.spec_like import (
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_profile,
    make_trace,
)
from repro.workloads.mixes import MIX_NAMES, mix_composition, make_mix_traces
from repro.workloads.ingest import (
    TraceFormatError,
    WorkloadFingerprint,
    fingerprint_file,
    fingerprint_records,
    fingerprint_workload,
    ingest_trace_file,
    trace_file_sha256,
)

__all__ = [
    "stream_trace",
    "random_trace",
    "chase_trace",
    "zipf_trace",
    "mixed_trace",
    "bounded_footprint_lines",
    "WORKLOAD_NAMES",
    "WorkloadProfile",
    "get_profile",
    "make_trace",
    "MIX_NAMES",
    "mix_composition",
    "make_mix_traces",
    "TraceFormatError",
    "WorkloadFingerprint",
    "fingerprint_file",
    "fingerprint_records",
    "fingerprint_workload",
    "ingest_trace_file",
    "trace_file_sha256",
]
