"""The 20 multiprogrammed 8-core workloads (paper Section 5).

"For multi-core evaluations, we use 20 multi-programmed workloads by
assigning a randomly-chosen application to each core."  The draw is
seeded so w1..w20 are stable across runs and machines.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.cpu.trace import TraceRecord
from repro.workloads.spec_like import WORKLOAD_NAMES, make_trace

#: Seed fixing the composition of the 20 mixes.
MIX_SEED = 2016  # the paper's publication year, for memorability

MIX_NAMES = tuple(f"w{i}" for i in range(1, 21))


def _compositions(num_cores: int = 8) -> Dict[str, List[str]]:
    rng = np.random.default_rng(MIX_SEED)
    names = list(WORKLOAD_NAMES)
    mixes = {}
    for mix in MIX_NAMES:
        picks = rng.integers(0, len(names), size=num_cores)
        mixes[mix] = [names[i] for i in picks]
    return mixes


_COMPOSITIONS = _compositions()


def mix_composition(mix: str) -> List[str]:
    """The 8 workload names assigned to the cores of ``mix``."""
    try:
        return list(_COMPOSITIONS[mix])
    except KeyError:
        raise KeyError(
            f"unknown mix {mix!r}; known: {MIX_NAMES}") from None


def make_mix_traces(mix: str, org, seed: int = 1
                    ) -> List[Iterator[TraceRecord]]:
    """Build the 8 per-core traces of ``mix``.

    Each core gets an independent RNG stream even when two cores run
    the same application.
    """
    traces = []
    for core_id, name in enumerate(mix_composition(mix)):
        traces.append(make_trace(name, org, seed=seed + 7919 * core_id))
    return traces


def all_compositions() -> Dict[str, List[str]]:
    """Mapping of every mix to its application list (for reports)."""
    return {mix: list(apps) for mix, apps in _COMPOSITIONS.items()}
