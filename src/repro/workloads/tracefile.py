"""Trace-file workloads and trace analysis utilities.

Bridges the synthetic generators and the file-based workflow the
paper's setup used (Pin traces replayed by Ramulator):

* :func:`generate_trace_file` - materialise N records of any named
  profile into a portable trace file.
* :func:`trace_file_workload` - an infinite, looped iterator over a
  trace file, directly usable as a :class:`System` core trace.
* :func:`analyze_trace` - quick profile of a record stream (footprint,
  write share, intensity, dependence), for sanity-checking external
  traces before simulation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.cpu.trace import (
    TraceRecord,
    looped,
    read_trace_file,
    write_trace_file,
)
from repro.workloads.spec_like import make_trace


def generate_trace_file(path: str, workload: str, org,
                        num_records: int, seed: int = 1) -> int:
    """Write ``num_records`` records of a named profile to ``path``."""
    if num_records < 1:
        raise ValueError("num_records must be >= 1")
    trace = make_trace(workload, org, seed=seed)
    return write_trace_file(path,
                            itertools.islice(trace, num_records))


def trace_file_workload(path: str) -> Iterator[TraceRecord]:
    """Endless core trace backed by a trace file (loops at EOF)."""
    records = read_trace_file(path)
    if not records:
        raise ValueError(f"trace file {path} contains no records")
    return looped(records)


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of a trace (see :func:`analyze_trace`)."""

    records: int
    instructions: int
    distinct_lines: int
    write_fraction: float
    dependent_fraction: float
    mean_bubbles: float

    @property
    def footprint_bytes(self) -> int:
        return self.distinct_lines * 64

    @property
    def accesses_per_kilo_instruction(self) -> float:
        if not self.instructions:
            return 0.0
        return self.records * 1000.0 / self.instructions


def analyze_trace(records: Iterable[TraceRecord],
                  limit: int = 1_000_000) -> TraceSummary:
    """Summarise up to ``limit`` records of a trace."""
    lines = set()
    writes = 0
    dependents = 0
    bubbles = 0
    count = 0
    for record in itertools.islice(records, limit):
        count += 1
        lines.add(record.line_address)
        bubbles += record.bubbles
        if record.is_write:
            writes += 1
        if record.dependent:
            dependents += 1
    if not count:
        raise ValueError("empty trace")
    return TraceSummary(
        records=count,
        instructions=bubbles + count,
        distinct_lines=len(lines),
        write_fraction=writes / count,
        dependent_fraction=dependents / count,
        mean_bubbles=bubbles / count,
    )


def summarize_file(path: str, limit: int = 1_000_000) -> TraceSummary:
    return analyze_trace(read_trace_file(path), limit=limit)


def records_head(path: str, n: int = 10) -> List[TraceRecord]:
    """First ``n`` records of a trace file (inspection helper)."""
    return read_trace_file(path)[:n]
