"""Checker framework core: findings, pragmas and parsed modules.

``repro lint`` (DESIGN.md section 10) guards invariants that no unit
test can enforce globally — cache-key determinism, the registry's
fork/replay contract, RunSpec key-material exhaustiveness and the
service layer's locking discipline.  This module holds the shared
machinery: a :class:`Finding` (one ``file:line:rule: message``
diagnostic), the per-line allowlist pragma grammar, and the
:class:`Module`/:class:`Project` views of the parsed sources that
every :class:`Checker` operates on.

Pragma grammar (justification is mandatory)::

    # repro: allow(<rule>) -- <reason>

A pragma suppresses findings of ``<rule>`` on its own line *only* when
it carries a reason; an unjustified, unknown-rule, malformed or unused
pragma is itself a finding, so allowances can neither be vague nor go
stale silently.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Tuple

#: Matches any comment claiming to be a repro pragma; the body is then
#: validated against :data:`ALLOW_RE` so typos are findings, not
#: silently-ignored comments.
PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")

#: The one well-formed pragma shape: ``allow(<rule>) -- <reason>``.
ALLOW_RE = re.compile(
    r"^allow\(\s*(?P<rule>[a-z][a-z0-9_\-]*)\s*\)"
    r"\s*(?:--\s*(?P<reason>\S.*))?$")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, formatted as ``file:line:rule: message``."""

    file: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.file}:{self.line}:{self.rule}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {"file": self.file, "line": self.line,
                "rule": self.rule, "message": self.message}


@dataclasses.dataclass
class Pragma:
    """One ``# repro:`` comment found in a module's token stream.

    ``rule``/``reason`` are None when the body does not parse as an
    ``allow(...)`` clause; ``used`` is set by the engine when the
    pragma actually suppresses a finding.
    """

    file: str
    line: int
    body: str
    rule: Optional[str]
    reason: Optional[str]
    used: bool = False

    @property
    def well_formed(self) -> bool:
        return self.rule is not None

    @property
    def justified(self) -> bool:
        return self.reason is not None and bool(self.reason.strip())


def scan_pragmas(source: str, file: str) -> List[Pragma]:
    """Every ``# repro:`` comment in ``source``, via the tokenizer.

    Tokenizing (rather than regexing raw lines) means pragma-shaped
    text inside string literals is never misread as a pragma.
    """
    pragmas: List[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = PRAGMA_RE.search(tok.string)
            if not match:
                continue
            body = match.group("body").strip()
            allow = ALLOW_RE.match(body)
            pragmas.append(Pragma(
                file=file, line=tok.start[0], body=body,
                rule=allow.group("rule") if allow else None,
                reason=allow.group("reason") if allow else None))
    except tokenize.TokenError:
        pass  # the parse-error finding already covers this module
    return pragmas


@dataclasses.dataclass
class Module:
    """One parsed source file, with parent links on every AST node."""

    path: str
    relpath: str
    source: str
    tree: ast.Module

    def __post_init__(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._repro_parent = node  # type: ignore[attr-defined]

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(self.relpath.replace("\\", "/").split("/"))


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_repro_parent", None)


def ancestors(node: ast.AST) -> Iterable[ast.AST]:
    """The node's parents, innermost first."""
    cursor = parent(node)
    while cursor is not None:
        yield cursor
        cursor = parent(cursor)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully-dotted origin, for import resolution.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime
    import datetime`` maps ``datetime -> datetime.datetime``.  Only
    module-level and function-level imports are walked (the whole
    tree), which is all resolution a repo-local linter needs.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports stay repo-local anyway
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def resolve(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """The fully-qualified dotted name ``node`` refers to, or None."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    origin = imports.get(root, root)
    return f"{origin}.{rest}" if rest else origin


class Project:
    """Every linted module plus a project-wide class index.

    The index maps a class name to its definitions (cross-module
    references in this repo are unambiguous by name), which is what
    lets the registry-contract checker resolve a factory's mechanism
    class or a ``params=`` dataclass defined in another file.
    """

    def __init__(self, modules: List[Module]):
        self.modules = list(modules)
        self._classes: Optional[
            Dict[str, List[Tuple[Module, ast.ClassDef]]]] = None

    def classes(self) -> Dict[str, List[Tuple[Module, ast.ClassDef]]]:
        if self._classes is None:
            index: Dict[str, List[Tuple[Module, ast.ClassDef]]] = {}
            for module in self.modules:
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.ClassDef):
                        index.setdefault(node.name, []).append(
                            (module, node))
            self._classes = index
        return self._classes

    def find_class(self, name: str) -> Optional[ast.ClassDef]:
        entries = self.classes().get(name)
        return entries[0][1] if entries else None


class Checker:
    """Base class: one named rule over the whole project.

    Subclasses set :attr:`rule`/:attr:`description` and implement
    :meth:`check`, yielding :class:`Finding`s.  Checkers see the whole
    :class:`Project` so cross-module invariants (a params dataclass
    defined far from its ``@register_mechanism`` site) stay checkable.
    """

    rule: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST,
                message: str) -> Finding:
        return Finding(file=module.relpath,
                       line=getattr(node, "lineno", 1),
                       rule=self.rule, message=message)
