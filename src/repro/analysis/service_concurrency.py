"""Rule ``service-concurrency``: the service layer's locking discipline.

The results service (DESIGN.md section 9) keeps many processes honest
with exactly three conventions, all invisible to unit tests that run
one process at a time:

* **SQLite writes happen under the FileLock.**  Every mutation either
  sits lexically inside ``with self.lock:`` or lives in a nested
  transaction function handed to ``_write(...)``, which takes the
  lock.  A write outside both patterns races the claim/record
  compound invariants.
* **Renames are durable.**  ``os.rename``/``os.replace``/
  ``Path.rename`` publishes a file atomically only if the bytes were
  fsynced first; a rename with no earlier fsync in the same function
  can publish an empty file after a crash.
* **Connections are not shared across threads.**  Stashing a
  ``sqlite3.connect(...)`` handle on ``self`` (or passing
  ``check_same_thread=False``) invites cross-thread use of a
  connection that SQLite only guarantees within one thread; the
  sanctioned idiom is a fresh connection per operation.

The rule applies to modules under ``service/`` (path-scoped, so test
fixtures placed under a ``service/`` directory exercise it too), plus
the harness modules that share the same multi-process publication
discipline regardless of directory: the pluggable store backends and
the sweep journal (:data:`SCOPED_BASENAMES`) write files that other
processes read concurrently, so their renames and writes are held to
the service rules.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    ancestors,
    dotted_name,
    enclosing_function,
    import_map,
    resolve,
)

EXECUTE_METHODS = ("execute", "executemany", "executescript")

#: Modules outside ``service/`` that still publish files across
#: process boundaries and therefore carry the same discipline.
SCOPED_BASENAMES = ("store.py", "journal.py")
WRITE_VERBS = ("INSERT", "UPDATE", "DELETE", "REPLACE", "CREATE",
               "DROP", "ALTER", "VACUUM")


def _sql_candidates(arg: ast.AST, func: Optional[ast.AST],
                    module: Module) -> Optional[List[str]]:
    """Possible SQL texts for an execute() argument, or None."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return [arg.value]
    if isinstance(arg, ast.JoinedStr):
        # The verb is always in the leading literal piece of an
        # f-string (interpolations carry values, not verbs).
        for piece in arg.values:
            if isinstance(piece, ast.Constant) \
                    and isinstance(piece.value, str):
                return [piece.value]
        return None
    if isinstance(arg, ast.Name):
        return _resolve_name(arg.id, func, module)
    return None


def _resolve_name(name: str, func: Optional[ast.AST],
                  module: Module) -> Optional[List[str]]:
    scopes: List[ast.AST] = []
    if func is not None:
        scopes.append(func)
    scopes.append(module.tree)
    for scope in scopes:
        body = scope.body if hasattr(scope, "body") else []
        for stmt in body:
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and stmt.targets[0].id == name \
                    and isinstance(stmt.value, ast.Constant) \
                    and isinstance(stmt.value.value, str):
                return [stmt.value.value]
        # `for sql in _INDEX_SQL:` over a module-level string tuple.
        for stmt in ast.walk(scope):
            if isinstance(stmt, ast.For) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.target.id == name \
                    and isinstance(stmt.iter, ast.Name):
                return _resolve_name(stmt.iter.id, None, module)
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and stmt.targets[0].id == name \
                    and isinstance(stmt.value, (ast.Tuple, ast.List)):
                texts = [elt.value for elt in stmt.value.elts
                         if isinstance(elt, ast.Constant)
                         and isinstance(elt.value, str)]
                if texts:
                    return texts
    return None


def _is_write_sql(sql: str) -> bool:
    head = sql.lstrip().upper()
    if head.startswith("PRAGMA"):
        return "=" in head  # PRAGMA x = y assigns; bare PRAGMA reads
    return any(head.startswith(verb) for verb in WRITE_VERBS)


class ServiceConcurrencyChecker(Checker):
    rule = "service-concurrency"
    description = ("SQLite writes under FileLock, fsync before "
                   "rename, no cross-thread connections")

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            scoped = ("service" in module.parts[:-1]
                      or module.parts[-1] in SCOPED_BASENAMES)
            if not scoped:
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterable[Finding]:
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, imports)
            elif isinstance(node, ast.Assign):
                yield from self._check_assign(module, node, imports)

    # -- SQLite writes under the lock ----------------------------------

    def _check_call(self, module: Module, call: ast.Call,
                    imports) -> Iterable[Finding]:
        func_name = dotted_name(call.func)
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in EXECUTE_METHODS:
            yield from self._check_execute(module, call)
        resolved = resolve(call.func, imports)
        # `.replace` alone is too ambiguous (str.replace); only the
        # resolved os functions and Path-style `.rename` count.
        if resolved in ("os.rename", "os.replace") \
                or (isinstance(call.func, ast.Attribute)
                    and call.func.attr == "rename"):
            yield from self._check_rename(module, call, resolved
                                          or func_name)
        if resolved == "sqlite3.connect":
            for kw in call.keywords:
                if kw.arg == "check_same_thread" \
                        and isinstance(kw.value, ast.Constant) \
                        and kw.value.value is False:
                    yield self.finding(
                        module, call,
                        "sqlite3.connect(check_same_thread=False) "
                        "invites sharing one connection across "
                        "threads; open a fresh connection per "
                        "operation instead")

    def _check_execute(self, module: Module, call: ast.Call
                       ) -> Iterable[Finding]:
        func = enclosing_function(call)
        if call.func.attr == "executescript":
            is_write = True  # scripts exist to run DDL/DML batches
        else:
            candidates = None
            if call.args:
                candidates = _sql_candidates(call.args[0], func,
                                             module)
            if candidates is None:
                is_write = True  # unresolvable SQL: assume the worst
            else:
                is_write = any(_is_write_sql(sql)
                               for sql in candidates)
        if not is_write:
            return
        if self._under_lock(call) or self._in_write_txn(func, module):
            return
        yield self.finding(
            module, call,
            "SQLite write outside a FileLock; wrap it in 'with "
            "self.lock:' or move it into a transaction function "
            "passed to _write(...)")

    @staticmethod
    def _under_lock(node: ast.AST) -> bool:
        for anc in ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    dotted = dotted_name(item.context_expr)
                    if dotted is None \
                            and isinstance(item.context_expr,
                                           ast.Call):
                        dotted = dotted_name(
                            item.context_expr.func)
                    if dotted and "lock" in dotted.lower():
                        return True
        return False

    @staticmethod
    def _in_write_txn(func: Optional[ast.AST],
                      module: Module) -> bool:
        """True when ``func`` is a nested txn handed to _write()."""
        if func is None or enclosing_function(func) is None:
            return False
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or not dotted.endswith("_write"):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name) \
                        and arg.id == func.name:
                    return True
        return False

    # -- fsync before rename -------------------------------------------

    def _check_rename(self, module: Module, call: ast.Call,
                      name: Optional[str]) -> Iterable[Finding]:
        func = enclosing_function(call)
        if func is None:
            scope: ast.AST = module.tree
        else:
            scope = func
        for node in ast.walk(scope):
            if isinstance(node, ast.Call) \
                    and getattr(node, "lineno", 0) < call.lineno:
                dotted = dotted_name(node.func) or ""
                if "fsync" in dotted:
                    return
        yield self.finding(
            module, call,
            f"{name or 'rename'}() without a preceding fsync in the "
            f"same function; an unsynced rename can publish an empty "
            f"file after a crash")

    # -- connection sharing --------------------------------------------

    def _check_assign(self, module: Module, node: ast.Assign,
                      imports) -> Iterable[Finding]:
        if not (isinstance(node.value, ast.Call)
                and resolve(node.value.func, imports)
                == "sqlite3.connect"):
            return
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                yield self.finding(
                    module, node,
                    f"sqlite3 connection stored on "
                    f"'{dotted_name(target)}' outlives the operation "
                    f"and may cross threads; open a fresh connection "
                    f"per operation instead")
