"""Lint orchestration: discover files, run checkers, apply pragmas.

The engine owns the rule registry (:data:`RULES`), walks the requested
paths, parses every ``.py`` file once into a shared
:class:`~repro.analysis.base.Project`, runs each checker over it, and
then reconciles findings against ``# repro: allow(...)`` pragmas:

* a finding is suppressed only by a *valid* pragma — same file, same
  line, same rule, with a written justification after ``--``;
* an invalid pragma (malformed body, unknown rule, missing reason)
  never suppresses anything and is itself a ``pragma`` finding;
* a valid pragma that suppresses nothing is an *unused* ``pragma``
  finding, so allowances cannot outlive the code they excused.

Files that fail to parse yield a single ``parse`` finding and are
skipped by the checkers.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, Iterable, List, Tuple

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Pragma,
    Project,
    scan_pragmas,
)
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.registry_contract import RegistryContractChecker
from repro.analysis.service_concurrency import ServiceConcurrencyChecker
from repro.analysis.spec_keys import SpecKeysChecker

#: Rule name -> checker, in reporting order.  Adding a checker here is
#: the single registration point (see DESIGN.md section 10).
RULES: Tuple[Checker, ...] = (
    DeterminismChecker(),
    RegistryContractChecker(),
    SpecKeysChecker(),
    ServiceConcurrencyChecker(),
)

#: Rules a pragma may name: every checker rule (suppressible).  The
#: synthetic ``parse``/``pragma`` rules are not suppressible — a file
#: that cannot be tokenized cannot carry a trustworthy pragma either.
KNOWN_RULES = tuple(checker.rule for checker in RULES)

SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Every ``.py`` file under ``paths``, sorted for stable output."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in SKIP_DIRS
                                 and not d.startswith("."))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    files.append(os.path.join(dirpath, filename))
    return sorted(dict.fromkeys(files))


def _relpath(path: str) -> str:
    rel = os.path.relpath(path)
    return path if rel.startswith("..") else rel


@dataclasses.dataclass
class LintReport:
    """Everything one lint run produced, ready for a reporter."""

    findings: List[Finding]
    files_checked: int
    pragmas_seen: int

    @property
    def ok(self) -> bool:
        return not self.findings


def load_modules(files: Iterable[str]
                 ) -> Tuple[List[Module], List[Pragma],
                            List[Finding]]:
    modules: List[Module] = []
    pragmas: List[Pragma] = []
    findings: List[Finding] = []
    for path in files:
        relpath = _relpath(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(
                file=relpath, line=1, rule="parse",
                message=f"cannot read file: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(Finding(
                file=relpath, line=exc.lineno or 1, rule="parse",
                message=f"syntax error: {exc.msg}"))
            continue
        modules.append(Module(path=path, relpath=relpath,
                              source=source, tree=tree))
        pragmas.extend(scan_pragmas(source, relpath))
    return modules, pragmas, findings


def _apply_pragmas(raw: List[Finding], pragmas: List[Pragma]
                   ) -> List[Finding]:
    """Suppress pragma-excused findings; flag bad/unused pragmas."""
    by_site: Dict[Tuple[str, int, str], Pragma] = {}
    for pragma in pragmas:
        if pragma.well_formed and pragma.justified \
                and pragma.rule in KNOWN_RULES:
            by_site[(pragma.file, pragma.line, pragma.rule)] = pragma

    kept: List[Finding] = []
    for finding in raw:
        pragma = by_site.get(
            (finding.file, finding.line, finding.rule))
        if pragma is not None:
            pragma.used = True
        else:
            kept.append(finding)

    for pragma in pragmas:
        if not pragma.well_formed:
            kept.append(Finding(
                file=pragma.file, line=pragma.line, rule="pragma",
                message=f"malformed pragma '# repro: {pragma.body}'; "
                        f"expected 'allow(<rule>) -- <reason>'"))
        elif pragma.rule not in KNOWN_RULES:
            kept.append(Finding(
                file=pragma.file, line=pragma.line, rule="pragma",
                message=f"unknown rule '{pragma.rule}' in pragma; "
                        f"known rules: {', '.join(KNOWN_RULES)}"))
        elif not pragma.justified:
            kept.append(Finding(
                file=pragma.file, line=pragma.line, rule="pragma",
                message=f"pragma allow({pragma.rule}) has no "
                        f"justification; append '-- <reason>' "
                        f"explaining why this site is exempt"))
        elif not pragma.used:
            kept.append(Finding(
                file=pragma.file, line=pragma.line, rule="pragma",
                message=f"unused pragma allow({pragma.rule}); no "
                        f"finding of that rule on this line -- "
                        f"remove the stale allowance"))
    return kept


def run_lint(paths: Iterable[str]) -> LintReport:
    """Lint ``paths`` (files or directories) and return the report."""
    files = iter_python_files(paths)
    modules, pragmas, findings = load_modules(files)
    project = Project(modules)
    raw: List[Finding] = []
    for checker in RULES:
        raw.extend(checker.check(project))
    findings.extend(_apply_pragmas(raw, pragmas))
    return LintReport(findings=sorted(set(findings)),
                      files_checked=len(files),
                      pragmas_seen=len(pragmas))
