"""Reporters: render a :class:`LintReport` as text or JSON.

The text form is the compiler-style ``file:line:rule: message`` lines
CI logs and editors understand; the JSON form is the machine-readable
artifact the ``static-analysis`` CI job uploads so a failing run's
findings can be inspected without re-running the linter.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.analysis.engine import LintReport

#: Bump when the JSON report shape changes.
REPORT_SCHEMA = 1


def render_text(report: LintReport) -> str:
    lines = [finding.format() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"repro lint: {len(report.findings)} {noun} in "
        f"{report.files_checked} files "
        f"({report.pragmas_seen} pragmas)")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "pragmas_seen": report.pragmas_seen,
        "findings": [finding.to_json()
                     for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
