"""Rule ``determinism``: no entropy sources in fingerprinted code.

The content-addressed run cache (DESIGN.md section 4) assumes every
module under the code fingerprint (:func:`repro.harness.cache.
code_fingerprint` — all of ``src/repro``) computes results as a pure
function of (spec, sources).  A clock read, an unseeded RNG or a
hash-order-dependent set iteration anywhere on a result path silently
poisons content-addressed keys: two runs of the same key disagree, and
the parity/byte-identity suites can only catch the instances they
happen to execute.

Flagged:

* references to wall-clock/entropy sources — ``time.time``,
  ``time.time_ns``, ``os.urandom``, ``datetime.datetime.now`` /
  ``utcnow`` / ``today`` (references, not just calls, so
  ``field(default_factory=time.time)`` is caught too);
* the process-global ``random`` module functions (``random.random``,
  ``random.randint``, ...) — a ``random.Random(seed)`` instance is the
  sanctioned spelling — and ``numpy.random`` convenience functions /
  zero-argument (unseeded) generator constructors;
* direct iteration over a set (``for x in {...}``, comprehensions,
  ``list(set(...))``): string hashing is randomized per process, so
  the order is nondeterministic — ``sorted(...)`` first.

Legitimate sites (operational timestamps that never reach a result)
carry ``# repro: allow(determinism) -- <reason>``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    import_map,
    parent,
    resolve,
)

#: Fully-resolved names that read wall clocks or OS entropy.
ENTROPY_SOURCES = frozenset({
    "time.time", "time.time_ns", "os.urandom",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Seedable constructors: fine when called with an explicit seed
#: argument, flagged when called bare.
SEEDED_CONSTRUCTORS = frozenset({
    "random.Random", "numpy.random.default_rng",
    "numpy.random.Generator", "numpy.random.RandomState",
    "numpy.random.SeedSequence",
})

#: ``random`` module attributes that are not the global-RNG trap.
RANDOM_EXEMPT = frozenset({"random.Random", "random.seed"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismChecker(Checker):
    rule = "determinism"
    description = ("entropy sources and hash-order dependence in "
                   "fingerprint-covered modules")

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    # -- entropy / RNG -------------------------------------------------

    def _check_module(self, module: Module) -> Iterable[Finding]:
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Name, ast.Attribute)):
                yield from self._check_reference(module, node, imports)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(module, node.iter,
                                                 "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iteration(module, gen.iter,
                                                     "comprehension")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in ("list", "tuple") \
                    and len(node.args) == 1 \
                    and _is_set_expr(node.args[0]):
                yield self.finding(
                    module, node,
                    f"{node.func.id}() of a set depends on hash order, "
                    f"which is randomized per process; sort it with "
                    f"sorted(...) instead")

    def _check_reference(self, module: Module, node: ast.AST,
                         imports: Dict[str, str]
                         ) -> Iterable[Finding]:
        # Only the *maximal* dotted chain is checked, so time.time()
        # yields one finding on the full chain, not one per segment.
        if isinstance(parent(node), ast.Attribute):
            return
        name = resolve(node, imports)
        if name is None:
            return
        if name in ENTROPY_SOURCES:
            yield self.finding(
                module, node,
                f"{name} is nondeterministic; fingerprint-covered "
                f"modules must compute results purely from "
                f"(spec, sources)")
            return
        if name in SEEDED_CONSTRUCTORS:
            call = self._call_of(node)
            if call is not None and not call.args \
                    and not call.keywords:
                yield self.finding(
                    module, node,
                    f"{name}() without an explicit seed is "
                    f"nondeterministic; pass a seed derived from the "
                    f"spec")
            return
        if name.startswith("random.") and name not in RANDOM_EXEMPT:
            yield self.finding(
                module, node,
                f"{name} uses the process-global unseeded RNG; use a "
                f"random.Random(seed) instance derived from the spec")
        elif name.startswith("numpy.random.") \
                and name not in SEEDED_CONSTRUCTORS:
            yield self.finding(
                module, node,
                f"{name} uses numpy's global RNG; use "
                f"numpy.random.default_rng(seed) derived from the "
                f"spec")

    @staticmethod
    def _call_of(node: ast.AST) -> Optional[ast.Call]:
        """The Call whose func is ``node``, if that is its role."""
        up = parent(node)
        if isinstance(up, ast.Call) and up.func is node:
            return up
        return None

    # -- set iteration -------------------------------------------------

    def _check_iteration(self, module: Module, iter_expr: ast.AST,
                         context: str) -> Iterable[Finding]:
        if _is_set_expr(iter_expr):
            yield self.finding(
                module, iter_expr,
                f"{context} iterates a set, whose order is randomized "
                f"per process (PYTHONHASHSEED); iterate "
                f"sorted(...) instead")
