"""AST-based invariant linter for the repro tree (``repro lint``).

Four rules guard what unit tests cannot check globally: cache-key
determinism of every fingerprinted module, the mechanism registry's
fork/replay contract, RunSpec key-material exhaustiveness, and the
service layer's locking discipline.  See DESIGN.md section 10.
"""

from repro.analysis.base import Checker, Finding, Module, Project
from repro.analysis.engine import (
    KNOWN_RULES,
    RULES,
    LintReport,
    run_lint,
)
from repro.analysis.report import render_json, render_text

__all__ = [
    "Checker",
    "Finding",
    "KNOWN_RULES",
    "LintReport",
    "Module",
    "Project",
    "RULES",
    "render_json",
    "render_text",
    "run_lint",
]
