"""Rule ``registry-contract``: registered mechanisms honor fork/replay.

Batched replay (DESIGN.md section 8) forks every mechanism's state at
divergence points via ``fork_state()``/``fork_for_replay()``.  The
``LatencyMechanism`` base provides a generic ``fork_state`` that
re-constructs ``type(self)(self.timing)`` — correct only for classes
whose ``__init__`` takes nothing beyond ``timing``.  A mechanism with
extra constructor state that inherits the generic fork silently drops
that state on every replay, which is exactly the bug class this rule
pins down statically:

* every ``@register_mechanism`` factory/class must resolve to a
  mechanism class, and that class must either define its own
  ``fork_state``/``fork_for_replay`` or opt out with
  ``supports_decision_replay = False`` whenever its ``__init__``
  carries state the generic fork cannot rebuild;
* the ``params=`` dataclass named at the registration site must define
  ``validate()`` — the registry calls it on every parse, so a missing
  method is a latent AttributeError on the first bad config.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    import_map,
    resolve,
)

FORK_METHODS = ("fork_state", "fork_for_replay")


def _registration_calls(module: Module) -> Iterable[ast.AST]:
    """(decorated def/class, decorator Call) pairs in ``module``."""
    imports = import_map(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        for deco in node.decorator_list:
            call = deco if isinstance(deco, ast.Call) else None
            target = call.func if call else deco
            name = resolve(target, imports)
            if name is None:
                continue
            if name.split(".")[-1] == "register_mechanism":
                yield node, call


def _own_methods(cls: ast.ClassDef) -> Set[str]:
    return {stmt.name for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef))}


def _opts_out(cls: ast.ClassDef) -> bool:
    """True when the class body sets supports_decision_replay = False."""
    for stmt in cls.body:
        value = None
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if isinstance(target, ast.Name) \
                and target.id == "supports_decision_replay" \
                and isinstance(value, ast.Constant) \
                and value.value is False:
            return True
    return False


def _init_param_count(cls: ast.ClassDef) -> Optional[int]:
    """Positional-parameter count of the class's own ``__init__``."""
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) \
                and stmt.name == "__init__":
            return len(stmt.args.args) + len(stmt.args.posonlyargs)
    return None


class RegistryContractChecker(Checker):
    rule = "registry-contract"
    description = ("@register_mechanism classes must support "
                   "fork/replay and validate() their params")

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node, call in _registration_calls(module):
                yield from self._check_site(project, module, node, call)

    def _check_site(self, project: Project, module: Module,
                    node: ast.AST, call: Optional[ast.Call]
                    ) -> Iterable[Finding]:
        mech = self._mechanism_class(project, node)
        if mech is None:
            yield self.finding(
                module, node,
                f"cannot resolve the mechanism class built by "
                f"'{node.name}'; annotate the factory's return type "
                f"with the mechanism class so the fork/replay "
                f"contract is checkable")
        else:
            yield from self._check_fork_contract(project, module,
                                                 node, mech)
        if call is not None:
            yield from self._check_params(project, module, node, call)

    # -- mechanism-class resolution ------------------------------------

    def _mechanism_class(self, project: Project,
                         node: ast.AST) -> Optional[ast.ClassDef]:
        if isinstance(node, ast.ClassDef):
            return node
        annotation = node.returns
        name: Optional[str] = None
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            name = annotation.value.split(".")[-1]
        elif isinstance(annotation, (ast.Name, ast.Attribute)):
            dotted = ast.unparse(annotation)
            name = dotted.split(".")[-1]
        if name is None:
            # Fall back to `return SomeClass(...)` in the factory body.
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) \
                        and isinstance(stmt.value, ast.Call) \
                        and isinstance(stmt.value.func, ast.Name):
                    name = stmt.value.func.id
                    break
        if name is None:
            return None
        return project.find_class(name)

    # -- fork/replay protocol ------------------------------------------

    def _check_fork_contract(self, project: Project, module: Module,
                             node: ast.AST, mech: ast.ClassDef
                             ) -> Iterable[Finding]:
        if _opts_out(mech):
            return
        own = _own_methods(mech)
        own_forks = [m for m in FORK_METHODS if m in own]
        init_params = _init_param_count(mech)
        if init_params is not None and init_params > 2 \
                and not own_forks:
            # __init__(self, timing, more...) + inherited generic fork
            # == dropped constructor state on every replay.
            yield self.finding(
                module, node,
                f"mechanism class '{mech.name}' has an __init__ with "
                f"extra constructor state but defines neither "
                f"{FORK_METHODS[0]} nor {FORK_METHODS[1]}; the "
                f"inherited generic fork_state would drop that state "
                f"-- implement the fork methods or set "
                f"supports_decision_replay = False")
            return
        if own_forks:
            return
        if self._inherits_forks(project, mech, set()):
            return
        yield self.finding(
            module, node,
            f"mechanism class '{mech.name}' defines neither "
            f"{FORK_METHODS[0]} nor {FORK_METHODS[1]} and no "
            f"resolvable base provides them; implement them or set "
            f"supports_decision_replay = False")

    def _inherits_forks(self, project: Project, cls: ast.ClassDef,
                        seen: Set[str]) -> bool:
        for base in cls.bases:
            name = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name is None or name in seen:
                continue
            seen.add(name)
            parent_cls = project.find_class(name)
            if parent_cls is None:
                continue
            if any(m in _own_methods(parent_cls)
                   for m in FORK_METHODS):
                return True
            if self._inherits_forks(project, parent_cls, seen):
                return True
        return False

    # -- params dataclass ----------------------------------------------

    def _check_params(self, project: Project, module: Module,
                      node: ast.AST, call: ast.Call
                      ) -> Iterable[Finding]:
        params_arg = None
        for kw in call.keywords:
            if kw.arg == "params":
                params_arg = kw.value
        if params_arg is None \
                or (isinstance(params_arg, ast.Constant)
                    and params_arg.value is None):
            return
        name = None
        if isinstance(params_arg, ast.Name):
            name = params_arg.id
        elif isinstance(params_arg, ast.Attribute):
            name = params_arg.attr
        if name is None:
            return
        params_cls = project.find_class(name)
        if params_cls is None:
            yield self.finding(
                module, node,
                f"params class '{name}' for '{node.name}' is not "
                f"defined in the linted tree, so its validate() "
                f"contract cannot be checked")
            return
        if self._has_validate(project, params_cls, set()):
            return
        yield self.finding(
            module, node,
            f"params class '{params_cls.name}' does not define "
            f"validate(); the registry calls params.validate() on "
            f"every parse")

    def _has_validate(self, project: Project, cls: ast.ClassDef,
                      seen: Set[str]) -> bool:
        if "validate" in _own_methods(cls):
            return True
        for base in cls.bases:
            name = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name is None or name in seen:
                continue
            seen.add(name)
            parent_cls = project.find_class(name)
            if parent_cls is not None \
                    and self._has_validate(project, parent_cls, seen):
                return True
        return False
