"""Rule ``spec-keys``: every RunSpec field is classified key material.

Cache keys are ``sha256(schema, code fingerprint, key_payload)``
(DESIGN.md section 4).  ``key_payload()`` iterates ``fields(self)``,
so a *new* RunSpec field flows into keys automatically — unless
someone adds a skip branch, or relies on a default that two different
semantic configurations share.  The ``trace_path`` precedent shows the
other direction: some fields are genuinely location-only (the runner
re-hashes the trace bytes into ``trace_sha256``) and must be excluded
*deliberately*.

The rule therefore requires the spec module to carry an explicit,
exhaustive classification:

* a ``LOCATION_ONLY`` set naming fields excluded from key material;
* a ``KEY_MATERIAL`` tuple naming every field that is key material;
* the two partition the dataclass's fields exactly — an unclassified,
  doubly-classified or stale name is a finding, so adding a field
  without deciding its cache-key role fails CI;
* any ``if f.name == ...: continue`` guard inside ``key_payload``
  must only skip names that ``LOCATION_ONLY`` declares.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.base import Checker, Finding, Module, Project

SPEC_CLASS = "RunSpec"


def _string_elements(node: ast.AST) -> Optional[List[str]]:
    """The literal strings in a set/tuple/list/frozenset(...) display."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set", "tuple") \
            and len(node.args) == 1:
        node = node.args[0]
    if not isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return None
    values = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)):
            return None
        values.append(elt.value)
    return values


def _module_const(module: Module, name: str
                  ) -> Optional[Tuple[ast.AST, List[str]]]:
    for stmt in module.tree.body:
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id == name:
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == name:
            value = stmt.value
        if value is not None:
            elements = _string_elements(value)
            if elements is not None:
                return stmt, elements
    return None


def _dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, ast.AST]]:
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append((stmt.target.id, stmt))
    return fields


class SpecKeysChecker(Checker):
    rule = "spec-keys"
    description = ("RunSpec fields must be exhaustively classified as "
                   "KEY_MATERIAL or LOCATION_ONLY")

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) \
                        and node.name == SPEC_CLASS:
                    yield from self._check_spec(module, node)

    def _check_spec(self, module: Module, cls: ast.ClassDef
                    ) -> Iterable[Finding]:
        fields = _dataclass_fields(cls)
        field_names = {name for name, _ in fields}

        location = _module_const(module, "LOCATION_ONLY")
        material = _module_const(module, "KEY_MATERIAL")
        if location is None:
            yield self.finding(
                module, cls,
                f"module defining {SPEC_CLASS} must declare a "
                f"LOCATION_ONLY set of field-name literals naming the "
                f"fields excluded from cache-key material")
        if material is None:
            yield self.finding(
                module, cls,
                f"module defining {SPEC_CLASS} must declare a "
                f"KEY_MATERIAL tuple of field-name literals naming "
                f"every cache-key field")
        if location is None or material is None:
            return

        loc_node, loc_names = location
        mat_node, mat_names = material

        for name in sorted(set(loc_names) & set(mat_names)):
            yield self.finding(
                module, loc_node,
                f"field '{name}' appears in both LOCATION_ONLY and "
                f"KEY_MATERIAL; a field has exactly one cache-key "
                f"role")
        for name in sorted(set(loc_names) - field_names):
            yield self.finding(
                module, loc_node,
                f"LOCATION_ONLY names '{name}', which is not a field "
                f"of {SPEC_CLASS}; remove the stale entry")
        for name in sorted(set(mat_names) - field_names):
            yield self.finding(
                module, mat_node,
                f"KEY_MATERIAL names '{name}', which is not a field "
                f"of {SPEC_CLASS}; remove the stale entry")
        for name in mat_names:
            if mat_names.count(name) > 1:
                yield self.finding(
                    module, mat_node,
                    f"KEY_MATERIAL lists '{name}' more than once")
                break

        classified = set(loc_names) | set(mat_names)
        for name, stmt in fields:
            if name not in classified:
                yield self.finding(
                    module, stmt,
                    f"{SPEC_CLASS} field '{name}' is classified "
                    f"neither KEY_MATERIAL nor LOCATION_ONLY; decide "
                    f"whether it affects cache keys and add it to "
                    f"exactly one set")

        yield from self._check_key_payload(module, cls,
                                           set(loc_names))

    def _check_key_payload(self, module: Module, cls: ast.ClassDef,
                           location_only: Set[str]
                           ) -> Iterable[Finding]:
        """Skip branches in key_payload may only drop LOCATION_ONLY."""
        payload = None
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef) \
                    and stmt.name == "key_payload":
                payload = stmt
        if payload is None:
            yield self.finding(
                module, cls,
                f"{SPEC_CLASS} does not define key_payload(); the "
                f"cache cannot derive keys without it")
            return
        for node in ast.walk(payload):
            if not isinstance(node, ast.If):
                continue
            has_skip = any(isinstance(sub, ast.Continue)
                           for sub in ast.walk(node))
            if not has_skip:
                continue
            for name in self._compared_literals(node.test):
                if name not in location_only:
                    yield self.finding(
                        module, node,
                        f"key_payload() skips field '{name}' which is "
                        f"not declared LOCATION_ONLY; undeclared "
                        f"skips silently drop key material")

    @staticmethod
    def _compared_literals(test: ast.AST) -> List[str]:
        names = []
        for node in ast.walk(test):
            if isinstance(node, ast.Compare):
                for comp in [node.left] + list(node.comparators):
                    if isinstance(comp, ast.Constant) \
                            and isinstance(comp.value, str):
                        names.append(comp.value)
                    else:
                        elements = _string_elements(comp)
                        if elements:
                            names.extend(elements)
        return names
