"""``repro lint`` / ``python -m repro.analysis`` entry point.

Exit codes: 0 clean, 1 findings, 2 usage error.  ``--json PATH``
writes the machine-readable report even when findings exist (CI
uploads it as an artifact on failure), ``--json -`` prints it to
stdout instead of the text report.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import repro
from repro.analysis.engine import run_lint
from repro.analysis.report import render_json, render_text


def default_target() -> str:
    """The installed ``repro`` package tree — what the cache
    fingerprints, hence what must lint clean."""
    return os.path.dirname(os.path.abspath(repro.__file__))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant linter: cache-key "
                    "determinism, registry fork/replay contract, "
                    "RunSpec key-material exhaustiveness, service "
                    "locking discipline.")
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the installed "
             "repro package)")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the JSON report to PATH ('-' for stdout, "
             "replacing the text report)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the text report (exit status only)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    paths = args.paths or [default_target()]
    for path in paths:
        if not os.path.exists(path):
            print(f"repro lint: no such path: {path}",
                  file=sys.stderr)
            return 2
    report = run_lint(paths)
    if args.json == "-":
        print(render_json(report))
    else:
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(render_json(report) + "\n")
        if not args.quiet:
            print(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
