"""Row-Level Temporal Locality (RLTL) profiling - paper Section 3.

The paper defines *t-RLTL* as the fraction of row activations that
occur within time ``t`` after the **previous precharge of the same
row** (charge starts leaking only at precharge).  It contrasts this
with the fraction of activations landing within ``t`` of the row's last
**refresh**, which is what NUAT can exploit.

The probe hooks the controller's ACT/PRE issue points and bins each
activation's

* time-since-own-precharge into the paper's interval set
  (0.125/0.25/0.5/1/8/32 ms), and
* time-since-refresh into the same set (using the refresh scheduler's
  steady-state group timestamps, so short runs still sample refresh
  ages uniformly over the retention window).

Activations of rows never seen precharging during the run ("cold"
activations) are counted separately; they are *not* RLTL by
definition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dram.timing import TimingParameters

#: Intervals plotted in Figures 3 and 4, in milliseconds.
RLTL_INTERVALS_MS: Tuple[float, ...] = (0.125, 0.25, 0.5, 1.0, 8.0, 32.0)


class RLTLProbe:
    """Accumulates RLTL and refresh-age statistics per activation."""

    def __init__(self, timing: TimingParameters,
                 refresh_schedulers=None,
                 intervals_ms: Tuple[float, ...] = RLTL_INTERVALS_MS,
                 time_scale: float = 1.0):
        """
        Args:
            time_scale: divides the RLTL interval edges (only), so that
                a Python-scale run of ~100 us of simulated DRAM time
                can still resolve the paper's 0.125-32 ms interval
                sweep.  Refresh ages are physical (the refresh
                scheduler's steady-state rotation spans the real 64 ms
                window) and are *never* scaled.  ``time_scale=1`` gives
                the paper's literal definition.
        """
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.timing = timing
        self.time_scale = time_scale
        self.intervals_ms = tuple(sorted(intervals_ms))
        self._interval_cycles = [
            max(1, timing.ms_to_cycles(ms / time_scale))
            for ms in self.intervals_ms]
        self._refresh_interval_cycles = [timing.ms_to_cycles(ms)
                                         for ms in self.intervals_ms]
        #: channel index -> RefreshScheduler (set after controllers exist)
        self.refresh_schedulers: Dict[int, object] = \
            dict(refresh_schedulers or {})
        self._last_pre: Dict[Tuple[int, int, int, int], int] = {}
        self.reset()

    # ------------------------------------------------------------------
    # Controller hooks
    # ------------------------------------------------------------------

    def on_activate(self, channel: int, rank: int, bank: int, row: int,
                    cycle: int) -> None:
        self.activations += 1
        key = (channel, rank, bank, row)
        last_pre = self._last_pre.get(key)
        if last_pre is None:
            self.cold_activations += 1
        else:
            gap = cycle - last_pre
            for i, edge in enumerate(self._interval_cycles):
                if gap <= edge:
                    self.rltl_counts[i] += 1
            self.gap_sum_cycles += gap
        refresh = self.refresh_schedulers.get(channel)
        if refresh is not None:
            age = refresh.row_refresh_age_cycles(rank, row, cycle)
            for i, edge in enumerate(self._refresh_interval_cycles):
                if age <= edge:
                    self.refresh_counts[i] += 1

    def on_precharge(self, channel: int, rank: int, bank: int, row: int,
                     cycle: int) -> None:
        self.precharges += 1
        self._last_pre[(channel, rank, bank, row)] = cycle

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def rltl(self, interval_ms: float) -> float:
        """t-RLTL: fraction of activations within ``t`` of own precharge."""
        idx = self._interval_index(interval_ms)
        if not self.activations:
            return 0.0
        return self.rltl_counts[idx] / self.activations

    def refresh_fraction(self, interval_ms: float) -> float:
        """Fraction of activations within ``t`` of the row's refresh."""
        idx = self._interval_index(interval_ms)
        if not self.activations:
            return 0.0
        return self.refresh_counts[idx] / self.activations

    def rltl_series(self) -> List[Tuple[float, float]]:
        """(interval_ms, t-RLTL) pairs for every tracked interval."""
        return [(ms, self.rltl(ms)) for ms in self.intervals_ms]

    def _interval_index(self, interval_ms: float) -> int:
        try:
            return self.intervals_ms.index(interval_ms)
        except ValueError:
            raise KeyError(
                f"interval {interval_ms} ms not tracked; "
                f"tracked: {self.intervals_ms}") from None

    @property
    def mean_gap_ms(self) -> Optional[float]:
        """Mean ACT-after-PRE gap among non-cold activations."""
        covered = self.activations - self.cold_activations
        if covered <= 0:
            return None
        return (self.gap_sum_cycles / covered) * self.timing.tCK_ns / 1e6

    def reset(self) -> None:
        self.activations = 0
        self.precharges = 0
        self.cold_activations = 0
        self.gap_sum_cycles = 0
        self.rltl_counts = [0] * len(self.intervals_ms)
        self.refresh_counts = [0] * len(self.intervals_ms)
        # Precharge history is deliberately retained across resets:
        # warmup-period precharges legitimately precede post-warmup
        # activations.
