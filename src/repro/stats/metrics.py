"""Evaluation metrics (paper Section 5).

* Single-core performance: **IPC** (instructions per cycle).
* Multi-core performance: **weighted speedup** (Snavely & Tullsen
  [87]; Eyerman & Eeckhout [26] show it measures system throughput):
  ``WS = sum_i IPC_i(shared) / IPC_i(alone)``.
* Activation intensity: **RMPKC** - row misses (activations) per
  kilo-cycle, the x-axis annotation of Figure 7.
"""

from __future__ import annotations

import math
from typing import Sequence


def ipc(instructions: int, cycles: int) -> float:
    """Instructions per cycle; 0 when no cycles elapsed."""
    return instructions / cycles if cycles else 0.0


def weighted_speedup(shared_ipcs: Sequence[float],
                     alone_ipcs: Sequence[float]) -> float:
    """Sum of per-core slowdown-normalised IPCs.

    Raises ValueError on length mismatch; cores with zero alone-IPC
    (e.g. a core that retired nothing in a scaled run) contribute zero
    rather than dividing by zero.
    """
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared/alone IPC lists differ in length")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone > 0:
            total += shared / alone
    return total


def speedup(metric_new: float, metric_base: float) -> float:
    """Relative improvement: ``new / base - 1`` (0 when base is 0)."""
    if metric_base == 0:
        return 0.0
    return metric_new / metric_base - 1.0


def rmpkc(activations: int, cpu_cycles: int) -> float:
    """Row misses (activations) per kilo CPU cycle."""
    if cpu_cycles <= 0:
        return 0.0
    return activations * 1000.0 / cpu_cycles


def rmpki(activations: int, instructions: int) -> float:
    """Row misses per kilo instruction - the trace-level RMPKC proxy.

    A trace has no clock until it is simulated; under the IPC=1
    idealization the fingerprint pass uses (one CPU cycle per
    instruction), misses-per-kilo-instruction *is* misses-per-kilo-
    cycle, so workload fingerprints and simulated RMPKC are directly
    comparable.
    """
    if instructions <= 0:
        return 0.0
    return activations * 1000.0 / instructions


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if any value <= 0)."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
