"""Probe composition for controller activation/precharge hooks.

The memory controller accepts a single probe object with
``on_activate``/``on_precharge``/``reset`` methods; a
:class:`CompositeProbe` fans those calls out so the RLTL profiler and
the row-reuse profiler (or any custom observer) can watch one run
simultaneously.
"""

from __future__ import annotations

from typing import Iterable, List


class CompositeProbe:
    """Broadcasts controller events to several probes."""

    def __init__(self, probes: Iterable):
        self.probes: List = list(probes)
        if not self.probes:
            raise ValueError("need at least one probe")

    def on_activate(self, channel: int, rank: int, bank: int, row: int,
                    cycle: int) -> None:
        for probe in self.probes:
            probe.on_activate(channel, rank, bank, row, cycle)

    def on_precharge(self, channel: int, rank: int, bank: int, row: int,
                     cycle: int) -> None:
        for probe in self.probes:
            probe.on_precharge(channel, rank, bank, row, cycle)

    def reset(self) -> None:
        for probe in self.probes:
            reset = getattr(probe, "reset", None)
            if reset is not None:
                reset()

    def __iter__(self):
        return iter(self.probes)
