"""A small named-counter collector used by the harness to aggregate
per-run statistics into flat, serialisable dictionaries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping


class StatsCollector:
    """Flat named counters/gauges with prefix grouping."""

    def __init__(self):
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, value: float = 1.0) -> None:
        self._counters[name] += value

    def set(self, name: str, value: float) -> None:
        self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    def update(self, values: Mapping[str, float], prefix: str = "") -> None:
        for name, value in values.items():
            self._counters[prefix + name] = value

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        return {name: value for name, value in self._counters.items()
                if name.startswith(prefix)}

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def names(self) -> Iterable[str]:
        return self._counters.keys()

    def ratio(self, numerator: str, denominator: str) -> float:
        den = self._counters.get(denominator, 0.0)
        return self._counters.get(numerator, 0.0) / den if den else 0.0

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)
