"""Statistics: counters, the RLTL profiler and evaluation metrics."""

from repro.stats.collector import StatsCollector
from repro.stats.probes import CompositeProbe
from repro.stats.reuse import RowReuseProfiler
from repro.stats.rltl import RLTLProbe, RLTL_INTERVALS_MS
from repro.stats.metrics import (
    ipc,
    weighted_speedup,
    speedup,
    rmpkc,
    geometric_mean,
)

__all__ = [
    "StatsCollector",
    "CompositeProbe",
    "RowReuseProfiler",
    "RLTLProbe",
    "RLTL_INTERVALS_MS",
    "ipc",
    "weighted_speedup",
    "speedup",
    "rmpkc",
    "geometric_mean",
]
