"""Row-reuse-distance profiling.

The paper explains ChargeCache's weak spots (mcf, omnetpp) via *row
reuse distance* (Kandemir et al. [38]): the number of distinct rows
activated between two activations of the same row.  When the reuse
distance exceeds the HCRAC capacity, the entry is evicted before it can
produce a hit, and only LL-DRAM's unconditional reductions help.

:class:`RowReuseProfiler` measures the exact stack-distance
distribution of the activation stream (LRU stack over row ids) and
predicts the hit rate of an LRU table of a given capacity - a useful
model to size the HCRAC without running full simulations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple


class RowReuseProfiler:
    """Exact LRU stack-distance histogram over activated rows.

    Hook :meth:`on_activate` to the controller (it has the same
    signature as the RLTL probe's hook, so both can be chained) or feed
    it an activation stream directly.
    """

    def __init__(self):
        self._stack: "OrderedDict[Tuple[int, int, int, int], None]" = \
            OrderedDict()
        self.histogram: Dict[int, int] = {}
        self.cold = 0
        self.activations = 0

    # ------------------------------------------------------------------

    def on_activate(self, channel: int, rank: int, bank: int, row: int,
                    cycle: int = 0) -> Optional[int]:
        """Record an activation; returns its reuse distance (None=cold).

        Distance 0 means the row was the most recently activated
        distinct row.
        """
        del cycle
        key = (channel, rank, bank, row)
        self.activations += 1
        if key in self._stack:
            # Stack distance: how many distinct rows were touched since.
            distance = 0
            for other in reversed(self._stack):
                if other == key:
                    break
                distance += 1
            self._stack.move_to_end(key)
            self.histogram[distance] = self.histogram.get(distance, 0) + 1
            return distance
        self._stack[key] = None
        self.cold += 1
        return None

    def on_precharge(self, channel: int, rank: int, bank: int, row: int,
                     cycle: int = 0) -> None:
        """No-op; present so the profiler can replace an RLTL probe."""

    # ------------------------------------------------------------------

    def predicted_hit_rate(self, capacity: int) -> float:
        """Hit rate of a fully-associative LRU table of ``capacity``.

        By the inclusion property of LRU, an activation hits iff its
        stack distance is below the capacity.
        """
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not self.activations:
            return 0.0
        hits = sum(count for distance, count in self.histogram.items()
                   if distance < capacity)
        return hits / self.activations

    def hit_rate_curve(self, capacities) -> List[Tuple[int, float]]:
        return [(c, self.predicted_hit_rate(c)) for c in capacities]

    def median_reuse_distance(self) -> Optional[int]:
        """Median over non-cold activations (None if no reuse seen)."""
        total = sum(self.histogram.values())
        if not total:
            return None
        seen = 0
        for distance in sorted(self.histogram):
            seen += self.histogram[distance]
            if seen * 2 >= total:
                return distance
        return None  # pragma: no cover

    def distinct_rows(self) -> int:
        return len(self._stack)

    def reset(self) -> None:
        self._stack.clear()
        self.histogram.clear()
        self.cold = 0
        self.activations = 0
