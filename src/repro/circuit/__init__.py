"""Circuit-level models: DRAM cell, sense amplifier and the derived
latency tables (paper Figure 6 and Table 2).

This subpackage is the reproduction's substitute for the paper's SPICE
setup (55 nm DDR3 sense-amplifier netlist with PTM low-power
transistors).  It provides a transient simulator of the charge-sharing
and sense-amplification phases plus the caching-duration -> (tRCD, tRAS)
tables the memory controller consumes.
"""

from repro.circuit.cell import CellParameters, cell_voltage_after
from repro.circuit.sense_amp import SenseAmpModel, TransientResult
from repro.circuit.spice import bitline_transient, find_latency_pair
from repro.circuit.latency_tables import (
    BASELINE_TIMINGS_NS,
    DURATION_TABLE_NS,
    DURATION_REDUCTIONS_CYCLES,
    reductions_for_duration_ms,
    timings_ns_for_duration_ms,
    nuat_bin_reductions,
)

__all__ = [
    "CellParameters",
    "cell_voltage_after",
    "SenseAmpModel",
    "TransientResult",
    "bitline_transient",
    "find_latency_pair",
    "BASELINE_TIMINGS_NS",
    "DURATION_TABLE_NS",
    "DURATION_REDUCTIONS_CYCLES",
    "reductions_for_duration_ms",
    "timings_ns_for_duration_ms",
    "nuat_bin_reductions",
]
