"""Caching-duration -> activation-timing tables (paper Table 2).

The paper derives, via SPICE, how much tRCD and tRAS can be lowered for
a row that was precharged at most ``d`` milliseconds ago:

    ==============  =========  =========
    duration (ms)   tRCD (ns)  tRAS (ns)
    ==============  =========  =========
    baseline        13.75      35
    1               8          22
    4               9          24
    16              11         28
    ==============  =========  =========

and states that at a 1 ms caching duration the reductions amount to
**4 / 8 bus cycles** for tRCD / tRAS on the 800 MHz DDR3-1600 bus.

Rounding note (documented deviation): converting the 1 ms tRAS of 22 ns
to cycles with the usual ceil rule would give a 10-cycle reduction, not
the 8 the paper states; DRAM vendors round such derated values
conservatively.  We therefore pin the *cycle-level* table to the
paper's stated 1 ms numbers and derate the longer durations
monotonically, while keeping the ns table exactly as published (with an
interpolated 8 ms row, which Figure 11 sweeps but Table 2 omits).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Baseline DDR3-1600 activation timings in nanoseconds (Table 2, row 1).
BASELINE_TIMINGS_NS: Tuple[float, float] = (13.75, 35.0)

#: Published duration -> (tRCD ns, tRAS ns); 8 ms row interpolated.
DURATION_TABLE_NS: Dict[float, Tuple[float, float]] = {
    1.0: (8.0, 22.0),
    4.0: (9.0, 24.0),
    8.0: (10.0, 26.0),
    16.0: (11.0, 28.0),
}

#: Duration -> (tRCD, tRAS) reduction in bus cycles at 800 MHz.
#: The 1 ms row is the paper's headline 4/8-cycle reduction.
DURATION_REDUCTIONS_CYCLES: Dict[float, Tuple[int, int]] = {
    1.0: (4, 8),
    4.0: (3, 7),
    8.0: (2, 6),
    16.0: (2, 5),
}

#: NUAT (5PB) refresh-age bins: age upper edge (ms) -> cycle reductions.
#: Rows older than the last edge use default timings.  Derived from the
#: same derating curve; a row refreshed within 6 ms is almost as charged
#: as a ChargeCache row cached for 4 ms.
NUAT_BIN_REDUCTIONS_CYCLES: Dict[float, Tuple[int, int]] = {
    6.0: (3, 6),
    16.0: (2, 5),
    32.0: (1, 3),
    48.0: (1, 2),
    64.0: (0, 0),
}


def timings_ns_for_duration_ms(duration_ms: float) -> Tuple[float, float]:
    """(tRCD, tRAS) in ns for a caching duration, by conservative lookup.

    Durations between table rows use the next *longer* duration's (i.e.
    safer, slower) timings; durations beyond the table use the baseline.
    """
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    for edge in sorted(DURATION_TABLE_NS):
        if duration_ms <= edge:
            return DURATION_TABLE_NS[edge]
    return BASELINE_TIMINGS_NS


def reductions_for_duration_ms(duration_ms: float) -> Tuple[int, int]:
    """(tRCD, tRAS) cycle reductions for a caching duration.

    Same conservative rule as :func:`timings_ns_for_duration_ms`:
    round the duration up to the next table row; beyond 16 ms no
    reduction is assumed.
    """
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    for edge in sorted(DURATION_REDUCTIONS_CYCLES):
        if duration_ms <= edge:
            return DURATION_REDUCTIONS_CYCLES[edge]
    return (0, 0)


def nuat_bin_reductions(bin_edges_ms) -> List[Tuple[float, Tuple[int, int]]]:
    """Per-bin cycle reductions for a NUAT configuration.

    Returns a list of ``(age_upper_edge_ms, (trcd_red, tras_red))``
    sorted by edge.  Edges present in the canonical 5PB table use its
    values; other edges fall back to the conservative duration rule.
    """
    table = []
    for edge in sorted(bin_edges_ms):
        if edge in NUAT_BIN_REDUCTIONS_CYCLES:
            red = NUAT_BIN_REDUCTIONS_CYCLES[edge]
        else:
            red = reductions_for_duration_ms(edge)
        table.append((float(edge), red))
    return table
