"""Sense-amplifier transient model (the reproduction's "SPICE").

After charge sharing, the cross-coupled sense amplifier regeneratively
drives the bitline from ``Vdd/2 + delta`` toward Vdd while the cell
recharges through its access transistor.  We model the coupled system
with two ODEs integrated by RK4:

    dVb/dt = (x / tau_sa) * (1 - x / x_max)          # regeneration
             - (Cc/Cb) * (Vb - Vc) / tau_cell        # cell loading
    dVc/dt = (Vb - Vc) / tau_cell                    # cell restore

where ``x = Vb - Vdd/2`` is the bitline deviation.  The logistic first
term captures the amplifier's small-signal slowness near the
metastable point and its saturation near the rail; the loading term
makes a depleted cell *drag* on the bitline, which is what widens the
restore-time (tRAS) gap beyond the ready-time (tRCD) gap - the paper's
Figure 6 shows 4.5 ns of tRCD headroom but 9.6 ns of tRAS headroom.

A fixed ``t_offset_ns`` models wordline rise plus charge-sharing time
before regeneration starts.

The four free constants (tau_sa, tau_cell, t_offset, retention tau in
:mod:`repro.circuit.cell`) are calibrated against Figure 6's anchors:
fully-charged ready at ~10 ns, 64 ms-old ready at ~14.5 ns, and a
~9.6 ns restore-time gap.  ``tests/circuit`` asserts the fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.circuit.cell import (
    CellParameters,
    cell_voltage_after,
    charge_sharing_voltage,
)


@dataclass(frozen=True)
class SenseAmpParameters:
    """Dynamic constants of the regeneration/restore model."""

    tau_sa_ns: float = 2.4       # regeneration time constant
    tau_cell_ns: float = 1.5     # cell restore RC through the access FET
    t_offset_ns: float = 6.5     # wordline rise + charge sharing
    dt_ns: float = 0.02          # RK4 step
    #: Access-transistor overdrive weakening: a depleted cell recharges
    #: through an effectively larger RC, tau_cell * (1 + w * deficit),
    #: where deficit = (Vdd - V_initial)/Vdd.  This is what makes the
    #: tRAS (restore) headroom ~2x the tRCD (ready) headroom in the
    #: paper's Figure 6 (9.6 ns vs 4.5 ns).
    restore_weakening: float = 4.0


@dataclass
class TransientResult:
    """Sampled waveforms and extracted latencies for one activation."""

    times_ns: List[float]
    bitline_v: List[float]
    cell_v: List[float]
    ready_time_ns: Optional[float]
    restore_time_ns: Optional[float]
    initial_cell_v: float

    def voltage_at(self, t_ns: float) -> float:
        """Bitline voltage at ``t_ns`` (nearest sample)."""
        if not self.times_ns:
            raise ValueError("empty transient")
        dt = self.times_ns[1] - self.times_ns[0] if len(self.times_ns) > 1 \
            else 1.0
        idx = min(len(self.times_ns) - 1, max(0, round(t_ns / dt)))
        return self.bitline_v[idx]


class SenseAmpModel:
    """RK4 integrator for the coupled bitline/cell system."""

    def __init__(self, cell: CellParameters = CellParameters(),
                 amp: SenseAmpParameters = SenseAmpParameters()):
        self.cell = cell
        self.amp = amp

    # ------------------------------------------------------------------

    def _derivatives(self, vb: float, vc: float, tau_cell_eff: float):
        cell = self.cell
        amp = self.amp
        x = vb - cell.precharge_voltage
        x_max = cell.vdd - cell.precharge_voltage
        if x <= 0:
            regen = 0.0
        else:
            regen = (x / amp.tau_sa_ns) * (1.0 - x / x_max)
            if regen < 0:
                regen = 0.0
        coupling = (vb - vc) / tau_cell_eff
        load_ratio = cell.cell_capacitance_f / cell.bitline_capacitance_f
        dvb = regen - load_ratio * coupling
        dvc = coupling
        return dvb, dvc

    def restore_tau_ns(self, initial_cell_v: float) -> float:
        """Effective cell-restore RC for a given initial cell voltage."""
        deficit = max(0.0, (self.cell.vdd - initial_cell_v) / self.cell.vdd)
        return self.amp.tau_cell_ns \
            * (1.0 + self.amp.restore_weakening * deficit)

    def simulate(self, age_ms: float, t_end_ns: float = 60.0,
                 record_every: int = 5,
                 stop_early: bool = True) -> TransientResult:
        """Activate a cell last charged ``age_ms`` ago.

        Returns waveforms plus the extracted ready (bitline crosses the
        ready-to-access level) and restore (cell crosses the restored
        level) times, both measured from the ACT command.  With
        ``stop_early`` (the default) integration stops once both
        latencies are known; pass False to record the full waveform up
        to ``t_end_ns`` (Figure 6 curves).
        """
        cell = self.cell
        amp = self.amp
        v_init = cell_voltage_after(age_ms, cell)
        v_share = charge_sharing_voltage(v_init, cell)

        vb = v_share
        vc = v_share
        dt = amp.dt_ns
        t = amp.t_offset_ns
        times = [0.0, t]
        bitline = [cell.precharge_voltage, vb]
        cells = [v_init, vc]
        ready: Optional[float] = None
        restore: Optional[float] = None
        step = 0
        ready_v = cell.ready_voltage
        restore_v = cell.restore_voltage
        tau_cell_eff = self.restore_tau_ns(v_init)

        while t < t_end_ns and (not stop_early or ready is None
                                or restore is None):
            k1b, k1c = self._derivatives(vb, vc, tau_cell_eff)
            k2b, k2c = self._derivatives(vb + 0.5 * dt * k1b,
                                         vc + 0.5 * dt * k1c, tau_cell_eff)
            k3b, k3c = self._derivatives(vb + 0.5 * dt * k2b,
                                         vc + 0.5 * dt * k2c, tau_cell_eff)
            k4b, k4c = self._derivatives(vb + dt * k3b, vc + dt * k3c,
                                         tau_cell_eff)
            vb += dt * (k1b + 2 * k2b + 2 * k3b + k4b) / 6.0
            vc += dt * (k1c + 2 * k2c + 2 * k3c + k4c) / 6.0
            vb = min(vb, cell.vdd)
            vc = min(vc, cell.vdd)
            t += dt
            step += 1
            if ready is None and vb >= ready_v:
                ready = t
            if restore is None and vc >= restore_v:
                restore = t
            if step % record_every == 0:
                times.append(t)
                bitline.append(vb)
                cells.append(vc)

        times.append(t)
        bitline.append(vb)
        cells.append(vc)
        return TransientResult(times, bitline, cells, ready, restore,
                               v_init)
