"""SPICE-like transient runs and latency extraction (paper Figure 6,
Table 2).

These helpers drive :class:`~repro.circuit.sense_amp.SenseAmpModel` to
regenerate the paper's circuit-level artefacts:

* :func:`bitline_transient` - the bitline voltage waveform for a cell
  of a given age (Figure 6's two curves are ages 0 and 64 ms).
* :func:`find_latency_pair` - (ready, restore) times for a given age.
* :func:`derive_timing_table` - caching-duration -> (tRCD, tRAS) in ns
  with spec margins calibrated so the worst case (64 ms) reproduces the
  DDR3 baseline of 13.75 / 35 ns - the model-derived analogue of the
  paper's Table 2.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.circuit.cell import CellParameters
from repro.circuit.sense_amp import (
    SenseAmpModel,
    SenseAmpParameters,
    TransientResult,
)
from repro.circuit.latency_tables import BASELINE_TIMINGS_NS

#: Worst-case cell age assumed by the DDR3 standard (refresh deadline).
WORST_CASE_AGE_MS = 64.0

_DEFAULT_MODEL = SenseAmpModel()
_latency_cache: Dict[Tuple[float, int], Tuple[float, float]] = {}


def bitline_transient(age_ms: float,
                      model: Optional[SenseAmpModel] = None,
                      t_end_ns: float = 60.0) -> TransientResult:
    """Full waveform for a cell last charged ``age_ms`` ago."""
    model = model or _DEFAULT_MODEL
    return model.simulate(age_ms, t_end_ns=t_end_ns, stop_early=False)


def find_latency_pair(age_ms: float,
                      model: Optional[SenseAmpModel] = None
                      ) -> Tuple[float, float]:
    """(ready_ns, restore_ns) for a cell of the given age.

    Results from the default model are memoised - the harness queries
    the same handful of ages repeatedly.
    """
    if model is None or model is _DEFAULT_MODEL:
        key = (age_ms, 0)
        cached = _latency_cache.get(key)
        if cached is not None:
            return cached
        model = _DEFAULT_MODEL
    else:
        key = None
    result = model.simulate(age_ms)
    if result.ready_time_ns is None or result.restore_time_ns is None:
        raise RuntimeError(
            f"transient did not converge for age {age_ms} ms; "
            "check model parameters")
    pair = (result.ready_time_ns, result.restore_time_ns)
    if key is not None:
        _latency_cache[key] = pair
    return pair


def spec_margins(model: Optional[SenseAmpModel] = None
                 ) -> Tuple[float, float]:
    """(tRCD, tRAS) margins added on top of model latencies.

    Calibrated so the worst-case (64 ms) cell exactly meets the DDR3
    baseline (13.75 ns / 35 ns).  DRAM vendors guard-band the same way:
    the datasheet numbers are worst-case cell behaviour plus margin.
    """
    ready, restore = find_latency_pair(WORST_CASE_AGE_MS, model)
    base_trcd, base_tras = BASELINE_TIMINGS_NS
    return base_trcd - ready, base_tras - restore


def derive_timing_table(durations_ms=(1.0, 4.0, 8.0, 16.0),
                        model: Optional[SenseAmpModel] = None
                        ) -> Dict[float, Tuple[float, float]]:
    """Model-derived Table 2: duration -> (tRCD ns, tRAS ns).

    A row cached for duration ``d`` is at worst ``d`` old when
    activated, so its timings are the model latencies at age ``d`` plus
    the spec margins.  Values are clamped to the baseline from above.
    """
    margin_rcd, margin_ras = spec_margins(model)
    base_trcd, base_tras = BASELINE_TIMINGS_NS
    table = {}
    for duration in durations_ms:
        # A cached row can never be older than the refresh deadline:
        # refresh would have replenished it.  Clamp so durations beyond
        # 64 ms degrade to the worst-case (baseline) timings.
        age = min(float(duration), WORST_CASE_AGE_MS)
        ready, restore = find_latency_pair(age, model)
        trcd = min(base_trcd, ready + margin_rcd)
        tras = min(base_tras, restore + margin_ras)
        table[float(duration)] = (trcd, tras)
    return table


def make_model(retention_tau_ms: Optional[float] = None,
               tau_sa_ns: Optional[float] = None,
               tau_cell_ns: Optional[float] = None,
               t_offset_ns: Optional[float] = None) -> SenseAmpModel:
    """Convenience constructor with selective overrides (for tests)."""
    cell_kwargs = {}
    if retention_tau_ms is not None:
        cell_kwargs["retention_tau_ms"] = retention_tau_ms
    amp_kwargs = {}
    if tau_sa_ns is not None:
        amp_kwargs["tau_sa_ns"] = tau_sa_ns
    if tau_cell_ns is not None:
        amp_kwargs["tau_cell_ns"] = tau_cell_ns
    if t_offset_ns is not None:
        amp_kwargs["t_offset_ns"] = t_offset_ns
    return SenseAmpModel(CellParameters(**cell_kwargs),
                         SenseAmpParameters(**amp_kwargs))
