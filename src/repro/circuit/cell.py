"""DRAM cell electrical model.

A cell is a capacitor behind an access transistor on a shared bitline
(paper Figure 1b).  Two behaviours matter for ChargeCache:

* **Leakage**: after a precharge the cell voltage decays exponentially
  toward ground.  The retention time constant is calibrated so that a
  worst-case cell still senses correctly at the 64 ms refresh deadline
  (with the margin the paper's Figure 6 shows: a 64 ms-old cell reaches
  the ready-to-access level in 14.5 ns vs 10 ns when fully charged).
* **Charge sharing**: when the wordline rises, cell and bitline
  capacitances equalise; the resulting bitline deviation from Vdd/2
  seeds sense amplification and is larger for a more charged cell.

Constants follow 55 nm DDR3-class parts (the paper's SPICE setup [77]):
~24 fF cell, ~85 fF bitline, Vdd = 1.5 V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CellParameters:
    """Electrical constants of the cell/bitline pair."""

    vdd: float = 1.5                   # volts
    cell_capacitance_f: float = 24e-15
    bitline_capacitance_f: float = 85e-15
    #: Leakage time constant (ms); calibrated so a 64 ms-old cell
    #: reproduces Figure 6's 14.5 ns ready time (see tests).
    retention_tau_ms: float = 130.0
    #: Fraction of Vdd the bitline must reach before a column command
    #: may sample it ("ready-to-access" level in Figure 6).
    ready_fraction: float = 0.75
    #: Fraction of Vdd at which the cell counts as fully restored
    #: (tRAS end point).
    restore_fraction: float = 0.975

    @property
    def precharge_voltage(self) -> float:
        return self.vdd / 2.0

    @property
    def transfer_ratio(self) -> float:
        """Cb/(Cb+Cc): how much of the cell's excess reaches the bitline."""
        cc = self.cell_capacitance_f
        cb = self.bitline_capacitance_f
        return cc / (cb + cc)

    @property
    def ready_voltage(self) -> float:
        return self.vdd * self.ready_fraction

    @property
    def restore_voltage(self) -> float:
        return self.vdd * self.restore_fraction


def cell_voltage_after(age_ms: float,
                       params: CellParameters = CellParameters()) -> float:
    """Cell voltage ``age_ms`` after it was last fully charged.

    Exponential decay toward ground; a freshly restored/refreshed cell
    sits at Vdd.
    """
    if age_ms < 0:
        raise ValueError("age must be non-negative")
    return params.vdd * math.exp(-age_ms / params.retention_tau_ms)


def charge_sharing_voltage(cell_voltage: float,
                           params: CellParameters = CellParameters()
                           ) -> float:
    """Bitline (= cell) voltage right after charge sharing.

    Capacitive divider between the precharged bitline (Vdd/2) and the
    cell.  This is state 2 of the paper's Figure 2 (voltage
    Vdd/2 + delta).
    """
    cc = params.cell_capacitance_f
    cb = params.bitline_capacitance_f
    return (cb * params.precharge_voltage + cc * cell_voltage) / (cb + cc)


def initial_deviation(cell_voltage: float,
                      params: CellParameters = CellParameters()) -> float:
    """Bitline deviation from Vdd/2 after charge sharing (the "delta")."""
    return charge_sharing_voltage(cell_voltage, params) \
        - params.precharge_voltage
