"""Temperature dependence of DRAM retention (paper Section 7.1).

Charge leakage roughly doubles for every 10 C increase in temperature
(the paper cites [39, 48, 51, 58, 75]).  The paper argues ChargeCache
is *temperature independent*: its timing reductions are validated at
the worst-case temperature (85 C), so they hold at any lower
temperature - unlike AL-DRAM-style dynamic latency scaling, which
relies on the DRAM being cool.

This module models that relationship so the claim can be checked
quantitatively (see ``tests/circuit/test_temperature.py`` and the
``bench_ablations`` notes):

* :func:`retention_tau_at` - leakage time constant vs temperature.
* :func:`cell_model_at` - a :class:`SenseAmpModel` for a device at a
  given temperature.
* :func:`chargecache_margin_at` - how much *extra* margin a
  ChargeCache-hit row has at temperature T relative to the worst-case
  cell the reduced timings were validated against.
"""

from __future__ import annotations

from dataclasses import replace

from repro.circuit.cell import CellParameters, cell_voltage_after
from repro.circuit.sense_amp import SenseAmpModel, SenseAmpParameters

#: Temperature at which DRAM timings are specified (worst case).
WORST_CASE_TEMPERATURE_C = 85.0

#: Leakage doubles per this many degrees Celsius.
DOUBLING_INTERVAL_C = 10.0


def leakage_factor_at(temperature_c: float) -> float:
    """Leakage-rate multiplier relative to the worst-case temperature.

    1.0 at 85 C; 0.5 at 75 C; 2.0 at 95 C (3D-stacked parts may exceed
    85 C - the paper's argument for why AL-DRAM-style scaling helps
    less there).
    """
    exponent = (temperature_c - WORST_CASE_TEMPERATURE_C) \
        / DOUBLING_INTERVAL_C
    return 2.0 ** exponent


def retention_tau_at(temperature_c: float,
                     base: CellParameters = CellParameters()) -> float:
    """Retention time constant (ms) at ``temperature_c``.

    The baseline :class:`CellParameters` is calibrated at the
    worst-case temperature; cooler devices leak proportionally slower.
    """
    return base.retention_tau_ms / leakage_factor_at(temperature_c)


def cell_model_at(temperature_c: float,
                  base_cell: CellParameters = CellParameters(),
                  base_amp: SenseAmpParameters = SenseAmpParameters()
                  ) -> SenseAmpModel:
    """A transient model for a device operating at ``temperature_c``."""
    cell = replace(base_cell,
                   retention_tau_ms=retention_tau_at(temperature_c,
                                                     base_cell))
    return SenseAmpModel(cell, base_amp)


def chargecache_margin_at(temperature_c: float,
                          caching_duration_ms: float = 1.0,
                          base: CellParameters = CellParameters()
                          ) -> float:
    """Voltage margin of a ChargeCache hit vs the validated worst case.

    The reduced timings are validated for a cell that is
    ``caching_duration_ms`` old at the worst-case temperature.  At any
    temperature at or below that, a cached row holds at least as much
    charge, so the margin (in volts) is non-negative - the paper's
    Section 7.1 temperature-independence claim.
    """
    worst_case = cell_voltage_after(caching_duration_ms, base)
    cell = replace(base, retention_tau_ms=retention_tau_at(temperature_c,
                                                           base))
    actual = cell_voltage_after(caching_duration_ms, cell)
    return actual - worst_case
