"""``python -m repro`` — the harness CLI without an installed script.

Equivalent to the ``repro`` / ``chargecache-harness`` console scripts::

    PYTHONPATH=src python -m repro calibrate --scale tiny
"""

from repro.harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
