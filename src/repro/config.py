"""System configuration for the ChargeCache reproduction.

The defaults mirror Table 1 of the paper (HPCA 2016):

* Processor: 1-8 cores, 4 GHz, 3-wide issue, 8 MSHRs/core,
  128-entry instruction window.
* Last-level cache: 64 B lines, 16-way, 4 MB.
* Memory controller: 64-entry read/write queues, FR-FCFS,
  open-row policy for single-core and closed-row for multi-core runs.
* DRAM: DDR3-1600, 800 MHz bus, 1-2 channels, 1 rank/channel,
  8 banks/rank, 64K rows/bank, 8 KB row buffer.
* ChargeCache: 128 entries/core, 2-way, LRU, 1 ms caching duration,
  tRCD/tRAS reduced by 4/8 bus cycles on a hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

#: CPU clock frequency used throughout the paper's evaluation (Table 1).
DEFAULT_CPU_FREQ_GHZ = 4.0

#: DDR3-1600 bus frequency in MHz (Table 1).
DEFAULT_BUS_FREQ_MHZ = 800.0

#: The pre-registry fixed mechanism menu, kept as a deprecation shim:
#: every name here must keep resolving through
#: :mod:`repro.core.registry` (guarded in CI and
#: tests/core/test_registry.py).  The validated surface is now any
#: spec :func:`repro.core.registry.parse_mechanism_spec` accepts, e.g.
#: ``"chargecache(entries=256,duration_ms=0.5)+nuat"``.
MECHANISMS = ("none", "chargecache", "nuat", "chargecache+nuat",
              "lldram", "aldram", "chargecache+aldram")

#: Known row-buffer management policies (Section 3 of the paper).
ROW_POLICIES = ("open", "closed")

#: Known simulation engines.  "event" advances the clock directly to the
#: next cycle where anything observable can happen (command issue, read
#: completion, refresh, core wake-up); "dense" ticks every bus cycle.
#: Both produce bit-identical RunResult statistics (see
#: tests/integration/test_engine_parity.py).
ENGINES = ("event", "dense")

#: Engine used when a configuration does not name one.
DEFAULT_ENGINE = "event"


@dataclass(frozen=True)
class ProcessorConfig:
    """Core pipeline parameters (Table 1, "Processor" row)."""

    num_cores: int = 1
    freq_ghz: float = DEFAULT_CPU_FREQ_GHZ
    issue_width: int = 3
    retire_width: int = 4
    window_size: int = 128
    mshrs_per_core: int = 8

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if self.issue_width < 1 or self.retire_width < 1:
            raise ValueError("issue/retire width must be >= 1")
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.mshrs_per_core < 1:
            raise ValueError("mshrs_per_core must be >= 1")


@dataclass(frozen=True)
class CacheConfig:
    """Shared last-level cache parameters (Table 1, "Last-level Cache")."""

    size_bytes: int = 4 * 1024 * 1024
    associativity: int = 16
    line_bytes: int = 64
    hit_latency_cycles: int = 24  # CPU cycles, typical L3 lookup latency

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.associativity * self.line_bytes)
        return max(1, sets)

    def validate(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError("size must be divisible by assoc * line size")


#: Timing standard assumed when a configuration does not name one.
DEFAULT_STANDARD = "DDR3-1600"


@dataclass(frozen=True)
class DRAMConfig:
    """DRAM organization (Table 1, "DRAM" row).

    ``standard`` names the timing-grade preset
    (:mod:`repro.dram.standards`) the simulated devices follow;
    :class:`repro.cpu.system.System` resolves it to a
    :class:`~repro.dram.timing.TimingParameters` unless the caller
    injects explicit timing.  A non-default standard must agree with
    ``bus_freq_mhz`` (the CPU/DRAM clock ratio is derived from it); the
    default standard tolerates any bus frequency for backward
    compatibility with frequency-sweep configs that pass their own
    timing object.
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    rows_per_bank: int = 64 * 1024
    row_buffer_bytes: int = 8 * 1024
    bus_freq_mhz: float = DEFAULT_BUS_FREQ_MHZ
    address_mapping: str = "RoBaRaCoCh"
    standard: str = DEFAULT_STANDARD

    @property
    def columns_per_row(self) -> int:
        """Number of 64 B cache-line columns per row buffer."""
        return self.row_buffer_bytes // 64

    def validate(self) -> None:
        for name in ("channels", "ranks_per_channel", "banks_per_rank",
                     "rows_per_bank"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.row_buffer_bytes % 64:
            raise ValueError("row buffer must be a multiple of 64 B lines")
        from repro.dram.standards import PRESETS
        if self.standard not in PRESETS:
            raise ValueError(
                f"unknown DRAM standard {self.standard!r}; "
                f"known: {sorted(PRESETS)}")
        if self.standard != DEFAULT_STANDARD:
            preset_freq = PRESETS[self.standard].freq_mhz
            if abs(self.bus_freq_mhz - preset_freq) > 1e-6:
                raise ValueError(
                    f"bus_freq_mhz={self.bus_freq_mhz} does not match "
                    f"standard {self.standard!r} ({preset_freq} MHz); "
                    f"set both consistently")


@dataclass(frozen=True)
class ControllerConfig:
    """Per-channel memory-controller parameters (Table 1)."""

    read_queue_size: int = 64
    write_queue_size: int = 64
    scheduler: str = "frfcfs"  # or "fcfs"
    row_policy: str = "open"   # or "closed"
    #: Write drain starts above this occupancy fraction.
    write_high_watermark: float = 0.8
    #: Write drain stops below this occupancy fraction.
    write_low_watermark: float = 0.2

    def validate(self) -> None:
        if self.scheduler not in ("frfcfs", "fcfs"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.row_policy not in ROW_POLICIES:
            raise ValueError(f"unknown row policy {self.row_policy!r}")
        if not 0.0 < self.write_low_watermark < self.write_high_watermark <= 1.0:
            raise ValueError("watermarks must satisfy 0 < low < high <= 1")


@dataclass(frozen=True)
class ChargeCacheConfig:
    """ChargeCache parameters (Table 1, "ChargeCache" row).

    ``entries`` is the per-core, per-channel HCRAC capacity.  The timing
    reductions are expressed in DRAM bus cycles and correspond to the
    paper's 1 ms caching duration (tRCD 11->7, tRAS 28->20).
    """

    entries: int = 128
    associativity: int = 2
    caching_duration_ms: float = 1.0
    trcd_reduction_cycles: int = 4
    tras_reduction_cycles: int = 8
    #: "per-core" replicates one HCRAC per (core, channel) as in the paper;
    #: "shared" uses one table per channel (paper footnote 2, future work).
    sharing: str = "per-core"
    #: Idealised infinite-capacity table (Figure 9's "unlimited size").
    unbounded: bool = False
    #: Divides the caching duration used for invalidation pacing (only),
    #: so scaled-down Python runs still exercise the IIC/EC sweep at the
    #: same rate *relative to run length* as the paper's 1B-instruction
    #: runs.  The timing reductions applied on a hit always follow the
    #: physical (unscaled) caching duration.  1.0 = paper-literal.
    time_scale: float = 1.0

    def validate(self) -> None:
        if self.entries < 1:
            raise ValueError("entries must be >= 1")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.associativity < 1 or self.entries % self.associativity:
            raise ValueError("entries must be divisible by associativity")
        if self.caching_duration_ms <= 0:
            raise ValueError("caching duration must be positive")
        if self.sharing not in ("per-core", "shared"):
            raise ValueError(f"unknown sharing mode {self.sharing!r}")


@dataclass(frozen=True)
class NUATConfig:
    """NUAT baseline parameters (Shin et al., HPCA 2014; 5PB config)."""

    #: Refresh-age bin upper edges in milliseconds.  A row whose age falls
    #: in the first bin gets the most aggressive timings.
    bin_edges_ms: tuple = (6.0, 16.0, 32.0, 48.0, 64.0)

    def validate(self) -> None:
        edges = self.bin_edges_ms
        if not edges or list(edges) != sorted(edges):
            raise ValueError("bin edges must be sorted and non-empty")


@dataclass(frozen=True)
class ExecutionConfig:
    """How the harness executes runs — not *what* a run computes.

    These knobs never change simulation results, only wall-clock and
    storage behaviour, so they are **excluded from run-cache keys**
    (see DESIGN.md section 4): a result computed with ``jobs=8`` must
    satisfy a later ``jobs=1`` request and vice versa.

    ``jobs`` is the process-pool width for sweep fan-out: ``None``
    defers to the ``REPRO_JOBS`` environment variable (default serial),
    ``0`` means one worker per CPU, ``1`` forces serial in-process
    execution.  ``cache_dir`` selects the persistent result store: a
    plain directory or ``file://DIR`` (the content-addressed envelope
    directory), ``http(s)://HOST:PORT`` (a serving daemon, see
    :mod:`repro.harness.store`), or ``layered:LOCAL,REMOTE``
    (read-through local with remote write-back); ``None`` defers to
    ``REPRO_CACHE_DIR`` or ``~/.cache/chargecache-repro``.
    ``use_run_cache=False`` bypasses the persistent layer entirely
    (the in-memory memo still applies).
    """

    jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    use_run_cache: bool = True

    def validate(self) -> None:
        if self.jobs is not None and self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one per CPU)")


@dataclass(frozen=True)
class SimulationConfig:
    """Aggregate configuration for one simulation run."""

    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    chargecache: ChargeCacheConfig = field(default_factory=ChargeCacheConfig)
    nuat: NUATConfig = field(default_factory=NUATConfig)
    #: Harness execution policy (pool width, run-cache location).
    #: Never part of run-cache keys; see :class:`ExecutionConfig`.
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    mechanism: str = "none"
    #: Simulation stops when every core retired this many instructions.
    instruction_limit: int = 100_000
    #: Statistics are reset after this many CPU cycles (cache warmup).
    warmup_cpu_cycles: int = 20_000
    #: Random seed used by workload generators attached to this run.
    seed: int = 1
    #: When True, a core that reaches its instruction limit stops
    #: issuing (fixed-work methodology, used for energy comparisons);
    #: when False, finished cores keep executing to preserve memory
    #: pressure (trace-loop methodology, used for performance).
    idle_finished_cores: bool = False
    #: DRAM operating temperature; used by the AL-DRAM mechanism
    #: (Section 7.1).  85 C is the specified worst case.
    temperature_c: float = 85.0
    #: Simulation engine: "event" (default, skips idle cycles) or
    #: "dense" (tick-per-cycle reference implementation).
    engine: str = DEFAULT_ENGINE

    @property
    def cpu_cycles_per_mem_cycle(self) -> int:
        ratio = self.processor.freq_ghz * 1000.0 / self.dram.bus_freq_mhz
        return max(1, round(ratio))

    def validate(self) -> None:
        self.processor.validate()
        self.cache.validate()
        self.dram.validate()
        self.controller.validate()
        self.chargecache.validate()
        self.nuat.validate()
        self.execution.validate()
        # The mechanism is a registry spec, not a fixed menu: any
        # +-composition of registered mechanisms with inline parameter
        # overrides is legal (parse errors carry the details).
        from repro.core.registry import parse_mechanism_spec
        parse_mechanism_spec(self.mechanism)
        if self.instruction_limit < 1:
            raise ValueError("instruction_limit must be >= 1")
        if self.warmup_cpu_cycles < 0:
            raise ValueError("warmup must be >= 0")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}")

    def with_mechanism(self, mechanism: str) -> "SimulationConfig":
        """Return a copy of this config with a different latency
        mechanism.

        The copy is re-validated so an invalid spec fails here, at the
        call site, rather than later inside a channel build.
        """
        cfg = replace(self, mechanism=mechanism)
        cfg.validate()
        return cfg

    def with_engine(self, engine: str) -> "SimulationConfig":
        """Return a copy of this config running on a different engine
        (re-validated, like :meth:`with_mechanism`)."""
        cfg = replace(self, engine=engine)
        cfg.validate()
        return cfg


def single_core_config(mechanism: str = "none", **overrides) -> SimulationConfig:
    """Paper's single-core system: 1 channel, open-row policy."""
    cfg = SimulationConfig(
        processor=ProcessorConfig(num_cores=1),
        dram=DRAMConfig(channels=1),
        controller=ControllerConfig(row_policy="open"),
        mechanism=mechanism,
    )
    cfg = replace(cfg, **overrides) if overrides else cfg
    cfg.validate()
    return cfg


def eight_core_config(mechanism: str = "none", **overrides) -> SimulationConfig:
    """Paper's eight-core system: 2 channels, closed-row policy."""
    cfg = SimulationConfig(
        processor=ProcessorConfig(num_cores=8),
        dram=DRAMConfig(channels=2),
        controller=ControllerConfig(row_policy="closed"),
        mechanism=mechanism,
    )
    cfg = replace(cfg, **overrides) if overrides else cfg
    cfg.validate()
    return cfg
