"""Shared last-level cache (paper Table 1: 4 MB, 16-way, 64 B lines).

Design notes:

* Physically-indexed, set-associative, LRU, write-back for lines that
  are dirtied by store hits; dirty evictions produce DRAM writes.
* Store misses are write-no-allocate: the store is forwarded to the
  memory controller's write queue (which coalesces).  This keeps the
  posted-store semantics of the core model simple while still
  generating the DRAM write traffic the paper's energy model sees.
* Load misses allocate an MSHR keyed by line address; concurrent
  misses to the same line merge.  When the controller cannot accept a
  request (full read queue), the miss parks in a retry list that is
  drained every memory cycle.

LRU is implemented with per-set ``OrderedDict`` (move-to-end on access,
pop-first on eviction), which is both exact and fast.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Tuple

from repro.controller.request import Request, RequestType


class MSHREntry:
    """Outstanding fill for one line, with merged waiters."""

    __slots__ = ("line_address", "waiters", "sent")

    def __init__(self, line_address: int):
        self.line_address = line_address
        #: (core_id, token, notify) triples waiting for the fill.
        self.waiters: List[Tuple[int, int, Callable[[int, int], None]]] = []
        self.sent = False


class SharedCache:
    """Shared LLC in front of the memory controllers."""

    def __init__(self, cache_config, mapper, controllers,
                 hit_notify: Callable[[int, int, int], None],
                 current_mem_cycle: Callable[[], int]):
        """
        Args:
            cache_config: a :class:`repro.config.CacheConfig`.
            mapper: the system's :class:`AddressMapper`.
            controllers: list of per-channel memory controllers.
            hit_notify: ``hit_notify(core_id, token, cpu_delay)``
                schedules a load-completion callback after the hit
                latency (the system wires this to its event queue).
            current_mem_cycle: callable returning the present DRAM bus
                cycle, used to timestamp controller requests.
        """
        cache_config.validate()
        self.config = cache_config
        self.mapper = mapper
        self.controllers = controllers
        self.hit_notify = hit_notify
        self.mem_cycle = current_mem_cycle

        self.num_sets = cache_config.num_sets
        self.assoc = cache_config.associativity
        # _sets[i]: OrderedDict mapping tag -> dirty flag (LRU order).
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.num_sets)]
        self._mshrs: Dict[int, MSHREntry] = {}
        self._retry_reads: List[Request] = []
        self._retry_writes: List[Request] = []
        # Statistics.
        self.load_hits = 0
        self.load_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self.writebacks = 0
        self.mshr_merges = 0

    # ------------------------------------------------------------------

    def _locate(self, line_address: int) -> Tuple[OrderedDict, int]:
        set_idx = line_address % self.num_sets
        tag = line_address // self.num_sets
        return self._sets[set_idx], tag

    # ------------------------------------------------------------------
    # Core-facing accesses
    # ------------------------------------------------------------------

    def access_load(self, core_id: int, line_address: int,
                    token: int,
                    notify: Callable[[int, int], None]) -> bool:
        """Handle a load; always accepted (MSHR/retry absorb pressure).

        ``notify(core_id, token)`` fires when data is available.
        """
        lru, tag = self._locate(line_address)
        if tag in lru:
            lru.move_to_end(tag)
            self.load_hits += 1
            self.hit_notify(core_id, token, self.config.hit_latency_cycles)
            return True
        self.load_misses += 1
        mshr = self._mshrs.get(line_address)
        if mshr is not None:
            mshr.waiters.append((core_id, token, notify))
            self.mshr_merges += 1
            return True
        mshr = MSHREntry(line_address)
        mshr.waiters.append((core_id, token, notify))
        self._mshrs[line_address] = mshr
        request = Request(line_address, RequestType.READ, core_id,
                          callback=self._fill)
        self.mapper.decode_into(request)
        self._send_read(request, mshr)
        return True

    def access_store(self, core_id: int, line_address: int) -> bool:
        """Handle a store; returns False if the write must be retried."""
        lru, tag = self._locate(line_address)
        if tag in lru:
            lru.move_to_end(tag)
            lru[tag] = True  # dirty
            self.store_hits += 1
            return True
        self.store_misses += 1
        request = Request(line_address, RequestType.WRITE, core_id)
        self.mapper.decode_into(request)
        return self._send_write(request)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------

    def _fill(self, request: Request) -> None:
        """Controller read completion: install line, wake waiters."""
        mshr = self._mshrs.pop(request.line_address, None)
        if mshr is None:
            return  # e.g. a probe request not tracked by an MSHR
        lru, tag = self._locate(request.line_address)
        if tag not in lru:
            self._install(request.line_address, lru, tag,
                          request.core_id)
        for core_id, token, notify in mshr.waiters:
            notify(core_id, token)

    def _install(self, line_address: int, lru: OrderedDict,
                 tag: int, core_id: int) -> None:
        if len(lru) >= self.assoc:
            victim_tag, dirty = lru.popitem(last=False)
            if dirty:
                self._writeback(line_address, victim_tag, core_id)
        lru[tag] = False

    def _writeback(self, incoming_line: int, victim_tag: int,
                   core_id: int) -> None:
        """Write a dirty victim back to DRAM.

        The writeback is attributed to the core whose fill evicted the
        victim; the true dirtying core is not tracked per line, and
        this keeps per-core ChargeCache tables seeing their own
        channel's writeback activations instead of funnelling them all
        into core 0's table.
        """
        set_idx = incoming_line % self.num_sets
        victim_line = victim_tag * self.num_sets + set_idx
        request = Request(victim_line, RequestType.WRITE, core_id)
        self.mapper.decode_into(request)
        self.writebacks += 1
        self._send_write(request, must_park=True)

    # ------------------------------------------------------------------
    # Controller interfacing with retry
    # ------------------------------------------------------------------

    def _send_read(self, request: Request, mshr: MSHREntry) -> None:
        controller = self.controllers[request.channel]
        if controller.enqueue_read(request, self.mem_cycle()):
            mshr.sent = True
        else:
            self._retry_reads.append(request)

    #: Back-pressure bound on parked (retry) writes from store misses.
    MAX_PARKED_WRITES = 32

    def _send_write(self, request: Request,
                    must_park: bool = False) -> bool:
        """Send a write to its controller.

        Dirty writebacks (``must_park``) are never dropped; store
        misses are refused (returning False, stalling the core) once
        the retry list reaches :data:`MAX_PARKED_WRITES`, providing
        back-pressure when a channel's write queue saturates.
        """
        controller = self.controllers[request.channel]
        if controller.enqueue_write(request, self.mem_cycle()):
            return True
        if must_park or len(self._retry_writes) < self.MAX_PARKED_WRITES:
            self._retry_writes.append(request)
            return True
        return False

    def tick(self) -> None:
        """Retry parked requests (called once per memory cycle)."""
        if self._retry_reads:
            still_waiting = []
            for request in self._retry_reads:
                controller = self.controllers[request.channel]
                if controller.enqueue_read(request, self.mem_cycle()):
                    mshr = self._mshrs.get(request.line_address)
                    if mshr is not None:
                        mshr.sent = True
                else:
                    still_waiting.append(request)
            self._retry_reads = still_waiting
        if self._retry_writes:
            still_waiting = []
            for request in self._retry_writes:
                controller = self.controllers[request.channel]
                if not controller.enqueue_write(request, self.mem_cycle()):
                    still_waiting.append(request)
            self._retry_writes = still_waiting

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def outstanding_misses(self) -> int:
        return len(self._mshrs)

    @property
    def has_parked_requests(self) -> bool:
        """Any requests waiting in the retry lists?

        While parked requests exist the event engine must visit every
        cycle, mirroring the dense engine's per-cycle :meth:`tick`
        retry: a parked read can newly succeed not only when queue room
        frees (a visited issue cycle) but also by write-queue
        forwarding the cycle after a matching store enqueues.
        """
        return bool(self._retry_reads or self._retry_writes)

    def contains(self, line_address: int) -> bool:
        lru, tag = self._locate(line_address)
        return tag in lru

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def hit_rate(self) -> float:
        accesses = (self.load_hits + self.load_misses
                    + self.store_hits + self.store_misses)
        hits = self.load_hits + self.store_hits
        return hits / accesses if accesses else 0.0

    def reset_stats(self) -> None:
        self.load_hits = 0
        self.load_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self.writebacks = 0
        self.mshr_merges = 0
