"""Trace-driven core model (Ramulator-style, paper Table 1).

The core dispatches up to ``issue_width`` instructions per CPU cycle
into a ``window_size``-entry instruction window.  Non-memory
instructions ("bubbles") retire immediately once every older load has
completed (in-order retirement barrier).  Loads occupy an MSHR until
their data returns; the window fills behind an outstanding load, and a
full window stalls dispatch - this is how DRAM latency becomes lost
IPC, and what ChargeCache's lower tRCD/tRAS recovers.

For simulation speed the core advances *analytically* between memory
events instead of ticking every CPU cycle: bubble stretches are
dispatched in closed form, and a blocked core sleeps until a completion
callback wakes it.  The observable behaviour (dispatch cycles, stall
conditions, MSHR occupancy) matches a per-cycle implementation; see
``tests/cpu/test_core.py`` for the equivalence checks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Optional

from repro.cpu.trace import TraceRecord

#: Reasons a core may be unable to dispatch.
BLOCK_NONE = 0
BLOCK_WINDOW = 1   # instruction window full behind an incomplete load
BLOCK_MSHR = 2     # all MSHRs in use
BLOCK_DEP = 3      # dependent access waiting for earlier loads
BLOCK_REJECT = 4   # memory system refused the access (queue full)


class Core:
    """One trace-driven core.

    Args:
        core_id: index used for request tagging and statistics.
        trace: iterator of :class:`TraceRecord` (must not be exhausted
            before the instruction limit is reached; use
            :func:`repro.cpu.trace.looped` for finite traces).
        issue: callback ``issue(core_id, line_address, is_write,
            token) -> bool`` that hands an access to the memory
            hierarchy.  ``token`` identifies the load for the later
            :meth:`on_load_complete` call.  A False return means the
            hierarchy cannot accept the access this cycle.
        issue_width / window_size / mshrs: Table 1 parameters.
        instruction_limit: retire target after which the core is
            *finished* (it keeps executing to preserve memory pressure
            in multi-core runs, but its IPC is frozen).
    """

    def __init__(self, core_id: int, trace: Iterator[TraceRecord],
                 issue: Callable[[int, int, bool, int], bool],
                 issue_width: int = 3, window_size: int = 128,
                 mshrs: int = 8, instruction_limit: int = 100_000):
        self.core_id = core_id
        self.trace = iter(trace)
        self.issue = issue
        self.issue_width = issue_width
        self.window_size = window_size
        self.mshrs = mshrs
        self.instruction_limit = instruction_limit

        self.now = 0                 # CPU cycle, advanced by run_until
        self.dispatched = 0          # instructions entered into the window
        self._slot = 0               # dispatch slots used in current cycle
        self.block_reason = BLOCK_NONE
        self._pending: Optional[TraceRecord] = None
        self._bubbles_left = 0
        # Outstanding loads: deque of [dispatch_index, done] pairs
        # (in dispatch order); _done_tokens maps token -> pair.
        self._inflight = deque()
        self._by_token = {}
        self._next_token = 0
        self.mshr_used = 0
        # Statistics.
        self.loads_issued = 0
        self.stores_issued = 0
        self.stall_cycles = 0
        self.finished = False
        self.finish_cycle: Optional[int] = None
        self.stats_start_cycle = 0
        self._stats_start_retired = 0

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    @property
    def retired(self) -> int:
        """In-order retirement barrier: everything older than the
        oldest incomplete load has retired."""
        if self._inflight:
            return min(self.dispatched, self._inflight[0][0])
        return self.dispatched

    @property
    def window_occupancy(self) -> int:
        return self.dispatched - self.retired

    @property
    def retired_since_reset(self) -> int:
        return self.retired - self._stats_start_retired

    @property
    def is_blocked(self) -> bool:
        return self.block_reason != BLOCK_NONE

    # ------------------------------------------------------------------
    # Memory-completion callback
    # ------------------------------------------------------------------

    def on_load_complete(self, token: int) -> None:
        """Called by the memory hierarchy when a load's data arrives."""
        entry = self._by_token.pop(token, None)
        if entry is None:
            raise KeyError(f"unknown load token {token}")
        entry[1] = True
        self.mshr_used -= 1
        while self._inflight and self._inflight[0][1]:
            self._inflight.popleft()
        # Any stall except an explicit reject can now be re-evaluated.
        if self.block_reason in (BLOCK_WINDOW, BLOCK_MSHR, BLOCK_DEP):
            self.block_reason = BLOCK_NONE
        self._check_finished()

    def retry_rejected(self) -> None:
        """Clear a memory-system rejection (called each memory cycle)."""
        if self.block_reason == BLOCK_REJECT:
            self.block_reason = BLOCK_NONE

    # ------------------------------------------------------------------
    # Event-engine wake-up query
    # ------------------------------------------------------------------

    def next_event_cpu_cycle(self) -> Optional[int]:
        """Latest CPU cycle the event engine may sleep through.

        Returns a CPU cycle ``X`` such that this core performs no
        externally visible action (memory-system ``issue`` call or
        instruction-limit crossing) while ``cpu_now <= X``; the system
        must step the core again at the first bus cycle whose CPU time
        exceeds ``X``.  Returns ``None`` when the core is quiescent
        until a load-completion callback (which the memory side already
        schedules a wake-up for).

        The bound is exact for uninterrupted bubble stretches - it is
        derived from the same closed-form slot arithmetic
        :meth:`_dispatch_bubbles` uses - and conservative (early)
        otherwise, which preserves dense-engine equivalence: waking at
        a cycle where nothing happens is exactly what the dense engine
        does every cycle.
        """
        if self.block_reason == BLOCK_REJECT:
            # Rejected stores retry (and re-count LLC misses) every
            # memory cycle in the dense engine; replicate that.
            return self.now
        if self.block_reason != BLOCK_NONE:
            return None  # woken by on_load_complete
        bubbles = self._bubbles_left
        if not bubbles:
            # Either a memory access is pending dispatch, or the next
            # trace record has not been fetched yet: step next cycle.
            return self.now
        if self._inflight:
            room = self.window_size - self.window_occupancy
            if room <= bubbles:
                # The window fills behind the outstanding load before
                # the bubble stretch ends; the core blocks without any
                # memory-visible action until a completion arrives.
                return None
            # Retirement is pinned by the oldest in-flight load, so no
            # instruction-limit crossing can happen before then either.
            return self.now + (self._slot + bubbles) // self.issue_width
        # Free-running bubble stretch: the next access dispatch attempt
        # lands one issue slot after the last bubble.
        wake = self.now + (self._slot + bubbles) // self.issue_width
        if not self.finished:
            needed = self.instruction_limit - self.retired_since_reset
            if needed <= bubbles:
                # The instruction limit is crossed inside this stretch;
                # finish_cycle is stamped at the end of the per-cycle
                # dispatch chunk containing the crossing, so the engine
                # must visit that exact bus cycle.
                cross = self.now - (-(self._slot + needed)
                                    // self.issue_width)
                wake = min(wake, cross - 1)
        return wake

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_until(self, target_cycle: int) -> None:
        """Advance the core to ``target_cycle`` CPU cycles."""
        while self.now < target_cycle:
            if self.block_reason != BLOCK_NONE:
                self.stall_cycles += target_cycle - self.now
                self.now = target_cycle
                return
            if self._bubbles_left:
                self._dispatch_bubbles(target_cycle)
                continue
            if self._pending is not None:
                if not self._dispatch_access(self._pending):
                    self.stall_cycles += target_cycle - self.now
                    self.now = target_cycle
                    return
                self._pending = None
                continue
            record = next(self.trace, None)
            if record is None:
                raise RuntimeError(
                    f"core {self.core_id}: trace exhausted after "
                    f"{self.dispatched} instructions; use an infinite "
                    "or looped trace")
            if record.bubbles:
                self._bubbles_left = record.bubbles
            self._pending = record

    def _dispatch_bubbles(self, target_cycle: int) -> None:
        """Dispatch as many bubbles as width/window/time allow."""
        budget_cycles = target_cycle - self.now
        slots = budget_cycles * self.issue_width - self._slot
        count = min(self._bubbles_left, slots)
        if self._inflight:
            room = self.window_size - self.window_occupancy
            if room <= 0:
                self.block_reason = BLOCK_WINDOW
                return
            count = min(count, room)
        if count <= 0:
            # Can't fit another instruction this quantum; consume time.
            self.stall_cycles += budget_cycles
            self.now = target_cycle
            self._slot = 0
            return
        self._bubbles_left -= count
        self.dispatched += count
        total_slots = self._slot + count
        self.now += total_slots // self.issue_width
        self._slot = total_slots % self.issue_width
        self._check_finished()

    def _dispatch_access(self, record: TraceRecord) -> bool:
        """Dispatch one load/store; returns False when stalled."""
        if record.dependent and self._inflight:
            self.block_reason = BLOCK_DEP
            return False
        if self._inflight and self.window_occupancy >= self.window_size:
            self.block_reason = BLOCK_WINDOW
            return False
        if not record.is_write and self.mshr_used >= self.mshrs:
            self.block_reason = BLOCK_MSHR
            return False
        token = self._next_token
        if not self.issue(self.core_id, record.line_address,
                          record.is_write, token):
            self.block_reason = BLOCK_REJECT
            return False
        self.dispatched += 1
        self._slot += 1
        if self._slot >= self.issue_width:
            self._slot = 0
            self.now += 1
        if record.is_write:
            self.stores_issued += 1
        else:
            self._next_token += 1
            entry = [self.dispatched - 1, False]
            self._inflight.append(entry)
            self._by_token[token] = entry
            self.mshr_used += 1
            self.loads_issued += 1
        self._check_finished()
        return True

    def _check_finished(self) -> None:
        if not self.finished and \
                self.retired_since_reset >= self.instruction_limit:
            self.finished = True
            self.finish_cycle = self.now

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def reset_stats(self, cycle: int) -> None:
        """Restart IPC accounting at ``cycle`` (end of warmup)."""
        self.stats_start_cycle = cycle
        self._stats_start_retired = self.retired
        self.loads_issued = 0
        self.stores_issued = 0
        self.stall_cycles = 0
        self.finished = False
        self.finish_cycle = None

    def ipc(self) -> float:
        """Post-warmup IPC, frozen at the instruction limit."""
        end = self.finish_cycle if self.finish_cycle is not None else self.now
        cycles = end - self.stats_start_cycle
        retired = min(self.retired_since_reset, self.instruction_limit)
        return retired / cycles if cycles > 0 else 0.0
