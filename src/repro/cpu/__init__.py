"""Trace-driven CPU front-end: cores, shared LLC and the system runner.

This reproduces Ramulator's CPU-trace mode at the same abstraction
level the paper used: a 3-wide core with a 128-entry instruction window
and 8 MSHRs, a shared 4 MB LLC, and a DRAM clock domain bridged at the
4 GHz / 800 MHz ratio.
"""

from repro.cpu.trace import TraceRecord, trace_from_tuples, read_trace_file, write_trace_file
from repro.cpu.core import Core
from repro.cpu.cache import SharedCache
from repro.cpu.system import System, RunResult

__all__ = [
    "TraceRecord",
    "trace_from_tuples",
    "read_trace_file",
    "write_trace_file",
    "Core",
    "SharedCache",
    "System",
    "RunResult",
]
