"""The full simulated system: cores + shared LLC + memory controllers.

Clocking follows the paper: cores at 4 GHz, DRAM bus at 800 MHz, so the
system advances in DRAM bus cycles and lets each core catch up by
``cpu_cycles_per_mem_cycle`` (5) CPU cycles per bus cycle.  Load
completions are delivered through a single event heap in CPU time.

A run executes until every core has retired ``instruction_limit``
post-warmup instructions (finished cores keep executing so memory
pressure stays realistic, exactly like trace-loop methodology in
Ramulator-based studies).

Two clock engines share the per-cycle body (:meth:`System._step`):

* **dense** ticks every bus cycle - the reference implementation.
* **event** (default) asks every component for its next wake-up - the
  earliest ready command from the per-bank timing state, the next
  refresh due, the next read completion, the next mechanism sweep, the
  next core memory access or instruction-limit crossing - and advances
  ``mem_cycle`` straight to the minimum.  Because every wake-up is a
  *lower bound* on the component's next observable action and all
  state changes happen at visited cycles, the visited set is a
  superset of the dense engine's action cycles and the two engines
  produce bit-identical statistics (see DESIGN.md and
  ``tests/integration/test_engine_parity.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.controller.address_mapping import AddressMapper
from repro.controller.controller import MemoryController
from repro.core import registry
from repro.cpu.cache import SharedCache
from repro.cpu.core import Core
from repro.cpu.trace import TraceRecord
from repro.dram.organization import Organization
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import NEVER, TimingParameters
from repro.stats.probes import CompositeProbe
from repro.stats.reuse import RowReuseProfiler
from repro.stats.rltl import RLTLProbe


@dataclass
class RunResult:
    """Everything the harness needs from one simulation run."""

    config: SimulationConfig
    mem_cycles: int
    cpu_cycles: int
    instructions: List[int]
    core_cycles: List[int]
    ipcs: List[float]
    llc_hit_rate: float
    llc_load_misses: int
    activations: int
    act_reduced: int
    reads: int
    writes: int
    refreshes: int
    row_hit_rate: float
    average_read_latency_cycles: float
    mechanism_lookups: int
    mechanism_hits: int
    active_bank_cycles: int
    rank_active_cycles: int = 0
    #: Total post-warmup instructions retired by all cores, including
    #: work done by cores that kept executing after reaching their
    #: instruction limit (trace-loop methodology).  Use this for
    #: iso-work comparisons such as energy per instruction.
    work_instructions: int = 0
    truncated: bool = False
    rltl: Optional[RLTLProbe] = None
    reuse: Optional[RowReuseProfiler] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mechanism_hit_rate(self) -> float:
        if not self.mechanism_lookups:
            return 0.0
        return self.mechanism_hits / self.mechanism_lookups

    @property
    def total_ipc(self) -> float:
        return sum(self.ipcs)

    def rmpkc(self) -> float:
        """Row misses (activations) per kilo CPU cycle."""
        if self.cpu_cycles <= 0:
            return 0.0
        return self.activations * 1000.0 / self.cpu_cycles

    def summary(self) -> str:
        """Human-readable one-paragraph run summary."""
        lines = [
            f"mechanism={self.config.mechanism} "
            f"cores={self.config.processor.num_cores} "
            f"channels={self.config.dram.channels} "
            f"policy={self.config.controller.row_policy}",
            f"cycles: {self.mem_cycles} bus / {self.cpu_cycles} cpu"
            + (" (truncated)" if self.truncated else ""),
            f"IPC: total {self.total_ipc:.3f} "
            f"[{', '.join(f'{i:.3f}' for i in self.ipcs)}]",
            f"DRAM: {self.activations} ACT ({self.rmpkc():.2f} RMPKC), "
            f"{self.reads} RD, {self.writes} WR, "
            f"{self.refreshes} REF, row-hit {self.row_hit_rate:.0%}, "
            f"avg read latency {self.average_read_latency_cycles:.1f} cyc",
            f"LLC hit rate: {self.llc_hit_rate:.0%}",
        ]
        if self.mechanism_lookups:
            lines.append(
                f"mechanism: {self.mechanism_hits}/{self.mechanism_lookups}"
                f" activations accelerated ({self.mechanism_hit_rate:.0%})")
        return "\n".join(lines)


def mechanism_invariant_config(config: SimulationConfig) -> SimulationConfig:
    """``config`` with every mechanism-defining field normalized away.

    Two configurations whose invariant forms are equal simulate the
    identical system up to the latency mechanism's decisions — the
    compatibility condition for sharing one trace replay in
    :meth:`System.run_batch` (and for the harness's batch grouping).
    """
    from repro.config import ChargeCacheConfig, NUATConfig
    return replace(config, mechanism="none",
                   chargecache=ChargeCacheConfig(), nuat=NUATConfig(),
                   temperature_c=85.0)


class System:
    """Wires cores, LLC and controllers together and runs the clock."""

    def __init__(self, config: SimulationConfig,
                 traces: Sequence[Iterator[TraceRecord]],
                 enable_rltl: bool = False,
                 rltl_time_scale: float = 1.0,
                 enable_reuse: bool = False,
                 log_commands: bool = False,
                 timing: Optional[TimingParameters] = None):
        config.validate()
        if len(traces) != config.processor.num_cores:
            raise ValueError(
                f"need {config.processor.num_cores} traces, got {len(traces)}")
        self.config = config
        if timing is None:
            # Resolve the configured timing grade (DDR3-1600 unless the
            # scenario names another standard); an explicit ``timing``
            # argument still wins for tests and frequency sweeps.
            from repro.dram.standards import preset
            timing = preset(config.dram.standard)
        self.timing = timing
        self.organization = Organization.from_config(
            config.dram, config.cache.line_bytes)
        self.mapper = AddressMapper(self.organization)
        self.ratio = config.cpu_cycles_per_mem_cycle

        self.rltl_probe = None
        if enable_rltl:
            self.rltl_probe = RLTLProbe(self.timing,
                                        time_scale=rltl_time_scale)
        self.reuse_probe = RowReuseProfiler() if enable_reuse else None
        probes = [p for p in (self.rltl_probe, self.reuse_probe)
                  if p is not None]
        if not probes:
            controller_probe = None
        elif len(probes) == 1:
            controller_probe = probes[0]
        else:
            controller_probe = CompositeProbe(probes)

        self.controllers: List[MemoryController] = []
        for ch in range(self.organization.channels):
            refresh = RefreshScheduler(self.timing, self.organization.ranks,
                                       self.organization.rows)
            # Channels build their latency mechanism through the
            # registry: config.mechanism is a spec string (possibly a
            # +-composition with inline parameter overrides), resolved
            # against this config's per-mechanism parameter blocks.
            mechanism = registry.build(
                config.mechanism,
                registry.MechanismContext(
                    timing=self.timing,
                    num_cores=config.processor.num_cores,
                    refresh_scheduler=refresh, config=config))
            controller = MemoryController(
                ch, self.timing, self.organization.ranks,
                self.organization.banks, self.organization.rows,
                config.controller, mechanism, refresh=refresh,
                rltl_probe=controller_probe, log_commands=log_commands)
            self.controllers.append(controller)
            if self.rltl_probe is not None:
                self.rltl_probe.refresh_schedulers[ch] = refresh

        self.mem_cycle = 0
        self._events: List = []  # (cpu_time, seq, core_id, token)
        self._event_seq = 0
        self._warmed = config.warmup_cpu_cycles == 0

        self.llc = SharedCache(config.cache, self.mapper, self.controllers,
                               hit_notify=self._schedule_hit,
                               current_mem_cycle=lambda: self.mem_cycle)

        proc = config.processor
        self.cores: List[Core] = []
        for core_id in range(proc.num_cores):
            core = Core(core_id, traces[core_id], issue=self._core_issue,
                        issue_width=proc.issue_width,
                        window_size=proc.window_size,
                        mshrs=proc.mshrs_per_core,
                        instruction_limit=config.instruction_limit)
            self.cores.append(core)

    # ------------------------------------------------------------------
    # Wiring callbacks
    # ------------------------------------------------------------------

    def _core_issue(self, core_id: int, line_address: int, is_write: bool,
                    token: int) -> bool:
        if is_write:
            return self.llc.access_store(core_id, line_address)
        return self.llc.access_load(core_id, line_address, token,
                                    notify=self._load_done)

    def _load_done(self, core_id: int, token: int) -> None:
        self.cores[core_id].on_load_complete(token)

    def _schedule_hit(self, core_id: int, token: int, delay: int) -> None:
        cpu_time = self.mem_cycle * self.ratio + delay
        self._event_seq += 1
        heapq.heappush(self._events,
                       (cpu_time, self._event_seq, core_id, token))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, max_mem_cycles: Optional[int] = None) -> RunResult:
        """Run to completion (all cores at their instruction limit).

        ``max_mem_cycles`` is a safety stop; if hit, the result is
        flagged ``truncated`` and IPCs reflect the partial run.
        Dispatches to the engine named by ``config.engine``.
        """
        self._warmed = self.config.warmup_cpu_cycles == 0
        # Engine-efficiency instrumentation (not part of RunResult, so
        # cache keys and artifacts are unaffected): how many bus cycles
        # the engine actually stepped.
        self.visited_cycles = 0
        if self.config.engine == "dense":
            return self._run_dense(max_mem_cycles)
        return self._run_event(max_mem_cycles)

    @classmethod
    def run_batch(cls, configs: Sequence[SimulationConfig],
                  traces: Sequence[Iterator[TraceRecord]],
                  max_mem_cycles: Optional[int] = None,
                  enable_rltl: bool = False,
                  rltl_time_scale: float = 1.0,
                  enable_reuse: bool = False,
                  timing: Optional[TimingParameters] = None,
                  telemetry: Optional[Dict] = None) -> List[RunResult]:
        """Run N mechanism variants of one workload off one trace tape.

        Every config must describe the *same* system except for its
        latency mechanism (checked via
        :func:`mechanism_invariant_config`); ``traces`` is consumed
        once into a :class:`~repro.cpu.trace.TraceTape` that all
        variants replay.  Each result is bit-identical to the variant's
        standalone serial run — the contract the harness's run cache
        depends on — via two complementary paths:

        * **Full run**: the variant is simulated normally (sharing only
          the trace tape), with a
          :class:`~repro.core.replay.RecordingMechanism` logging its
          decision stream.  Closed-loop timing feedback makes any
          cross-variant computation sharing *after* the first diverging
          mechanism decision unsound (a hit changes tRCD, the read
          completes earlier, the core unblocks earlier, and every
          downstream cycle shifts), so cycle 0 is the only state-fork
          point — full runs share nothing downstream of the tape.
        * **Decision-replay collapse**: before paying for a full run,
          the variant's fresh mechanism state is replayed against every
          witness log so far (:mod:`repro.core.replay`).  If its
          decisions match some witness everywhere, its run would
          retrace that witness's trajectory exactly, and the result is
          the witness's with this variant's config attached.

        Mechanisms whose decisions are not a pure function of the
        event stream (``supports_decision_replay = False``, e.g. NUAT)
        always take the full-run path.

        Collapsed results share the witness's ``rltl``/``reuse`` probe
        objects (their contents are identical by the argument above);
        the scalar/list statistics are copied.

        ``telemetry``, when given, receives ``{"full_runs": F,
        "collapsed": C}`` for benchmarking and reporting.
        """
        configs = list(configs)
        if not configs:
            return []
        invariant = mechanism_invariant_config(configs[0])
        for cfg in configs[1:]:
            if mechanism_invariant_config(cfg) != invariant:
                raise ValueError(
                    "batch variants must differ only in mechanism-"
                    f"defining fields; {cfg.mechanism!r} variant "
                    "changes the shared platform")
        from repro.core.replay import (
            MechanismEventLog,
            RecordingMechanism,
            replay_decisions_match,
        )
        from repro.cpu.trace import TraceTape

        tape = TraceTape(traces)
        witnesses: List = []  # (per-channel logs, RunResult)
        results: List[RunResult] = []
        full_runs = 0
        for cfg in configs:
            collapsed = None
            if witnesses:
                channels = cfg.dram.channels
                mechanisms = _replay_mechanisms(cfg, channels, timing)
                if mechanisms is not None:
                    for logs, witness_result in witnesses:
                        if replay_decisions_match(logs, mechanisms):
                            collapsed = _clone_result(witness_result, cfg)
                            break
                        # A failed replay leaves the fork's state
                        # dirty; later witnesses need a clean one.
                        mechanisms = _replay_mechanisms(cfg, channels,
                                                        timing)
                        if mechanisms is None:  # pragma: no cover
                            break
            if collapsed is not None:
                results.append(collapsed)
                continue
            system = cls(cfg, tape.readers(), enable_rltl=enable_rltl,
                         rltl_time_scale=rltl_time_scale,
                         enable_reuse=enable_reuse, timing=timing)
            logs = [MechanismEventLog() for _ in system.controllers]
            for controller, log in zip(system.controllers, logs):
                controller.mechanism = RecordingMechanism(
                    controller.mechanism, log)
            result = system.run(max_mem_cycles=max_mem_cycles)
            full_runs += 1
            witnesses.append((logs, result))
            results.append(result)
        if telemetry is not None:
            telemetry["full_runs"] = full_runs
            telemetry["collapsed"] = len(configs) - full_runs
        return results

    def _step(self, mem: int) -> bool:
        """The per-bus-cycle body shared by both engines.

        Delivers due CPU-side events, ticks controllers and the LLC,
        lets every core catch up to CPU time, and handles the warmup
        boundary.  Returns True when every core is finished.
        """
        cpu_now = mem * self.ratio
        cpu_prev = cpu_now - self.ratio
        events = self._events
        cores = self.cores
        idle_finished = self.config.idle_finished_cores
        warmed = self._warmed
        for core in cores:
            # Catch skipped cores up to the previous cycle's CPU time
            # first: in the dense engine a blocked core still consumes
            # wall-clock every cycle, so time skipped while stalled
            # must not be handed back as dispatch budget once a
            # completion unblocks it.  The wake-up bounds guarantee no
            # core can issue a memory access before ``cpu_prev``, so
            # this advance is side-effect-free (dense mode: no-op,
            # ``now`` is already at ``cpu_prev``).
            if core.now < cpu_prev and \
                    not (idle_finished and warmed and core.finished):
                core.run_until(cpu_prev)
        while events and events[0][0] <= cpu_now:
            _, _, core_id, token = heapq.heappop(events)
            cores[core_id].on_load_complete(token)
        for controller in self.controllers:
            controller.tick(mem)
        self.llc.tick()
        all_finished = True
        for core in cores:
            if idle_finished and warmed and core.finished:
                continue
            core.retry_rejected()
            core.run_until(cpu_now)
            if not core.finished:
                all_finished = False
        if not warmed and cpu_now >= self.config.warmup_cpu_cycles:
            self._warmed = True
            self._reset_stats(cpu_now, mem)
            all_finished = False
        return all_finished

    def _run_dense(self, max_mem_cycles: Optional[int]) -> RunResult:
        """Reference engine: visit every bus cycle."""
        truncated = False
        while True:
            self.mem_cycle += 1
            self.visited_cycles += 1
            all_finished = self._step(self.mem_cycle)
            if self._warmed and all_finished:
                break
            if max_mem_cycles is not None and self.mem_cycle >= max_mem_cycles:
                truncated = True
                break
        return self._collect(truncated)

    def _run_event(self, max_mem_cycles: Optional[int]) -> RunResult:
        """Event engine: advance straight to the next wake-up cycle.

        Cycles between wake-ups are provably no-ops (no command can
        issue, no completion fires, no core can touch memory), so
        skipping them leaves every statistic bit-identical to the
        dense engine.
        """
        truncated = False
        while True:
            target = self._next_wake_cycle()
            if target is None:
                if max_mem_cycles is None:
                    raise RuntimeError(
                        "event engine deadlock: no pending wake-ups but "
                        "cores are not finished")
                target = max_mem_cycles
            if max_mem_cycles is not None and target > max_mem_cycles:
                target = max_mem_cycles
            self.mem_cycle = max(target, self.mem_cycle + 1)
            self.visited_cycles += 1
            all_finished = self._step(self.mem_cycle)
            if self._warmed and all_finished:
                break
            if max_mem_cycles is not None and self.mem_cycle >= max_mem_cycles:
                truncated = True
                break
        return self._collect(truncated)

    def _next_wake_cycle(self) -> Optional[int]:
        """Minimum over every component's next-event bid, or None when
        nothing is pending (only possible if the system is deadlocked
        or every core is quiescent forever)."""
        cycle = self.mem_cycle
        ratio = self.ratio
        if self.llc.has_parked_requests:
            # The dense engine retries parked LLC requests every cycle;
            # a parked read may newly forward from the write queue the
            # cycle after a matching store arrives, which no controller
            # or core bid covers.  Step densely until the lists drain.
            return cycle + 1
        nxt = NEVER
        for controller in self.controllers:
            w = controller.next_event_cycle(cycle)
            if w < nxt:
                nxt = w
                if nxt <= cycle + 1:
                    return cycle + 1
        if self._events:
            # Delivered at the first bus cycle with mem*ratio >= stamp.
            w = -(-self._events[0][0] // ratio)
            if w < nxt:
                nxt = w
        if not self._warmed:
            w = -(-self.config.warmup_cpu_cycles // ratio)
            if w < nxt:
                nxt = w
        idle_finished = self.config.idle_finished_cores
        for core in self.cores:
            if idle_finished and self._warmed and core.finished:
                continue
            c = core.next_event_cpu_cycle()
            if c is None:
                continue
            # The core must be stepped at the first bus cycle whose CPU
            # time strictly exceeds c.
            w = c // ratio + 1
            if w < nxt:
                nxt = w
                if nxt <= cycle + 1:
                    return cycle + 1
        return nxt if nxt < NEVER else None

    def _reset_stats(self, cpu_now: int, mem: int) -> None:
        for controller in self.controllers:
            controller.reset_stats(mem)
        for core in self.cores:
            core.reset_stats(cpu_now)
        self.llc.reset_stats()
        self._warmup_end_cpu = cpu_now
        self._warmup_end_mem = mem

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------

    def _collect(self, truncated: bool) -> RunResult:
        start_mem = getattr(self, "_warmup_end_mem", 0)
        start_cpu = getattr(self, "_warmup_end_cpu", 0)
        mem_cycles = self.mem_cycle - start_mem
        cpu_cycles = self.mem_cycle * self.ratio - start_cpu

        instructions = []
        core_cycles = []
        ipcs = []
        limit = self.config.instruction_limit
        for core in self.cores:
            retired = min(core.retired_since_reset, limit)
            end = core.finish_cycle if core.finish_cycle is not None \
                else core.now
            cycles = max(1, end - core.stats_start_cycle)
            instructions.append(retired)
            core_cycles.append(cycles)
            ipcs.append(retired / cycles)

        activations = sum(c.stats.activations for c in self.controllers)
        act_reduced = sum(c.stats.act_reduced for c in self.controllers)
        reads = sum(c.stats.reads for c in self.controllers)
        writes = sum(c.stats.writes for c in self.controllers)
        refreshes = sum(c.stats.refreshes for c in self.controllers)
        lookups = sum(c.mechanism.lookups for c in self.controllers)
        hits = sum(c.mechanism.hits for c in self.controllers)
        row_hits = sum(c.stats.read_row_hits + c.stats.write_row_hits
                       for c in self.controllers)
        col_cmds = reads + writes
        lat_sum = sum(c.stats.read_latency_sum for c in self.controllers)
        lat_cnt = sum(c.stats.read_count for c in self.controllers)
        active = sum(c.active_cycles(self.mem_cycle)
                     for c in self.controllers)
        rank_active = sum(c.rank_active_cycles(self.mem_cycle)
                          for c in self.controllers)
        work = sum(core.retired_since_reset for core in self.cores)

        return RunResult(
            config=self.config,
            mem_cycles=mem_cycles,
            cpu_cycles=cpu_cycles,
            instructions=instructions,
            core_cycles=core_cycles,
            ipcs=ipcs,
            llc_hit_rate=self.llc.hit_rate(),
            llc_load_misses=self.llc.load_misses,
            activations=activations,
            act_reduced=act_reduced,
            reads=reads,
            writes=writes,
            refreshes=refreshes,
            row_hit_rate=(row_hits / col_cmds) if col_cmds else 0.0,
            average_read_latency_cycles=(lat_sum / lat_cnt) if lat_cnt else 0.0,
            mechanism_lookups=lookups,
            mechanism_hits=hits,
            active_bank_cycles=active,
            rank_active_cycles=rank_active,
            work_instructions=work,
            truncated=truncated,
            rltl=self.rltl_probe,
            reuse=self.reuse_probe,
        )


# ----------------------------------------------------------------------
# Batch-evaluator helpers
# ----------------------------------------------------------------------

def _replay_mechanisms(config: SimulationConfig, channels: int,
                       timing: Optional[TimingParameters]):
    """Fresh per-channel mechanisms of ``config`` for decision replay.

    Returns None when the configured mechanism cannot be replayed
    (unsupported, or it demands per-channel context such as NUAT's
    refresh scheduler) — the caller then runs the variant in full.
    """
    from repro.core.replay import fork_for_replay
    if timing is None:
        from repro.dram.standards import preset
        timing = preset(config.dram.standard)
    try:
        prototype = registry.build(
            config.mechanism,
            registry.MechanismContext(
                timing=timing, num_cores=config.processor.num_cores,
                refresh_scheduler=None, config=config))
    except ValueError:
        return None
    return fork_for_replay(prototype, channels)


def _clone_result(witness: RunResult, config: SimulationConfig) -> RunResult:
    """The witness's result re-labelled for a collapsed variant.

    Mutable containers are copied so downstream consumers can never
    alias two cached variants through one list/dict; the ``rltl`` and
    ``reuse`` probe objects are shared deliberately (their contents are
    identical for a collapsed variant, and they are excluded from the
    cache codec's plain fields).
    """
    return replace(
        witness, config=config,
        instructions=list(witness.instructions),
        core_cycles=list(witness.core_cycles),
        ipcs=list(witness.ipcs),
        extra=dict(witness.extra))
