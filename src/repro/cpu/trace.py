"""Trace records and Ramulator-compatible trace files.

A trace is an iterable of :class:`TraceRecord`.  Each record encodes:

* ``bubbles`` - how many non-memory instructions precede the access,
* ``line_address`` - the 64 B cache-line address touched,
* ``is_write`` - store (True) or load (False),
* ``dependent`` - the access must wait for all earlier loads
  (models pointer-chasing, which bounds memory-level parallelism).

File format: the native format is one access per line::

    <bubbles> R|W <hex-line-address> [D]

The loader also accepts Ramulator's CPU trace format
(``<bubbles> <read-byte-addr> [<write-byte-addr>]``), where a write
address expands to a separate write record.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, NamedTuple, Sequence, Tuple


class TraceRecord(NamedTuple):
    bubbles: int
    line_address: int
    is_write: bool
    dependent: bool = False


def trace_from_tuples(tuples: Sequence[Tuple]) -> List[TraceRecord]:
    """Build records from (bubbles, line, is_write[, dependent]) tuples."""
    records = []
    for item in tuples:
        if len(item) == 3:
            bubbles, line, is_write = item
            records.append(TraceRecord(bubbles, line, bool(is_write)))
        elif len(item) == 4:
            bubbles, line, is_write, dep = item
            records.append(TraceRecord(bubbles, line, bool(is_write),
                                       bool(dep)))
        else:
            raise ValueError(f"bad trace tuple {item!r}")
    return records


def looped(trace: Sequence[TraceRecord]) -> Iterator[TraceRecord]:
    """Endlessly repeat a finite trace (cores never starve)."""
    if not trace:
        raise ValueError("cannot loop an empty trace")
    return itertools.cycle(trace)


class TraceTape:
    """Record-once, replay-many view over per-core trace iterators.

    The batch evaluator replays one workload under N mechanism
    variants; generating the synthetic traces N times would repeat the
    RNG work and, worse, require keeping N generator states in sync.
    A tape draws each record from the underlying source exactly once,
    memoizes it, and hands out any number of independent readers.  The
    tape extends lazily, so variants that consume different record
    counts (a faster variant finishes the instruction budget with
    fewer trace records in flight) each see exactly the records they
    ask for, in the source's order.
    """

    def __init__(self, sources: Sequence[Iterator[TraceRecord]]):
        self._sources = [iter(source) for source in sources]
        self._records: List[List[TraceRecord]] = [[] for _ in sources]

    def __len__(self) -> int:
        return len(self._sources)

    def reader(self, core_id: int) -> Iterator[TraceRecord]:
        """A fresh iterator over core ``core_id``'s trace from the top."""
        records = self._records[core_id]
        source = self._sources[core_id]
        i = 0
        while True:
            if i >= len(records):
                try:
                    records.append(next(source))
                except StopIteration:
                    return
            yield records[i]
            i += 1

    def readers(self) -> List[Iterator[TraceRecord]]:
        """One fresh reader per core, for a System's ``traces``."""
        return [self.reader(core_id) for core_id in range(len(self))]


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------

def write_trace_file(path: str, records: Iterable[TraceRecord]) -> int:
    """Write records in the native format; returns the record count."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for rec in records:
            op = "W" if rec.is_write else "R"
            dep = " D" if rec.dependent else ""
            fh.write(f"{rec.bubbles} {op} {rec.line_address:#x}{dep}\n")
            count += 1
    return count


def read_trace_file(path: str) -> List[TraceRecord]:
    """Read a trace file in native or Ramulator CPU format."""
    records: List[TraceRecord] = []
    with open(path, encoding="ascii") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                records.extend(_parse_parts(parts))
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from None
    return records


def _parse_parts(parts: List[str]) -> List[TraceRecord]:
    if len(parts) >= 2 and parts[1] in ("R", "W"):
        # Native format.
        bubbles = int(parts[0])
        addr = int(parts[2], 0)
        dependent = len(parts) > 3 and parts[3] == "D"
        return [TraceRecord(bubbles, addr, parts[1] == "W", dependent)]
    if len(parts) == 2:
        # Ramulator: <bubbles> <read-byte-address>
        return [TraceRecord(int(parts[0]), int(parts[1], 0) >> 6, False)]
    if len(parts) == 3:
        # Ramulator: <bubbles> <read-byte-address> <write-byte-address>
        bubbles = int(parts[0])
        return [TraceRecord(bubbles, int(parts[1], 0) >> 6, False),
                TraceRecord(0, int(parts[2], 0) >> 6, True)]
    raise ValueError(f"unparseable trace line: {' '.join(parts)!r}")
