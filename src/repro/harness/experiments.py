"""One driver per paper table/figure (see DESIGN.md's experiment index).

Every ``run_*`` function returns a plain dict (JSON-friendly) with a
``rows`` list shaped like the paper's artifact, plus enough metadata to
render or assert on.  Workload subsets default to the full paper sets;
benchmarks pass smaller subsets where a sweep would otherwise dominate
wall-clock time (recorded in EXPERIMENTS.md).

Execution model: each simulation-backed experiment first **declares**
its complete sweep as a flat list of :class:`~repro.harness.spec.RunSpec`
points (including the alone-runs that weighted speedup needs) and hands
it to :func:`repro.harness.pool.execute_sweep`, which fans the points
out over worker processes and the persistent run cache.  The
aggregation code below then re-requests runs through the classic
``run_workload``/``run_mix`` entry points, which hit the freshly
back-filled in-process memo — so shaping logic stays sequential and
readable while all simulation happens in parallel.  Experiments with a
sweep attach a ``"cache"`` annotation to their result dict recording,
per point, whether it was served from memory, disk, or computed.

Declaration is separate from aggregation so sweeps compose: every
``_*_specs`` helper is registered in :data:`SWEEP_DECLARATIONS`, and
:func:`prefetch_experiments` concatenates any set of experiments'
sweeps, dedupes them, and executes the union through **one** shared
process pool.  The CLI's ``all`` command uses this so the tail of one
figure's sweep never idles workers the next figure could use; each
experiment's own ``_prefetch`` then finds everything in the memo and
forks nothing (DESIGN.md section 5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.circuit.latency_tables import (
    BASELINE_TIMINGS_NS,
    DURATION_TABLE_NS,
    reductions_for_duration_ms,
)
from repro.circuit.spice import bitline_transient, derive_timing_table
from repro.config import eight_core_config, single_core_config
from repro.dram.timing import DDR3_1600
from repro.energy.drampower import access_rate_for_run, energy_for_run
from repro.energy.mcpat import hcrac_overhead, overhead_for_config
from repro.dram.standards import preset, profile, reduction_cycles_for
from repro.harness import aggregate, pool, scenarios
from repro.harness.runner import (
    Scale,
    alone_ipcs_for_mix,
    alone_specs_for_mix,
    current_scale,
    mix_spec,
    run_mix,
    run_scenario,
    run_trace,
    run_workload,
    scenario_spec,
    trace_spec,
    workload_spec,
)
from repro.harness.spec import RunSpec, dedupe_specs
from repro.stats.metrics import weighted_speedup
from repro.workloads.mixes import MIX_NAMES
from repro.workloads.spec_like import WORKLOAD_NAMES

#: Mechanisms compared in Figure 7 (plus the implicit baseline).
FIG7_MECHANISMS = ("nuat", "chargecache", "chargecache+nuat", "lldram")

#: Capacity sweep of Figures 9/10 (entries).
FIG9_CAPACITIES = (64, 128, 256, 512, 1024, 2048)

#: Caching-duration sweep of Figure 11 (ms).
FIG11_DURATIONS = (1.0, 4.0, 8.0, 16.0)

#: Default workloads for the scenario-matrix experiments.  Two mixes
#: keep the full matrix (10 scaling + 6 extra standards platforms,
#: baseline + ChargeCache each) affordable at default scale; pass
#: ``workloads`` to widen or narrow.
SCENARIO_WORKLOADS = ("w1", "w2")

#: Pool width for experiment sweeps; None defers to REPRO_JOBS / serial.
_default_jobs: Optional[int] = None

#: Optional per-point progress callback (the CLI installs one).
_progress_fn = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the pool width used by every subsequent experiment sweep."""
    global _default_jobs
    if jobs is not None:
        pool.resolve_jobs(jobs)  # validate eagerly
    _default_jobs = jobs


def set_progress(progress) -> None:
    """Install a progress callback for sweep execution (None = quiet)."""
    global _progress_fn
    _progress_fn = progress


def _prefetch(specs: Sequence[RunSpec]) -> pool.Sweep:
    """Fan a declared sweep out; results land in the runner memo."""
    return pool.execute_sweep(specs, jobs=_default_jobs,
                              progress=_progress_fn)


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _cc(entries: Optional[int] = None,
        duration_ms: Optional[float] = None,
        unbounded: bool = False) -> str:
    """A parameterized ChargeCache mechanism spec string.

    The capacity/duration sweeps are spec-string generation, not
    config surgery: ``_cc(entries=256)`` -> ``"chargecache(entries=256)"``.
    Normalization folds these inline parameters back into the
    RunSpec's canonical shorthand fields, so the generated specs land
    on exactly the keys the pre-registry ``cc_entries``/
    ``cc_duration_ms`` keyword sweeps used.
    """
    params = []
    if entries is not None:
        params.append(f"entries={entries}")
    if duration_ms is not None:
        params.append(f"duration_ms={duration_ms!r}")
    if unbounded:
        params.append("unbounded=true")
    return f"chargecache({','.join(params)})" if params else "chargecache"


def _cc_axes(entries: Optional[int] = None,
             duration_ms: Optional[float] = None,
             unbounded: bool = False) -> Dict:
    """Canonical frame-filter axes for a parameterized ChargeCache run.

    Registry normalization folds default-valued parameters away
    (``entries=128`` hashes like plain ``chargecache``), so frame
    filters must match the *canonical* axis values, not the sweep's
    literal parameters.
    """
    from repro.core.registry import extract_run_params
    mechanism, entries, duration_ms, unbounded = extract_run_params(
        _cc(entries=entries, duration_ms=duration_ms,
            unbounded=unbounded))
    return {"mechanism": mechanism, "cc_entries": entries,
            "cc_duration_ms": duration_ms, "cc_unbounded": unbounded}


# ----------------------------------------------------------------------
# Figure 3: 8ms-RLTL vs accessed-within-8ms-of-refresh
# ----------------------------------------------------------------------

def _fig3_specs(mode: str, workloads: Optional[Sequence[str]],
                scale: Scale) -> List[RunSpec]:
    return [_spec(mode, name, "none", scale, enable_rltl=True)
            for name in _names_for(mode, workloads)]


def run_fig3(mode: str = "single",
             workloads: Optional[Sequence[str]] = None,
             scale: Optional[Scale] = None) -> Dict:
    """Fraction of activations within 8 ms of own precharge vs refresh."""
    scale = scale or current_scale()
    names = _names_for(mode, workloads)
    sweep = _prefetch(_fig3_specs(mode, workloads, scale))
    rows = []
    for name in names:
        result = _run_for(mode, name, "none", scale, enable_rltl=True)
        probe = result.rltl
        rows.append({
            "workload": name,
            "rltl_8ms": probe.rltl(8.0),
            "refresh_8ms": probe.refresh_fraction(8.0),
            "activations": probe.activations,
        })
    rows.append({
        "workload": "AVG",
        "rltl_8ms": _mean(r["rltl_8ms"] for r in rows),
        "refresh_8ms": _mean(r["refresh_8ms"] for r in rows),
        "activations": sum(r["activations"] for r in rows),
    })
    return {"id": f"fig3{'a' if mode == 'single' else 'b'}",
            "mode": mode, "time_scale": scale.time_scale, "rows": rows,
            "cache": sweep.annotation()}


# ----------------------------------------------------------------------
# Figure 4: RLTL vs interval, open vs closed row policy
# ----------------------------------------------------------------------

def _fig4_specs(mode: str, workloads: Optional[Sequence[str]],
                scale: Scale) -> List[RunSpec]:
    return [_spec(mode, name, "none", scale, enable_rltl=True,
                  row_policy=policy)
            for name in _names_for(mode, workloads)
            for policy in ("open", "closed")]


def run_fig4(mode: str = "single",
             workloads: Optional[Sequence[str]] = None,
             intervals_ms: Sequence[float] = (0.125, 0.25, 0.5, 1.0, 32.0),
             scale: Optional[Scale] = None) -> Dict:
    """t-RLTL for several intervals under both row policies."""
    scale = scale or current_scale()
    names = _names_for(mode, workloads)
    sweep = _prefetch(_fig4_specs(mode, workloads, scale))
    rows = []
    for name in names:
        row = {"workload": name}
        for policy in ("open", "closed"):
            result = _run_for(mode, name, "none", scale, enable_rltl=True,
                              row_policy=policy)
            for interval in intervals_ms:
                row[f"{policy}_{interval}ms"] = result.rltl.rltl(interval)
        rows.append(row)
    avg = {"workload": "AVG"}
    for key in rows[0]:
        if key != "workload":
            avg[key] = _mean(r[key] for r in rows)
    rows.append(avg)
    return {"id": f"fig4{'a' if mode == 'single' else 'b'}",
            "mode": mode, "intervals_ms": list(intervals_ms),
            "time_scale": scale.time_scale, "rows": rows,
            "cache": sweep.annotation()}


# ----------------------------------------------------------------------
# Figure 6: bitline voltage transients
# ----------------------------------------------------------------------

def run_fig6(partial_age_ms: float = 64.0,
             samples: int = 40) -> Dict:
    """Bitline voltage vs time for fully vs partially charged cells."""
    full = bitline_transient(0.0, t_end_ns=45.0)
    partial = bitline_transient(partial_age_ms, t_end_ns=45.0)

    def sample(tr):
        step = max(1, len(tr.times_ns) // samples)
        return [(round(tr.times_ns[i], 2), round(tr.bitline_v[i], 4))
                for i in range(0, len(tr.times_ns), step)]

    return {
        "id": "fig6",
        "full": {
            "ready_ns": full.ready_time_ns,
            "restore_ns": full.restore_time_ns,
            "curve": sample(full),
        },
        "partial": {
            "age_ms": partial_age_ms,
            "ready_ns": partial.ready_time_ns,
            "restore_ns": partial.restore_time_ns,
            "curve": sample(partial),
        },
        "trcd_reduction_ns": partial.ready_time_ns - full.ready_time_ns,
        "tras_reduction_ns": partial.restore_time_ns - full.restore_time_ns,
        "paper": {"ready_full_ns": 10.0, "ready_partial_ns": 14.5,
                  "trcd_reduction_ns": 4.5, "tras_reduction_ns": 9.6},
    }


# ----------------------------------------------------------------------
# Table 2: caching duration -> tRCD/tRAS
# ----------------------------------------------------------------------

def run_table2() -> Dict:
    """Published vs model-derived duration->timing table."""
    model = derive_timing_table(tuple(DURATION_TABLE_NS))
    rows = [{
        "duration_ms": "baseline",
        "paper_trcd_ns": BASELINE_TIMINGS_NS[0],
        "paper_tras_ns": BASELINE_TIMINGS_NS[1],
        "model_trcd_ns": BASELINE_TIMINGS_NS[0],
        "model_tras_ns": BASELINE_TIMINGS_NS[1],
        "reduction_cycles": (0, 0),
    }]
    for duration, (trcd, tras) in sorted(DURATION_TABLE_NS.items()):
        m_trcd, m_tras = model[duration]
        rows.append({
            "duration_ms": duration,
            "paper_trcd_ns": trcd,
            "paper_tras_ns": tras,
            "model_trcd_ns": round(m_trcd, 2),
            "model_tras_ns": round(m_tras, 2),
            "reduction_cycles": reductions_for_duration_ms(duration),
        })
    return {"id": "table2", "rows": rows}


# ----------------------------------------------------------------------
# Figure 7: speedups
# ----------------------------------------------------------------------

def _fig7_specs(mode: str, workloads: Optional[Sequence[str]],
                scale: Scale,
                mechanisms: Optional[Sequence[str]] = None
                ) -> List[RunSpec]:
    mechanisms = FIG7_MECHANISMS if mechanisms is None else mechanisms
    names = _names_for(mode, workloads)
    specs = [_spec(mode, name, mech, scale)
             for name in names for mech in ("none",) + tuple(mechanisms)]
    return specs + _ws_specs(mode, names, scale)


def run_fig7(mode: str = "single",
             workloads: Optional[Sequence[str]] = None,
             mechanisms: Optional[Sequence[str]] = None,
             scale: Optional[Scale] = None) -> Dict:
    """Speedup of each mechanism over baseline, plus RMPKC.

    ``mechanisms`` accepts any registry spec strings (plain names,
    compositions, inline parameters); ``None`` means the paper's
    Figure 7 set.
    """
    mechanisms = FIG7_MECHANISMS if mechanisms is None else tuple(mechanisms)
    scale = scale or current_scale()
    names = _names_for(mode, workloads)
    sweep = _prefetch(_fig7_specs(mode, workloads, scale, mechanisms))
    rows = []
    for name in names:
        row = {"workload": name}
        base = _performance(mode, name, "none", scale)
        row["rmpkc"] = _run_for(mode, name, "none", scale).rmpkc()
        for mech in mechanisms:
            perf = _performance(mode, name, mech, scale)
            row[mech] = perf / base - 1.0 if base else 0.0
        if mode == "single":
            row["base_ipc"] = base
        else:
            row["base_ws"] = base
        rows.append(row)
    avg = {"workload": "AVG",
           "rmpkc": _mean(r["rmpkc"] for r in rows)}
    for mech in mechanisms:
        avg[mech] = _mean(r[mech] for r in rows)
    rows.sort(key=lambda r: r["rmpkc"])
    rows.append(avg)
    return {"id": f"fig7{'a' if mode == 'single' else 'b'}",
            "mode": mode, "mechanisms": list(mechanisms), "rows": rows,
            "cache": sweep.annotation()}


# ----------------------------------------------------------------------
# Figure 8: DRAM energy reduction
# ----------------------------------------------------------------------

def _fig8_specs(modes: Sequence[str], workloads: Optional[Sequence[str]],
                scale: Scale) -> List[RunSpec]:
    return [_spec(mode, name, mech, scale, idle_finished=True)
            for mode in modes for name in _names_for(mode, workloads)
            for mech in ("none", "chargecache")]


def _energy_reduction(base, cc, e_base=None) -> Optional[float]:
    """Fractional energy-per-instruction saving of ``cc`` over ``base``.

    Both runs are billed with the clock and IDD set of the standard
    their own config names (resolved inside :func:`energy_for_run`),
    and the HCRAC power charged against ChargeCache comes from
    :func:`overhead_for_config` of the *actual* run config — not the
    paper's fixed 8-core/2-channel design point.  Returns ``None``
    when the comparison is undefined (no energy or no retired work).
    ``e_base`` lets a caller that already holds the baseline breakdown
    skip recomputing it.
    """
    overhead = overhead_for_config(cc.config)
    rate = access_rate_for_run(cc)
    if e_base is None:
        e_base = energy_for_run(base)
    e_cc = energy_for_run(cc,
                          mechanism_power_w=overhead.average_power_w(rate))
    if e_base.total_pj <= 0 or base.work_instructions <= 0 \
            or cc.work_instructions <= 0:
        return None
    per_inst_base = e_base.total_pj / base.work_instructions
    per_inst_cc = e_cc.total_pj / cc.work_instructions
    return 1.0 - per_inst_cc / per_inst_base


def run_fig8(modes: Sequence[str] = ("single", "eight"),
             workloads: Optional[Sequence[str]] = None,
             scale: Optional[Scale] = None) -> Dict:
    """Average and maximum DRAM energy reduction of ChargeCache.

    Multi-core runs use trace-loop methodology (cores that reach their
    instruction limit keep executing), so the ChargeCache run performs
    *more* work in its window than the baseline run.  The comparison is
    therefore made on **energy per retired instruction**, which is
    iso-work; for single-core runs this reduces to the plain energy
    ratio (both runs retire exactly the instruction limit).

    Timing and IDD parameters resolve from each run's own config (its
    ``dram.standard``), so non-DDR3 configs are charged with their own
    clock and currents; :func:`run_energy` sweeps the whole standards
    family this way.
    """
    scale = scale or current_scale()
    sweep = _prefetch(_fig8_specs(modes, workloads, scale))
    rows = []
    for mode in modes:
        names = _names_for(mode, workloads)
        reductions = []
        for name in names:
            base = _run_for(mode, name, "none", scale,
                            idle_finished=True)
            cc = _run_for(mode, name, "chargecache", scale,
                          idle_finished=True)
            reduction = _energy_reduction(base, cc)
            if reduction is not None:
                reductions.append(reduction)
        rows.append({
            "mode": mode,
            "average_reduction": _mean(reductions),
            "max_reduction": max(reductions) if reductions else 0.0,
            "n": len(reductions),
        })
    return {"id": "fig8", "rows": rows,
            "paper": {"single": {"avg": 0.018, "max": 0.069},
                      "eight": {"avg": 0.079, "max": 0.141}},
            "cache": sweep.annotation()}


# ----------------------------------------------------------------------
# Figures 9/10: capacity sweeps
# ----------------------------------------------------------------------

def _fig9_specs(modes: Sequence[str], workloads: Optional[Sequence[str]],
                scale: Scale,
                capacities: Sequence[int] = FIG9_CAPACITIES
                ) -> List[RunSpec]:
    specs = []
    for mode in modes:
        for name in _names_for(mode, workloads):
            specs += [_spec(mode, name, _cc(entries=cap), scale)
                      for cap in capacities]
            specs.append(_spec(mode, name, _cc(unbounded=True), scale))
    return specs


def run_fig9(modes: Sequence[str] = ("single", "eight"),
             capacities: Sequence[int] = FIG9_CAPACITIES,
             workloads: Optional[Sequence[str]] = None,
             scale: Optional[Scale] = None) -> Dict:
    """HCRAC hit rate vs capacity, plus the unlimited-size bound."""
    scale = scale or current_scale()
    sweep = _prefetch(_fig9_specs(modes, workloads, scale, capacities))
    frame = aggregate.sweep_frame(sweep)
    rows = []
    for mode in modes:
        for cap in capacities:
            rows.append({"mode": mode, "entries": cap,
                         "hit_rate": frame.where(
                             kind=mode, **_cc_axes(entries=cap))
                         .mean("mechanism_hit_rate")})
        rows.append({"mode": mode, "entries": "unlimited",
                     "hit_rate": frame.where(
                         kind=mode, **_cc_axes(unbounded=True))
                     .mean("mechanism_hit_rate")})
    return {"id": "fig9", "capacities": list(capacities), "rows": rows,
            "cache": sweep.annotation()}


def _fig10_specs(modes: Sequence[str], workloads: Optional[Sequence[str]],
                 scale: Scale,
                 capacities: Sequence[int] = FIG9_CAPACITIES
                 ) -> List[RunSpec]:
    specs = []
    for mode in modes:
        names = _names_for(mode, workloads)
        for name in names:
            specs.append(_spec(mode, name, "none", scale))
            specs += [_spec(mode, name, _cc(entries=cap), scale)
                      for cap in capacities]
        specs += _ws_specs(mode, names, scale)
    return specs


def run_fig10(modes: Sequence[str] = ("single", "eight"),
              capacities: Sequence[int] = FIG9_CAPACITIES,
              workloads: Optional[Sequence[str]] = None,
              scale: Optional[Scale] = None) -> Dict:
    """Speedup vs HCRAC capacity."""
    scale = scale or current_scale()
    sweep = _prefetch(_fig10_specs(modes, workloads, scale, capacities))
    frame = aggregate.sweep_frame(sweep, performance=True)
    rows = []
    for mode in modes:
        base = frame.where(kind=mode, mechanism="none") \
            .pivot("name", "performance")
        for cap in capacities:
            variant = frame.where(kind=mode, **_cc_axes(entries=cap))
            speedups = [row["performance"] / base[row["name"]] - 1.0
                        for row in variant if base.get(row["name"])]
            rows.append({"mode": mode, "entries": cap,
                         "speedup": _mean(speedups)})
    return {"id": "fig10", "capacities": list(capacities), "rows": rows,
            "cache": sweep.annotation()}


# ----------------------------------------------------------------------
# Figure 11: caching-duration sweep
# ----------------------------------------------------------------------

def _fig11_specs(modes: Sequence[str], workloads: Optional[Sequence[str]],
                 scale: Scale,
                 durations_ms: Sequence[float] = FIG11_DURATIONS
                 ) -> List[RunSpec]:
    specs = []
    for mode in modes:
        names = _names_for(mode, workloads)
        for name in names:
            specs.append(_spec(mode, name, "none", scale))
            specs += [_spec(mode, name, _cc(duration_ms=duration), scale)
                      for duration in durations_ms]
        specs += _ws_specs(mode, names, scale)
    return specs


def run_fig11(modes: Sequence[str] = ("single", "eight"),
              durations_ms: Sequence[float] = FIG11_DURATIONS,
              workloads: Optional[Sequence[str]] = None,
              scale: Optional[Scale] = None) -> Dict:
    """Speedup and hit rate vs caching duration.

    Longer durations raise the chance an entry survives until reuse but
    weaken the timing reductions (Table 2 derating) - the paper finds
    1 ms the sweet spot.
    """
    scale = scale or current_scale()
    sweep = _prefetch(_fig11_specs(modes, workloads, scale, durations_ms))
    frame = aggregate.sweep_frame(sweep, performance=True)
    rows = []
    for mode in modes:
        base = frame.where(kind=mode, mechanism="none") \
            .pivot("name", "performance")
        for duration in durations_ms:
            variant = frame.where(kind=mode,
                                  **_cc_axes(duration_ms=duration))
            speedups = [row["performance"] / base[row["name"]] - 1.0
                        for row in variant if base.get(row["name"])]
            rows.append({
                "mode": mode,
                "duration_ms": duration,
                "speedup": _mean(speedups),
                "hit_rate": variant.mean("mechanism_hit_rate"),
                "reductions": reductions_for_duration_ms(duration),
            })
    return {"id": "fig11", "durations_ms": list(durations_ms), "rows": rows,
            "cache": sweep.annotation()}


# ----------------------------------------------------------------------
# Section 6.3: area & power overhead
# ----------------------------------------------------------------------

def _sec63_specs(scale: Scale, mix: str = "w1") -> List[RunSpec]:
    return [mix_spec(mix, "chargecache", scale)]


def run_sec63(scale: Optional[Scale] = None,
              mix: str = "w1") -> Dict:
    """ChargeCache hardware overhead (paper Section 6.3).

    Storage uses the paper's equations (1)-(2); the access rate feeding
    dynamic power is measured from an eight-core ChargeCache run, in
    that run's own bus clock.  Two overhead sets are reported: the
    paper's fixed 8-core/2-channel/128-entry design point (top-level
    keys, comparable against the published numbers) and the overhead
    of the *actual* run config via :func:`overhead_for_config`
    (``config_*`` keys) — on the default eight-core platform the two
    coincide, but a scaled or re-parameterized run no longer silently
    mixes paper-config storage with measured access rates.
    """
    scale = scale or current_scale()
    overhead = hcrac_overhead()  # paper's 8-core, 2-channel, 128-entry
    sweep = _prefetch(_sec63_specs(scale, mix))
    result = run_mix(mix, "chargecache", scale)
    rate = access_rate_for_run(result)  # run's own standard's clock
    power = overhead.average_power_w(rate)
    run_overhead = overhead_for_config(result.config)
    run_power = run_overhead.average_power_w(rate)
    return {
        "id": "sec6.3",
        "storage_bytes": overhead.storage_bytes,
        "area_mm2": overhead.area_mm2,
        "area_fraction_of_llc": overhead.area_fraction_of_llc(),
        "average_power_mw": power * 1e3,
        "power_fraction_of_llc": overhead.power_fraction_of_llc(rate),
        "access_rate_per_s": rate,
        "config_storage_bytes": run_overhead.storage_bytes,
        "config_area_mm2": run_overhead.area_mm2,
        "config_average_power_mw": run_power * 1e3,
        "config_power_fraction_of_llc":
            run_overhead.power_fraction_of_llc(rate),
        "paper": {"storage_bytes": 5376, "area_mm2": 0.022,
                  "area_fraction_of_llc": 0.0024,
                  "average_power_mw": 0.149,
                  "power_fraction_of_llc": 0.0023},
        "cache": sweep.annotation(),
    }


# ----------------------------------------------------------------------
# Scenario matrix: scaling (cores x ranks) and standards (timing
# grades) sensitivity figures, modeled on Figures 10/11-style plots
# ----------------------------------------------------------------------

def _scenario_names_for(workloads: Optional[Sequence[str]]) -> List[str]:
    return list(workloads) if workloads is not None \
        else list(SCENARIO_WORKLOADS)


def _scenario_specs(scenario_names: Sequence[str],
                    workloads: Optional[Sequence[str]],
                    scale: Scale) -> List[RunSpec]:
    names = _scenario_names_for(workloads)
    return [scenario_spec(scen, name, mech, scale)
            for scen in scenario_names
            for name in names
            for mech in ("none", "chargecache")]


def _scaling_specs(workloads: Optional[Sequence[str]],
                   scale: Scale) -> List[RunSpec]:
    return _scenario_specs(scenarios.SCALING_SCENARIOS, workloads, scale)


def _standards_specs(workloads: Optional[Sequence[str]],
                     scale: Scale) -> List[RunSpec]:
    return _scenario_specs(scenarios.STANDARD_SCENARIOS, workloads, scale)


def _scenario_row(scen_name: str, names: Sequence[str],
                  scale: Scale) -> Dict:
    """Baseline-vs-ChargeCache aggregate for one platform."""
    scen = scenarios.scenario(scen_name)
    speedups, hits, rmpkcs, row_hits, lats = [], [], [], [], []
    for name in names:
        base = run_scenario(scen_name, name, "none", scale)
        cc = run_scenario(scen_name, name, "chargecache", scale)
        if base.total_ipc:
            speedups.append(cc.total_ipc / base.total_ipc - 1.0)
        hits.append(cc.mechanism_hit_rate)
        rmpkcs.append(base.rmpkc())
        row_hits.append(base.row_hit_rate)
        lats.append(base.average_read_latency_cycles)
    row = scen.axes()
    row.update({
        "rmpkc": _mean(rmpkcs),
        "row_hit": _mean(row_hits),
        "read_latency": _mean(lats),
        "cc_hit_rate": _mean(hits),
        "cc_speedup": _mean(speedups),
    })
    return row


def run_scaling(workloads: Optional[Sequence[str]] = None,
                scale: Optional[Scale] = None) -> Dict:
    """ChargeCache sensitivity to core count and ranks per channel.

    Sweeps the scaling family of :mod:`repro.harness.scenarios`
    (1/2/4/8/16 cores x 1/2 ranks per channel on DDR3-1600) with the
    baseline and ChargeCache on each platform.  Speedup here is the
    total-IPC ratio on the same platform (not weighted speedup — the
    alone-run denominators of Figure 7b are platform-specific and
    would conflate the platform change with the mechanism's effect).
    """
    scale = scale or current_scale()
    names = _scenario_names_for(workloads)
    sweep = _prefetch(_scaling_specs(workloads, scale))
    rows = [_scenario_row(scen, names, scale)
            for scen in scenarios.SCALING_SCENARIOS]
    return {"id": "scaling", "workloads": names,
            "core_counts": list(scenarios.SCALING_CORE_COUNTS),
            "ranks": list(scenarios.SCALING_RANKS),
            "rows": rows, "cache": sweep.annotation()}


def run_standards(workloads: Optional[Sequence[str]] = None,
                  scale: Optional[Scale] = None) -> Dict:
    """ChargeCache across DDR-derived timing grades (paper Section 7.2).

    Single-core and eight-core platforms on each preset of
    :mod:`repro.dram.standards`.  Each row also records the preset's
    baseline tRCD/tRAS and the ChargeCache reductions re-derived in
    that standard's bus cycles (the physical ~5/10 ns charge headroom
    is more cycles on a faster clock).
    """
    scale = scale or current_scale()
    names = _scenario_names_for(workloads)
    sweep = _prefetch(_standards_specs(workloads, scale))
    rows = []
    for scen_name in scenarios.STANDARD_SCENARIOS:
        scen = scenarios.scenario(scen_name)
        timing = preset(scen.standard)
        trcd_red, tras_red = reduction_cycles_for(timing)
        row = _scenario_row(scen_name, names, scale)
        row.update({
            "trcd": timing.tRCD,
            "tras": timing.tRAS,
            "trcd_reduction": trcd_red,
            "tras_reduction": tras_red,
        })
        rows.append(row)
    return {"id": "standards", "workloads": names,
            "standards": sorted({scenarios.scenario(n).standard
                                 for n in scenarios.STANDARD_SCENARIOS}),
            "rows": rows, "cache": sweep.annotation()}


# ----------------------------------------------------------------------
# Energy across the standards family (fig8 methodology x Section 7.2)
# ----------------------------------------------------------------------

def _energy_specs(workloads: Optional[Sequence[str]],
                  scale: Scale) -> List[RunSpec]:
    names = _scenario_names_for(workloads)
    return [scenario_spec(scen, name, mech, scale, idle_finished=True)
            for scen in scenarios.STANDARD_SCENARIOS
            for name in names
            for mech in ("none", "chargecache")]


def run_energy(workloads: Optional[Sequence[str]] = None,
               scale: Optional[Scale] = None) -> Dict:
    """DRAM energy reduction of ChargeCache on every standards platform.

    Figure 8's methodology (fixed-work runs, energy per retired
    instruction, HCRAC power charged against the mechanism) applied to
    the whole standards family of :mod:`repro.harness.scenarios`: the
    single- and eight-core platforms on each
    :class:`~repro.dram.standards.StandardProfile`.  Every platform is
    billed with its own profile — its clock for run time and its IDD
    set for energy — and the HCRAC power comes from
    :func:`overhead_for_config` of the actual run config, so the DDR3
    rows reproduce Figure 8's energy model exactly while the other
    standards get theirs rather than DDR3's.
    """
    scale = scale or current_scale()
    names = _scenario_names_for(workloads)
    sweep = _prefetch(_energy_specs(workloads, scale))
    rows = []
    for scen_name in scenarios.STANDARD_SCENARIOS:
        scen = scenarios.scenario(scen_name)
        prof = scen.profile
        reductions, base_pj = [], []
        for name in names:
            base = run_scenario(scen_name, name, "none", scale,
                                idle_finished=True)
            cc = run_scenario(scen_name, name, "chargecache", scale,
                              idle_finished=True)
            e_base = energy_for_run(base)
            reduction = _energy_reduction(base, cc, e_base)
            if reduction is not None:
                reductions.append(reduction)
            base_pj.append(e_base.total_pj)
        row = scen.axes()
        row.update({
            "vdd": prof.power.vdd,
            "tck_ns": prof.timing.tCK_ns,
            "baseline_uj": _mean(base_pj) * 1e-6,
            "average_reduction": _mean(reductions),
            "max_reduction": max(reductions) if reductions else 0.0,
            "n": len(reductions),
        })
        rows.append(row)
    return {"id": "energy", "workloads": names,
            "standards": sorted({scenarios.scenario(n).standard
                                 for n in scenarios.STANDARD_SCENARIOS}),
            "paper": {"single": {"avg": 0.018, "max": 0.069},
                      "eight": {"avg": 0.079, "max": 0.141}},
            "rows": rows, "cache": sweep.annotation()}


# ----------------------------------------------------------------------
# Calibration: synthetic-workload fingerprints vs the reference table,
# plus the bundled golden traces replayed through the full simulator
# ----------------------------------------------------------------------

#: Override for the trace files ``calibrate`` replays (None = bundled).
_calibration_trace_paths: Optional[List[str]] = None


def bundled_fixture_traces() -> List[str]:
    """Paths of the golden ``tests/fixtures/traces/*.trace`` fixtures.

    Resolved relative to this checkout first (``src/repro/harness/``
    -> repo root), then the working directory; an installed package
    without the test tree gets ``[]`` and ``calibrate`` simply skips
    the trace-replay rows.
    """
    import glob
    import os
    here = os.path.abspath(__file__)
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(here))))  # harness -> repro -> src -> root
    for base in (repo_root, os.getcwd()):
        pattern = os.path.join(base, "tests", "fixtures", "traces",
                               "*.trace")
        found = sorted(glob.glob(pattern))
        if found:
            return found
    return []


def set_calibration_traces(paths: Optional[Sequence[str]]) -> None:
    """Replace the trace files ``calibrate`` replays (None = bundled).

    Module state (like :func:`set_default_jobs`) so the sweep
    declaration in :data:`SWEEP_DECLARATIONS` and :func:`run_calibrate`
    always agree on the trace set — the CLI's ``--traces`` flag sets
    this once and both sides see it.
    """
    global _calibration_trace_paths
    _calibration_trace_paths = list(paths) if paths is not None else None


def calibration_traces() -> List[str]:
    """The trace files the next ``calibrate`` will replay."""
    if _calibration_trace_paths is not None:
        return list(_calibration_trace_paths)
    return bundled_fixture_traces()


def _calibrate_specs(workloads: Optional[Sequence[str]],
                     scale: Scale) -> List[RunSpec]:
    """Baseline + ChargeCache replay of every calibration trace.

    The synthetic-workload half of ``calibrate`` is a pure trace-level
    analysis (no simulation), so only the trace replays appear in the
    sweep; ``workloads`` is accepted for declaration-signature
    uniformity.
    """
    del workloads
    return [trace_spec(path, mech, scale)
            for path in calibration_traces()
            for mech in ("none", "chargecache")]


#: Uniform calibrate-row key set (CSV columns come from the first row).
_CALIBRATE_COLUMNS = (
    "workload", "kind", "rltl_1ms", "ref_rltl_1ms", "d_rltl",
    "rmpkc", "ref_rmpkc", "rmpkc_ratio",
    "row_hit", "ref_row_hit", "d_row_hit",
    "sim_row_hit", "sim_rmpkc", "cc_speedup", "status",
)


def _calibrate_row(**values) -> Dict:
    row = {key: "" for key in _CALIBRATE_COLUMNS}
    row.update(values)
    return row


def run_calibrate(workloads: Optional[Sequence[str]] = None,
                  scale: Optional[Scale] = None) -> Dict:
    """Workload fingerprint calibration (DESIGN.md section 2).

    Two halves, one table:

    * **synthetic rows** — every substitution-table workload is
      fingerprinted by the trace-level pass
      (:func:`repro.workloads.ingest.fingerprint_workload`) at the
      reference provenance point (20k records, seed 1, fingerprint
      defaults — deliberately *independent* of ``scale``, so the
      deltas against :data:`~repro.workloads.ingest.reference
      .REFERENCE_FINGERPRINTS` mean the same thing at every ``--scale``)
      and reported as signed deltas with an ok/drift status.
    * **trace rows** — each calibration trace (bundled golden fixtures
      by default, :func:`set_calibration_traces` to override) is
      fingerprinted the same way *and* replayed through the full
      simulator (baseline + ChargeCache, at ``scale``), so the
      trace-level model and the simulated system sit side by side.
    """
    from repro.workloads.ingest import (
        DEFAULT_FINGERPRINT_RECORDS,
        fingerprint_file,
        fingerprint_workload,
    )
    from repro.workloads.ingest.reference import (
        PAPER_AVG_RLTL_1MS,
        REFERENCE_FINGERPRINTS,
        REFERENCE_INTERVAL_MS,
        fingerprint_delta,
    )
    scale = scale or current_scale()
    names = list(workloads) if workloads is not None \
        else list(WORKLOAD_NAMES)
    traces = calibration_traces()
    sweep = _prefetch(_calibrate_specs(workloads, scale))
    rows = []
    for name in names:
        fp = fingerprint_workload(name)
        ref = REFERENCE_FINGERPRINTS.get(name)
        if ref is None:
            rows.append(_calibrate_row(
                workload=name, kind="synthetic",
                rltl_1ms=fp.rltl(REFERENCE_INTERVAL_MS),
                rmpkc=fp.rmpkc, row_hit=fp.row_hit_rate,
                status="no-ref"))
        else:
            rows.append(_calibrate_row(
                workload=name, kind="synthetic",
                **fingerprint_delta(fp, ref)))
    synthetic = list(rows)
    for path in traces:
        fp = fingerprint_file(path)
        base = run_trace(path, "none", scale)
        cc = run_trace(path, "chargecache", scale)
        rows.append(_calibrate_row(
            workload=fp.name, kind="trace",
            rltl_1ms=fp.rltl(REFERENCE_INTERVAL_MS),
            rmpkc=fp.rmpkc, row_hit=fp.row_hit_rate,
            sim_row_hit=base.row_hit_rate,
            sim_rmpkc=base.rmpkc(),
            cc_speedup=(cc.total_ipc / base.total_ipc - 1.0
                        if base.total_ipc else 0.0),
            status="ingested"))
    return {
        "id": "calibrate",
        "interval_ms": REFERENCE_INTERVAL_MS,
        "fingerprint_records": DEFAULT_FINGERPRINT_RECORDS,
        "avg_rltl_1ms": _mean(r["rltl_1ms"] for r in synthetic),
        "paper_avg_rltl_1ms": PAPER_AVG_RLTL_1MS,
        "drift": [r["workload"] for r in synthetic
                  if r["status"] == "drift"],
        "traces": list(traces),
        "rows": rows,
        "cache": sweep.annotation(),
    }


# ----------------------------------------------------------------------
# Cross-experiment sweep declaration (the `all` command's shared pool)
# ----------------------------------------------------------------------

#: Experiment id -> callable(workloads, scale) -> flat RunSpec list.
#: Mirrors the defaults of the matching ``run_*`` call in the CLI's
#: experiment table; ids without a sweep (fig6, table1, table2) are
#: simply absent.  tests/harness/test_shared_pool.py asserts the
#: declarations stay in sync with what the experiments actually run.
SWEEP_DECLARATIONS = {
    "fig3a": lambda w, s: _fig3_specs("single", w, s),
    "fig3b": lambda w, s: _fig3_specs("eight", w, s),
    "fig4a": lambda w, s: _fig4_specs("single", w, s),
    "fig4b": lambda w, s: _fig4_specs("eight", w, s),
    "fig7a": lambda w, s, m=None: _fig7_specs("single", w, s, m),
    "fig7b": lambda w, s, m=None: _fig7_specs("eight", w, s, m),
    "fig8": lambda w, s: _fig8_specs(("single", "eight"), w, s),
    "fig9": lambda w, s: _fig9_specs(("single", "eight"), w, s),
    "fig10": lambda w, s: _fig10_specs(("single", "eight"), w, s),
    "fig11": lambda w, s: _fig11_specs(("single", "eight"), w, s),
    "sec63": lambda w, s: _sec63_specs(s),
    "calibrate": lambda w, s: _calibrate_specs(w, s),
    "scaling": lambda w, s: _scaling_specs(w, s),
    "standards": lambda w, s: _standards_specs(w, s),
    "energy": lambda w, s: _energy_specs(w, s),
}

#: Experiment ids whose declaration (and ``run_*``) accept a custom
#: mechanism-spec list.  The CLI's ``--mechanisms`` flag reaches
#: exactly these, both per-experiment and through the shared pool.
MECHANISM_AWARE = ("fig7a", "fig7b")


def declared_specs(names: Sequence[str],
                   workloads: Optional[Sequence[str]] = None,
                   scale: Optional[Scale] = None,
                   mechanisms: Optional[Sequence[str]] = None
                   ) -> List[RunSpec]:
    """The deduplicated union of the named experiments' sweeps.

    ``mechanisms`` replaces the default mechanism set for the
    :data:`MECHANISM_AWARE` experiments, so a custom ``--mechanisms``
    sweep is prefetched by the shared pool instead of the default one.
    """
    scale = scale or current_scale()
    specs: List[RunSpec] = []
    for name in names:
        declaration = SWEEP_DECLARATIONS.get(name)
        if declaration is None:
            continue
        if name in MECHANISM_AWARE:
            specs += declaration(workloads, scale, mechanisms)
        else:
            specs += declaration(workloads, scale)
    return dedupe_specs(specs)


def prefetch_experiments(names: Sequence[str],
                         workloads: Optional[Sequence[str]] = None,
                         scale: Optional[Scale] = None,
                         mechanisms: Optional[Sequence[str]] = None
                         ) -> pool.Sweep:
    """Execute every named experiment's sweep through ONE shared pool.

    Collects each experiment's declared specs, dedupes them (cache
    keys are injective in specs, so spec identity is key identity),
    and fans the union out in a single :func:`pool.execute_sweep`
    call: one ProcessPoolExecutor serves the whole batch, so workers
    drain the global frontier instead of idling at per-experiment
    sweep tails, and each distinct cache key is computed at most once.
    The experiments run afterwards find every point in the runner memo
    and fork nothing.
    """
    return _prefetch(declared_specs(names, workloads, scale, mechanisms))


# ----------------------------------------------------------------------
# Table 1: configuration echo
# ----------------------------------------------------------------------

def run_table1() -> Dict:
    """The simulated system configuration (validation that our defaults
    match the paper's Table 1)."""
    single = single_core_config()
    eight = eight_core_config()
    t = DDR3_1600
    return {
        "id": "table1",
        "processor": {
            "cores": [single.processor.num_cores,
                      eight.processor.num_cores],
            "freq_ghz": single.processor.freq_ghz,
            "issue_width": single.processor.issue_width,
            "mshrs_per_core": single.processor.mshrs_per_core,
            "window": single.processor.window_size,
        },
        "llc": {
            "size_bytes": single.cache.size_bytes,
            "associativity": single.cache.associativity,
            "line_bytes": single.cache.line_bytes,
        },
        "controller": {
            "queue_entries": single.controller.read_queue_size,
            "scheduler": single.controller.scheduler,
            "row_policy": [single.controller.row_policy,
                           eight.controller.row_policy],
        },
        "dram": {
            "type": t.name,
            "bus_mhz": t.freq_mhz,
            "channels": [single.dram.channels, eight.dram.channels],
            "ranks": single.dram.ranks_per_channel,
            "banks": single.dram.banks_per_rank,
            "rows": single.dram.rows_per_bank,
            "row_buffer_bytes": single.dram.row_buffer_bytes,
            "trcd_cycles": t.tRCD,
            "tras_cycles": t.tRAS,
        },
        "chargecache": {
            "entries": single.chargecache.entries,
            "associativity": single.chargecache.associativity,
            "duration_ms": single.chargecache.caching_duration_ms,
            "trcd_reduction": single.chargecache.trcd_reduction_cycles,
            "tras_reduction": single.chargecache.tras_reduction_cycles,
        },
    }


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _names_for(mode: str, workloads: Optional[Sequence[str]]) -> List[str]:
    if workloads is not None:
        return list(workloads)
    return list(WORKLOAD_NAMES) if mode == "single" else list(MIX_NAMES)


def _spec(mode: str, name: str, mechanism: str, scale: Scale,
          **kwargs) -> RunSpec:
    """Declare one sweep point (mirrors :func:`_run_for`)."""
    if mode == "single":
        return workload_spec(name, mechanism, scale, **kwargs)
    return mix_spec(name, mechanism, scale, **kwargs)


def _ws_specs(mode: str, names: Sequence[str],
              scale: Scale) -> List[RunSpec]:
    """Alone-run specs backing weighted speedup (eight-core only)."""
    if mode != "eight":
        return []
    specs: List[RunSpec] = []
    for mix in names:
        specs += alone_specs_for_mix(mix, scale)
    return specs


def _run_for(mode: str, name: str, mechanism: str, scale: Scale,
             **kwargs):
    if mode == "single":
        return run_workload(name, mechanism, scale, **kwargs)
    return run_mix(name, mechanism, scale, **kwargs)


def _performance(mode: str, name: str, mechanism: str, scale: Scale,
                 **kwargs) -> float:
    """IPC (single-core) or weighted speedup (eight-core)."""
    result = _run_for(mode, name, mechanism, scale, **kwargs)
    if mode == "single":
        return result.total_ipc
    return weighted_speedup(result.ipcs, alone_ipcs_for_mix(name, scale))
